//! Property tests for WAL recovery: arbitrary damage to a log must never
//! panic, and replay must keep **exactly** the longest valid
//! hash-chained prefix — everything before the damage survives, nothing
//! at or after it is trusted.

use proptest::prelude::*;
use prov_store::wal::{chain_hash, encode_frame, replay_bytes, FsyncPolicy, Wal, GENESIS_CHAIN};

/// Build a well-formed log from `payloads`; returns the bytes and the
/// byte offset where each record's frame ends.
fn build_log(payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut data = Vec::new();
    let mut ends = Vec::new();
    let mut chain = GENESIS_CHAIN;
    for p in payloads {
        let (frame, next) = encode_frame(chain, p);
        chain = next;
        data.extend_from_slice(&frame);
        ends.push(data.len());
    }
    (data, ends)
}

/// Records wholly contained in the first `len` bytes.
fn records_within(ends: &[usize], len: usize) -> usize {
    ends.iter().take_while(|&&e| e <= len).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_keeps_exactly_the_complete_prefix(
        sizes in proptest::collection::vec(0usize..200, 1..8),
        cut_seed in 0u64..10_000
    ) {
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        let (data, ends) = build_log(&payloads);
        // A crash can cut the file at *any* byte.
        let cut = (cut_seed as usize) % (data.len() + 1);
        let replay = replay_bytes(&data[..cut], GENESIS_CHAIN);
        let expect = records_within(&ends, cut);
        prop_assert_eq!(replay.payloads.len(), expect, "cut at {}", cut);
        for (got, want) in replay.payloads.iter().zip(&payloads) {
            prop_assert_eq!(got, want, "recovered payloads are byte-identical");
        }
        // valid_bytes points at the end of the last complete frame: the
        // torn remainder is exactly what recovery truncates.
        let valid = if expect == 0 { 0 } else { ends[expect - 1] };
        prop_assert_eq!(replay.valid_bytes as usize, valid);
        prop_assert_eq!(replay.torn_bytes as usize, cut - valid);
        prop_assert_eq!(replay.truncated(), cut != valid, "reported, not panicked");
    }

    #[test]
    fn single_bit_corruption_is_contained_to_its_frame(
        sizes in proptest::collection::vec(1usize..120, 1..7),
        pos_seed in 0u64..10_000,
        bit in 0u8..8
    ) {
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n).map(|j| (i * 17 + j * 7) as u8).collect())
            .collect();
        let (mut data, ends) = build_log(&payloads);
        let pos = (pos_seed as usize) % data.len();
        data[pos] ^= 1 << bit;

        let replay = replay_bytes(&data, GENESIS_CHAIN);
        // Every record before the damaged frame survives; the damaged
        // frame and everything chained after it is rejected. (CRC32 +
        // the hash chain make a flipped bit reading as a *valid* longer
        // log effectively impossible, and replay must never panic.)
        let clean_frames = records_within(&ends, pos);
        prop_assert_eq!(replay.payloads.len(), clean_frames, "bit {} at {}", bit, pos);
        for (got, want) in replay.payloads.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
        prop_assert!(replay.truncated(), "damage is reported");
        prop_assert!(replay.tail_error.is_some(), "...with a reason");
    }

    #[test]
    fn appends_resume_cleanly_after_recovery_from_damage(
        sizes in proptest::collection::vec(1usize..80, 1..6),
        cut_seed in 0u64..10_000
    ) {
        // End-to-end through the Wal type: damage a file on disk, reopen
        // (which truncates the torn tail), append more records, and
        // replay the result — the old prefix and the new records form one
        // valid chain.
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| vec![i as u8; n])
            .collect();
        let (data, ends) = build_log(&payloads);
        let cut = (cut_seed as usize) % (data.len() + 1);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "prov-wal-prop-{}-{}-{cut_seed}.log",
            std::process::id(),
            wf_engine::event::now_millis()
        ));
        std::fs::write(&path, &data[..cut]).unwrap();

        let survivors = records_within(&ends, cut);
        let (mut wal, replay) = Wal::open(&path, GENESIS_CHAIN, FsyncPolicy::Never).unwrap();
        prop_assert_eq!(replay.payloads.len(), survivors);
        wal.append(b"after-crash").unwrap();
        drop(wal);

        let replay = prov_store::wal::replay_file(&path, GENESIS_CHAIN).unwrap();
        prop_assert_eq!(replay.payloads.len(), survivors + 1);
        prop_assert!(!replay.truncated(), "reopened log is clean");
        prop_assert_eq!(replay.payloads.last().unwrap().as_slice(), b"after-crash");
        // The chain head commits to exactly the surviving history.
        let mut chain = GENESIS_CHAIN;
        for p in &replay.payloads {
            chain = chain_hash(chain, p);
        }
        prop_assert_eq!(chain, replay.chain);
        std::fs::remove_file(&path).ok();
    }
}
