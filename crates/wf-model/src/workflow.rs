//! The workflow specification: a DAG of module instances wired by
//! connections. This structure *is* prospective provenance.

use crate::error::ModelError;
use crate::graph::Digraph;
use crate::ident::{ConnId, IdGen, NodeId, WorkflowId};
use crate::module::ParamValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A module instance placed in a workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier, stable across edits of this workflow.
    pub id: NodeId,
    /// Module kind name, resolved against a [`crate::ModuleCatalog`].
    pub module: String,
    /// Module kind version.
    pub version: u32,
    /// Instance label (defaults to the kind name); labels need not be unique
    /// but help humans and the analogy matcher.
    pub label: String,
    /// Parameter bindings overriding the kind's defaults.
    pub params: BTreeMap<String, ParamValue>,
}

impl Node {
    /// `module@version`, the kind identity this node references.
    pub fn kind_identity(&self) -> String {
        format!("{}@{}", self.module, self.version)
    }
}

/// One endpoint of a connection: a port on a node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// The port name on that node's module kind.
    pub port: String,
}

impl Endpoint {
    /// Construct an endpoint.
    pub fn new(node: NodeId, port: &str) -> Self {
        Self {
            node,
            port: port.to_string(),
        }
    }
}

/// A dataflow edge from an output port to an input port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Identifier, stable across edits of this workflow.
    pub id: ConnId,
    /// Source: an output port.
    pub from: Endpoint,
    /// Target: an input port.
    pub to: Endpoint,
}

/// A workflow specification: the prospective-provenance "recipe".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Identifier of this specification.
    pub id: WorkflowId,
    /// Human-readable name.
    pub name: String,
    /// Module instances, keyed by id.
    pub nodes: BTreeMap<NodeId, Node>,
    /// Connections, keyed by id.
    pub conns: BTreeMap<ConnId, Connection>,
    node_ids: IdGen,
    conn_ids: IdGen,
}

impl Workflow {
    /// An empty workflow.
    pub fn new(id: WorkflowId, name: &str) -> Self {
        Self {
            id,
            name: name.to_string(),
            nodes: BTreeMap::new(),
            conns: BTreeMap::new(),
            node_ids: IdGen::new(),
            conn_ids: IdGen::new(),
        }
    }

    /// Add a module instance, allocating its id.
    pub fn add_node(&mut self, module: &str, version: u32) -> NodeId {
        let id = NodeId(self.node_ids.next_raw());
        self.nodes.insert(
            id,
            Node {
                id,
                module: module.to_string(),
                version,
                label: module.to_string(),
                params: BTreeMap::new(),
            },
        );
        id
    }

    /// Insert a node with an explicit id (action replay). Reserves the id.
    pub fn insert_node(&mut self, node: Node) {
        self.node_ids.reserve(node.id.raw());
        self.nodes.insert(node.id, node);
    }

    /// Retire every node id up to and including `up_to`: future
    /// [`Workflow::add_node`] calls will allocate strictly greater ids.
    /// Used by transformations (e.g. composite flattening) that must not
    /// recycle identifiers of nodes they removed.
    pub fn retire_node_ids(&mut self, up_to: u64) {
        self.node_ids.reserve(up_to);
    }

    /// Remove a node and every connection touching it. Returns the removed
    /// node and connections, enabling inverse actions.
    pub fn remove_node(&mut self, id: NodeId) -> Result<(Node, Vec<Connection>), ModelError> {
        let node = self.nodes.remove(&id).ok_or(ModelError::UnknownNode(id))?;
        let touching: Vec<ConnId> = self
            .conns
            .values()
            .filter(|c| c.from.node == id || c.to.node == id)
            .map(|c| c.id)
            .collect();
        let mut removed = Vec::with_capacity(touching.len());
        for cid in touching {
            if let Some(c) = self.conns.remove(&cid) {
                removed.push(c);
            }
        }
        Ok((node, removed))
    }

    /// Connect `from` (an output port) to `to` (an input port), allocating
    /// the connection id. Rejects unknown nodes, an already-fed input port,
    /// and edges that would create a cycle. Port-name and type checking
    /// against the catalog happens in [`crate::validate()`], which has access
    /// to module kinds.
    pub fn connect(&mut self, from: Endpoint, to: Endpoint) -> Result<ConnId, ModelError> {
        if !self.nodes.contains_key(&from.node) {
            return Err(ModelError::UnknownNode(from.node));
        }
        if !self.nodes.contains_key(&to.node) {
            return Err(ModelError::UnknownNode(to.node));
        }
        if self.conns.values().any(|c| c.to == to) {
            return Err(ModelError::PortOccupied {
                node: to.node,
                port: to.port.clone(),
            });
        }
        // Cycle check: would `to.node` reach `from.node`?
        if from.node == to.node || self.reaches(to.node, from.node) {
            return Err(ModelError::WouldCycle {
                from: from.node,
                to: to.node,
            });
        }
        let id = ConnId(self.conn_ids.next_raw());
        self.conns.insert(id, Connection { id, from, to });
        Ok(id)
    }

    /// Insert a connection with an explicit id (action replay), skipping the
    /// occupancy and cycle checks — replay trusts the recorded history.
    pub fn insert_connection(&mut self, conn: Connection) {
        self.conn_ids.reserve(conn.id.raw());
        self.conns.insert(conn.id, conn);
    }

    /// Remove a connection.
    pub fn remove_connection(&mut self, id: ConnId) -> Result<Connection, ModelError> {
        self.conns
            .remove(&id)
            .ok_or(ModelError::UnknownConnection(id))
    }

    /// Set a parameter on a node. Returns the previous value, if any.
    pub fn set_param(
        &mut self,
        node: NodeId,
        name: &str,
        value: ParamValue,
    ) -> Result<Option<ParamValue>, ModelError> {
        let n = self
            .nodes
            .get_mut(&node)
            .ok_or(ModelError::UnknownNode(node))?;
        Ok(n.params.insert(name.to_string(), value))
    }

    /// Remove a parameter binding (falling back to the kind default).
    pub fn unset_param(
        &mut self,
        node: NodeId,
        name: &str,
    ) -> Result<Option<ParamValue>, ModelError> {
        let n = self
            .nodes
            .get_mut(&node)
            .ok_or(ModelError::UnknownNode(node))?;
        Ok(n.params.remove(name))
    }

    /// Set the module version of a node (module upgrades in evolution
    /// provenance). Returns the previous version.
    pub fn set_version(&mut self, node: NodeId, version: u32) -> Result<u32, ModelError> {
        let n = self
            .nodes
            .get_mut(&node)
            .ok_or(ModelError::UnknownNode(node))?;
        Ok(std::mem::replace(&mut n.version, version))
    }

    /// Set the label of a node. Returns the previous label.
    pub fn set_label(&mut self, node: NodeId, label: &str) -> Result<String, ModelError> {
        let n = self
            .nodes
            .get_mut(&node)
            .ok_or(ModelError::UnknownNode(node))?;
        Ok(std::mem::replace(&mut n.label, label.to_string()))
    }

    /// Get a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, ModelError> {
        self.nodes.get(&id).ok_or(ModelError::UnknownNode(id))
    }

    /// Get a connection.
    pub fn connection(&self, id: ConnId) -> Result<&Connection, ModelError> {
        self.conns.get(&id).ok_or(ModelError::UnknownConnection(id))
    }

    /// Connections feeding a node's input ports.
    pub fn inputs_of(&self, node: NodeId) -> impl Iterator<Item = &Connection> {
        self.conns.values().filter(move |c| c.to.node == node)
    }

    /// Connections leaving a node's output ports.
    pub fn outputs_of(&self, node: NodeId) -> impl Iterator<Item = &Connection> {
        self.conns.values().filter(move |c| c.from.node == node)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Build the dense index graph and the NodeId ↔ index mappings.
    pub fn digraph(&self) -> (Digraph, Vec<NodeId>, BTreeMap<NodeId, usize>) {
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        let index: BTreeMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut g = Digraph::with_nodes(ids.len());
        for c in self.conns.values() {
            // Connections referencing deleted nodes cannot occur through the
            // public API, but replayed histories are trusted; skip dangling
            // edges defensively so analysis never panics.
            if let (Some(&u), Some(&v)) = (index.get(&c.from.node), index.get(&c.to.node)) {
                g.add_edge(u, v);
            }
        }
        (g, ids, index)
    }

    /// Does `from` reach `to` by following connections forward?
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let (g, _, index) = self.digraph();
        match (index.get(&from), index.get(&to)) {
            (Some(&u), Some(&v)) => g.reachable_from(u)[v],
            _ => false,
        }
    }

    /// Nodes in topological order; `None` if (via replayed history) a cycle
    /// exists.
    pub fn topo_nodes(&self) -> Option<Vec<NodeId>> {
        let (g, ids, _) = self.digraph();
        g.topo_order()
            .map(|order| order.into_iter().map(|i| ids[i]).collect())
    }

    /// Source nodes (no incoming connections).
    pub fn source_nodes(&self) -> Vec<NodeId> {
        let (g, ids, _) = self.digraph();
        g.sources().into_iter().map(|i| ids[i]).collect()
    }

    /// Sink nodes (no outgoing connections) — the workflow's data products.
    pub fn sink_nodes(&self) -> Vec<NodeId> {
        let (g, ids, _) = self.digraph();
        g.sinks().into_iter().map(|i| ids[i]).collect()
    }

    /// Render the specification as Graphviz DOT (boxes = modules, edges =
    /// dataflow, labelled with ports) — the visual form workflow systems
    /// present to users.
    pub fn render_dot(&self) -> String {
        let mut s = format!("digraph \"{}\" {{\n  rankdir=LR;\n", self.name);
        for n in self.nodes.values() {
            let label = if n.label == n.module {
                n.kind_identity()
            } else {
                format!("{}\\n{}", n.label, n.kind_identity())
            };
            s.push_str(&format!("  \"{}\" [shape=box, label=\"{label}\"];\n", n.id));
        }
        for c in self.conns.values() {
            s.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}->{}\"];\n",
                c.from.node, c.to.node, c.from.port, c.to.port
            ));
        }
        s.push_str("}\n");
        s
    }

    /// Serialize to canonical JSON (prospective provenance at rest).
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string_pretty(self).map_err(|e| ModelError::Serde(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, ModelError> {
        serde_json::from_str(s).map_err(|e| ModelError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf() -> Workflow {
        Workflow::new(WorkflowId(1), "test")
    }

    #[test]
    fn add_and_connect_nodes() {
        let mut w = wf();
        let a = w.add_node("Load", 1);
        let b = w.add_node("Histogram", 1);
        let c = w
            .connect(Endpoint::new(a, "out"), Endpoint::new(b, "data"))
            .unwrap();
        assert_eq!(w.node_count(), 2);
        assert_eq!(w.conn_count(), 1);
        assert_eq!(w.connection(c).unwrap().from.node, a);
    }

    #[test]
    fn input_port_occupancy_enforced() {
        let mut w = wf();
        let a = w.add_node("A", 1);
        let b = w.add_node("B", 1);
        let c = w.add_node("C", 1);
        w.connect(Endpoint::new(a, "out"), Endpoint::new(c, "in"))
            .unwrap();
        let err = w
            .connect(Endpoint::new(b, "out"), Endpoint::new(c, "in"))
            .unwrap_err();
        assert!(matches!(err, ModelError::PortOccupied { .. }));
    }

    #[test]
    fn cycles_rejected_including_self_loop() {
        let mut w = wf();
        let a = w.add_node("A", 1);
        let b = w.add_node("B", 1);
        w.connect(Endpoint::new(a, "out"), Endpoint::new(b, "in"))
            .unwrap();
        let err = w
            .connect(Endpoint::new(b, "out"), Endpoint::new(a, "in"))
            .unwrap_err();
        assert!(matches!(err, ModelError::WouldCycle { .. }));
        let err = w
            .connect(Endpoint::new(a, "loop"), Endpoint::new(a, "in2"))
            .unwrap_err();
        assert!(matches!(err, ModelError::WouldCycle { .. }));
    }

    #[test]
    fn remove_node_cascades_connections() {
        let mut w = wf();
        let a = w.add_node("A", 1);
        let b = w.add_node("B", 1);
        let c = w.add_node("C", 1);
        w.connect(Endpoint::new(a, "out"), Endpoint::new(b, "in"))
            .unwrap();
        w.connect(Endpoint::new(b, "out"), Endpoint::new(c, "in"))
            .unwrap();
        let (node, removed) = w.remove_node(b).unwrap();
        assert_eq!(node.module, "B");
        assert_eq!(removed.len(), 2);
        assert_eq!(w.conn_count(), 0);
        assert!(w.remove_node(b).is_err());
    }

    #[test]
    fn node_ids_never_reused_after_delete() {
        let mut w = wf();
        let a = w.add_node("A", 1);
        w.remove_node(a).unwrap();
        let b = w.add_node("B", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn params_set_and_unset() {
        let mut w = wf();
        let a = w.add_node("A", 1);
        assert_eq!(w.set_param(a, "bins", 32i64.into()).unwrap(), None);
        assert_eq!(
            w.set_param(a, "bins", 64i64.into()).unwrap(),
            Some(ParamValue::Int(32))
        );
        assert_eq!(w.unset_param(a, "bins").unwrap(), Some(ParamValue::Int(64)));
        assert!(w.set_param(NodeId(99), "x", 1i64.into()).is_err());
    }

    #[test]
    fn topo_sources_sinks() {
        let mut w = wf();
        let a = w.add_node("A", 1);
        let b = w.add_node("B", 1);
        let c = w.add_node("C", 1);
        w.connect(Endpoint::new(a, "o"), Endpoint::new(b, "i"))
            .unwrap();
        w.connect(Endpoint::new(b, "o"), Endpoint::new(c, "i"))
            .unwrap();
        assert_eq!(w.topo_nodes().unwrap(), vec![a, b, c]);
        assert_eq!(w.source_nodes(), vec![a]);
        assert_eq!(w.sink_nodes(), vec![c]);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut w = wf();
        let a = w.add_node("Load", 2);
        let b = w.add_node("Render", 1);
        w.set_param(a, "path", "head.120.vtk".into()).unwrap();
        w.connect(Endpoint::new(a, "out"), Endpoint::new(b, "in"))
            .unwrap();
        let s = w.to_json().unwrap();
        let back = Workflow::from_json(&s).unwrap();
        assert_eq!(back, w);
        // Id generators must survive the round trip: adding after reload
        // must not collide.
        let mut back = back;
        let c = back.add_node("New", 1);
        assert!(c != a && c != b);
    }

    #[test]
    fn dot_rendering_lists_nodes_and_edges() {
        let mut w = wf();
        let a = w.add_node("LoadVolume", 1);
        let b = w.add_node("Histogram", 2);
        w.set_label(a, "scan").unwrap();
        w.connect(Endpoint::new(a, "grid"), Endpoint::new(b, "data"))
            .unwrap();
        let dot = w.render_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("scan"));
        assert!(dot.contains("Histogram@2"));
        assert!(dot.contains("grid->data"));
    }

    #[test]
    fn retire_node_ids_prevents_reuse() {
        let mut w = wf();
        w.retire_node_ids(41);
        let a = w.add_node("A", 1);
        assert_eq!(a, NodeId(42));
        // Retiring backwards has no effect.
        w.retire_node_ids(3);
        let b = w.add_node("B", 1);
        assert_eq!(b, NodeId(43));
    }

    #[test]
    fn labels_default_to_module_and_can_change() {
        let mut w = wf();
        let a = w.add_node("Histogram", 1);
        assert_eq!(w.node(a).unwrap().label, "Histogram");
        let old = w.set_label(a, "head histogram").unwrap();
        assert_eq!(old, "Histogram");
        assert_eq!(w.node(a).unwrap().label, "head histogram");
    }
}
