//! Deterministic scenario generators for evolution experiments.
//!
//! These build the Figure 2 workflow triple, noisy analogy targets of
//! controlled dissimilarity (experiment E2), and synthetic evolution
//! histories (experiment E8).

use crate::action::Action;
use crate::tree::{VersionId, VersionTree};
use std::collections::BTreeMap;
use wf_model::workflow::Node;
use wf_model::{NodeId, ParamValue, Workflow, WorkflowBuilder, WorkflowId};

/// Minimal deterministic RNG (SplitMix64) so scenarios need no external
/// crates in library code.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 > (1.0 - p)
    }
}

/// The Figure 2 triple `(a, b, c)`:
///
/// * `a` — a visualization pipeline: load → isosurface → render → save;
/// * `b` — `a` refined with a `SmoothMesh` step before rendering (the
///   analogy template `a → b`);
/// * `c` — a *different* workflow by another user: different data, labels,
///   parameters, plus an extra histogram branch — but with a recognizable
///   load → isosurface → render → save backbone for the matcher to find.
pub fn figure2_triple() -> (Workflow, Workflow, Workflow) {
    // a
    let mut ba = WorkflowBuilder::new(10, "quick viz");
    let load = ba.add_labeled("LoadVolume", "download data");
    ba.param(load, "path", "earthquake.vtk");
    let iso = ba.add("Isosurface");
    ba.param(iso, "isovalue", 0.4f64);
    let render = ba.add_labeled("RenderMesh", "simple visualization");
    let save = ba.add("SaveFile");
    ba.param(save, "name", "quake.png");
    ba.connect(load, "grid", iso, "data")
        .connect(iso, "mesh", render, "mesh")
        .connect(render, "image", save, "in");
    let a = ba.build();

    // b = a + smoothing
    let mut b = a.clone();
    let conn = b
        .conns
        .values()
        .find(|c| c.from.node == iso && c.to.node == render)
        .expect("iso->render edge exists")
        .id;
    b.remove_connection(conn).expect("connection removable");
    let smooth = b.add_node("SmoothMesh", 1);
    b.set_param(smooth, "iterations", ParamValue::Int(3))
        .expect("param settable");
    b.connect(
        wf_model::Endpoint::new(iso, "mesh"),
        wf_model::Endpoint::new(smooth, "mesh"),
    )
    .expect("wire iso->smooth");
    b.connect(
        wf_model::Endpoint::new(smooth, "mesh"),
        wf_model::Endpoint::new(render, "mesh"),
    )
    .expect("wire smooth->render");
    b.name = "quick viz + smoothing".into();

    // c: same backbone, different everything else.
    let mut bc = WorkflowBuilder::new(11, "brain study");
    let c_load = bc.add_labeled("LoadVolume", "load brain scan");
    bc.param(c_load, "path", "brain.44.vtk");
    bc.param(c_load, "nx", 12i64);
    let c_iso = bc.add_labeled("Isosurface", "cortex surface");
    bc.param(c_iso, "isovalue", 0.3f64);
    let c_render = bc.add_labeled("RenderMesh", "last visualization");
    bc.param(c_render, "azimuth", 0.7f64);
    let c_save = bc.add("SaveFile");
    bc.param(c_save, "name", "cortex.png");
    // Extra branch a naive matcher could get lost in.
    let c_hist = bc.add("Histogram");
    let c_plot = bc.add("PlotTable");
    bc.connect(c_load, "grid", c_iso, "data")
        .connect(c_iso, "mesh", c_render, "mesh")
        .connect(c_render, "image", c_save, "in")
        .connect(c_load, "grid", c_hist, "data")
        .connect(c_hist, "table", c_plot, "table");
    let c = bc.build();

    (a, b, c)
}

/// Build an analogy target like `c` above, then degrade its similarity to
/// the Figure 2 source with structural noise: with probability `noise`
/// per step, relabel backbone nodes, insert decoy modules of the *same
/// kinds* as the backbone, and drop the save stage. At `noise = 0` this is
/// the clean `c`; near `noise = 1` the matcher should start failing —
/// the sweep experiment E2 measures exactly where.
pub fn noisy_target(seed: u64, noise: f64) -> Workflow {
    let (_, _, c) = figure2_triple();
    let mut rng = Rng(seed.wrapping_mul(2654435761).wrapping_add(17));
    let mut wf = c;
    let backbone: Vec<NodeId> = wf.nodes.keys().copied().collect();
    for id in backbone {
        if rng.chance(noise) {
            let scrambled = format!("step {}", rng.next() % 1000);
            wf.set_label(id, &scrambled).expect("node exists");
        }
    }
    // Decoy nodes of backbone kinds (unwired or loosely wired).
    for kind in ["Isosurface", "RenderMesh", "LoadVolume"] {
        if rng.chance(noise) {
            let decoy = wf.add_node(kind, 1);
            wf.set_label(decoy, &format!("decoy {}", rng.next() % 100))
                .expect("decoy exists");
        }
    }
    if rng.chance(noise * 0.5) {
        if let Some(save) = wf
            .nodes
            .values()
            .find(|n| n.module == "SaveFile")
            .map(|n| n.id)
        {
            wf.remove_node(save).expect("save removable");
        }
    }
    // Harsh noise can remove a backbone stage the template needs to rewire
    // against — the regime where analogy transfer genuinely fails.
    if rng.chance(noise * 0.4) {
        if let Some(render) = wf
            .nodes
            .values()
            .find(|n| n.module == "RenderMesh" && !n.label.starts_with("decoy"))
            .map(|n| n.id)
        {
            wf.remove_node(render).expect("render removable");
        }
    }
    wf
}

/// A linear evolution history of `depth` commits over `Busy` modules,
/// alternating adds and parameter tweaks — the workload of the
/// version-tree materialization experiment (E8).
pub fn evolution_history(
    seed: u64,
    depth: usize,
    snapshot_every: usize,
) -> (VersionTree, VersionId) {
    let mut tree = VersionTree::new(WorkflowId(1), "synthetic history");
    if snapshot_every > 0 {
        tree = tree.with_snapshots(snapshot_every);
    }
    let mut rng = Rng(seed);
    let mut cur = tree.root();
    let mut next_node = 0u64;
    let mut existing: Vec<NodeId> = Vec::new();
    for i in 0..depth {
        let action = if existing.is_empty() || i % 3 != 2 {
            let id = NodeId(next_node);
            next_node += 1;
            existing.push(id);
            Action::AddNode {
                node: Node {
                    id,
                    module: "Busy".into(),
                    version: 1,
                    label: format!("stage {i}"),
                    params: BTreeMap::new(),
                },
            }
        } else {
            let victim = existing[(rng.next() as usize) % existing.len()];
            Action::SetParam {
                node: victim,
                name: "work".into(),
                new: Some(ParamValue::Int((rng.next() % 1000) as i64)),
                old: None,
            }
        };
        cur = tree.commit(cur, action, "generator").expect("commit");
    }
    (tree, cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analogy::apply_by_analogy;

    #[test]
    fn triple_shapes_are_right() {
        let (a, b, c) = figure2_triple();
        assert_eq!(a.node_count(), 4);
        assert_eq!(b.node_count(), 5);
        assert_eq!(c.node_count(), 6);
        assert!(b.nodes.values().any(|n| n.module == "SmoothMesh"));
        assert!(!c.nodes.values().any(|n| n.module == "SmoothMesh"));
    }

    #[test]
    fn noisy_target_is_deterministic_per_seed() {
        let x = noisy_target(5, 0.5);
        let y = noisy_target(5, 0.5);
        assert_eq!(x, y);
        let z = noisy_target(6, 0.5);
        assert!(x != z || x.node_count() == z.node_count());
    }

    #[test]
    fn zero_noise_target_is_clean() {
        let (_, _, c) = figure2_triple();
        let t = noisy_target(1, 0.0);
        assert_eq!(t.node_count(), c.node_count());
    }

    #[test]
    fn analogy_success_degrades_with_noise() {
        let (a, b, _) = figure2_triple();
        let clean_ok = {
            let t = noisy_target(3, 0.0);
            let r = apply_by_analogy(&a, &b, &t).unwrap();
            r.is_clean()
        };
        assert!(clean_ok, "noise-free transfer must succeed");
        // At extreme noise across many seeds, at least some transfers
        // degrade (lower mean score or skipped changes).
        let mut degraded = 0;
        for seed in 0..10 {
            let t = noisy_target(seed, 0.95);
            let r = apply_by_analogy(&a, &b, &t).unwrap();
            if !r.is_clean() || r.matching.mean_score() < 0.8 {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "extreme noise must hurt at least sometimes");
    }

    #[test]
    fn evolution_history_materializes() {
        let (tree, tip) = evolution_history(7, 20, 0);
        assert_eq!(tree.len(), 21);
        let wf = tree.materialize(tip).unwrap();
        assert!(wf.node_count() >= 13, "roughly 2/3 of commits add nodes");
        let (tree_s, tip_s) = evolution_history(7, 20, 5);
        assert_eq!(
            tree_s.materialize(tip_s).unwrap(),
            wf,
            "snapshots must not change semantics"
        );
        assert!(tree_s.replay_cost(tip_s) < tree.replay_cost(tip));
    }
}
