//! Offline typecheck stub for `serde`. See dev/stubs/README.md.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}
pub trait Deserialize<'de>: Sized {
    /// Stub.
    fn deserialize_stub() {}
}
impl<'de, T> Deserialize<'de> for T {}
pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
pub mod ser {
    pub use super::Serialize;
}
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
