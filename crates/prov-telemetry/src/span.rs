//! Structured spans over the engine's event stream.
//!
//! One span per workflow run, module run, module attempt, backoff wait,
//! and cache lookup, with parent/child links mirroring the execution
//! hierarchy (run → module → attempt/backoff/lookup). The collector is an
//! ordinary [`ExecObserver`]: it holds no locks of its own, so it is
//! lock-cheap under the sequential driver and inherits the parallel
//! driver's single observer mutex (the same seam provenance capture
//! already sits on).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wf_engine::event::now_micros;
use wf_engine::{EngineEvent, ExecId, ExecObserver};
use wf_model::NodeId;

/// Identifier of one span, unique within a [`SpanCollector`]'s lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span{}", self.0)
    }
}

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// One whole workflow run.
    Run,
    /// One module run (covers all attempts, waits, and lookups).
    Module,
    /// One attempt of a module body.
    Attempt,
    /// A retry-backoff wait.
    Backoff,
    /// A memoization-cache probe.
    CacheLookup,
    /// One PQL query evaluation (emitted by the query observer, not the
    /// engine event stream).
    Query,
    /// One server-handled request (emitted by the provenance server's
    /// request path; the root of a request's server-side subtree).
    Request,
    /// One internal server operation (WAL append, plan operator, …),
    /// always a child of a `Request` or `Query` span.
    Operator,
}

impl SpanKind {
    /// Lower-case label used by exporters (Chrome trace `cat`, JSONL).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Module => "module",
            SpanKind::Attempt => "attempt",
            SpanKind::Backoff => "backoff",
            SpanKind::CacheLookup => "cache",
            SpanKind::Query => "query",
            SpanKind::Request => "request",
            SpanKind::Operator => "operator",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Span identity.
    pub id: SpanId,
    /// Enclosing span, if any (run spans are roots).
    pub parent: Option<SpanId>,
    /// What this span measures.
    pub kind: SpanKind,
    /// Human-readable name (workflow name, module identity, …).
    pub name: String,
    /// The workflow run this span belongs to.
    pub exec: ExecId,
    /// The node, for module-scoped spans.
    pub node: Option<NodeId>,
    /// Start instant on the process-monotonic microsecond clock.
    pub start_micros: u64,
    /// End instant on the same clock (`>= start_micros`).
    pub end_micros: u64,
    /// Free-form key/value annotations (status, errors, sizes, …).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Span duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.end_micros.saturating_sub(self.start_micros)
    }

    /// The value of an attribute, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A finished collection of spans, ordered by start time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// All completed spans.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans belonging to one workflow run.
    pub fn spans_of(&self, exec: ExecId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.exec == exec)
    }

    /// The root (run) span of one workflow run.
    pub fn run_span(&self, exec: ExecId) -> Option<&Span> {
        self.spans
            .iter()
            .find(|s| s.exec == exec && s.kind == SpanKind::Run)
    }

    /// Spans of one kind.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Children of a span, in start order.
    pub fn children_of(&self, id: SpanId) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }
}

/// A span still being measured.
#[derive(Debug, Clone)]
struct OpenSpan {
    span: Span,
}

/// The in-process span collector.
///
/// Subscribes to the [`EngineEvent`] stream and assembles one [`Trace`].
/// A single collector can observe many runs, sequentially or interleaved
/// (spans are keyed by `ExecId`); retrieve the result with
/// [`SpanCollector::take_trace`].
#[derive(Debug, Default)]
pub struct SpanCollector {
    next_id: u64,
    completed: Vec<Span>,
    open_runs: BTreeMap<ExecId, OpenSpan>,
    open_modules: BTreeMap<(ExecId, NodeId), OpenSpan>,
    open_attempts: BTreeMap<(ExecId, NodeId), OpenSpan>,
}

impl SpanCollector {
    /// A fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of completed spans so far.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Take the trace collected so far (completed spans only; spans of
    /// still-running executions stay pending). Spans are ordered by start
    /// instant, ties broken by span id (creation order).
    pub fn take_trace(&mut self) -> Trace {
        let mut spans = std::mem::take(&mut self.completed);
        spans.sort_by_key(|s| (s.start_micros, s.id));
        Trace { spans }
    }

    fn alloc(&mut self) -> SpanId {
        let id = SpanId(self.next_id);
        self.next_id += 1;
        id
    }

    fn open(
        &mut self,
        parent: Option<SpanId>,
        kind: SpanKind,
        name: String,
        exec: ExecId,
        node: Option<NodeId>,
    ) -> OpenSpan {
        let id = self.alloc();
        OpenSpan {
            span: Span {
                id,
                parent,
                kind,
                name,
                exec,
                node,
                start_micros: now_micros(),
                end_micros: 0,
                attrs: Vec::new(),
            },
        }
    }

    fn close(&mut self, mut open: OpenSpan) {
        open.span.end_micros = now_micros().max(open.span.start_micros);
        self.completed.push(open.span);
    }

    /// Record a span whose extent is already known (backoffs, lookups).
    /// The span's `id` is assigned here; its `end_micros` is clamped to
    /// not precede `start_micros`.
    fn push_interval(&mut self, mut span: Span) {
        span.id = self.alloc();
        span.end_micros = span.end_micros.max(span.start_micros);
        self.completed.push(span);
    }

    fn run_id(&self, exec: ExecId) -> Option<SpanId> {
        self.open_runs.get(&exec).map(|o| o.span.id)
    }

    fn module_id(&self, exec: ExecId, node: NodeId) -> Option<SpanId> {
        self.open_modules.get(&(exec, node)).map(|o| o.span.id)
    }
}

impl ExecObserver for SpanCollector {
    fn on_event(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::WorkflowStarted { exec, name, .. } => {
                let open = self.open(None, SpanKind::Run, name.clone(), *exec, None);
                self.open_runs.insert(*exec, open);
            }
            EngineEvent::RunResumed {
                exec,
                resumed_from,
                reused,
            } => {
                if let Some(run) = self.open_runs.get_mut(exec) {
                    run.span
                        .attrs
                        .push(("resumed_from".into(), resumed_from.to_string()));
                    run.span.attrs.push(("reused".into(), reused.to_string()));
                }
            }
            EngineEvent::ModuleStarted {
                exec,
                node,
                identity,
                ..
            } => {
                let parent = self.run_id(*exec);
                let module = self.open(
                    parent,
                    SpanKind::Module,
                    identity.clone(),
                    *exec,
                    Some(*node),
                );
                // The first attempt starts with the module itself; retries
                // open subsequent attempt spans via `AttemptStarted`.
                let attempt = self.open(
                    Some(module.span.id),
                    SpanKind::Attempt,
                    format!("{identity} attempt 1"),
                    *exec,
                    Some(*node),
                );
                self.open_modules.insert((*exec, *node), module);
                self.open_attempts.insert((*exec, *node), attempt);
            }
            EngineEvent::AttemptStarted {
                exec,
                node,
                attempt,
            } => {
                let parent = self.module_id(*exec, *node);
                let name = self
                    .open_modules
                    .get(&(*exec, *node))
                    .map(|m| format!("{} attempt {attempt}", m.span.name))
                    .unwrap_or_else(|| format!("attempt {attempt}"));
                let open = self.open(parent, SpanKind::Attempt, name, *exec, Some(*node));
                self.open_attempts.insert((*exec, *node), open);
            }
            EngineEvent::AttemptFailed {
                exec,
                node,
                error,
                will_retry,
                ..
            } => {
                if let Some(mut open) = self.open_attempts.remove(&(*exec, *node)) {
                    open.span.attrs.push(("error".into(), error.clone()));
                    open.span
                        .attrs
                        .push(("will_retry".into(), will_retry.to_string()));
                    self.close(open);
                }
            }
            EngineEvent::ModuleTimedOut {
                exec,
                node,
                limit_micros,
                ..
            } => {
                if let Some(open) = self.open_attempts.get_mut(&(*exec, *node)) {
                    open.span
                        .attrs
                        .push(("timed_out_limit_micros".into(), limit_micros.to_string()));
                }
            }
            EngineEvent::BackoffStarted {
                exec,
                node,
                next_attempt,
                delay_micros,
            } => {
                // The wait happens immediately after this event; its extent
                // is known up front.
                let parent = self.module_id(*exec, *node);
                let start = now_micros();
                self.push_interval(Span {
                    id: SpanId(0),
                    parent,
                    kind: SpanKind::Backoff,
                    name: format!("backoff before attempt {next_attempt}"),
                    exec: *exec,
                    node: Some(*node),
                    start_micros: start,
                    end_micros: start + delay_micros,
                    attrs: vec![("delay_micros".into(), delay_micros.to_string())],
                });
            }
            EngineEvent::CacheChecked {
                exec,
                node,
                hit,
                elapsed_micros,
            } => {
                let parent = self.module_id(*exec, *node);
                let end = now_micros();
                self.push_interval(Span {
                    id: SpanId(0),
                    parent,
                    kind: SpanKind::CacheLookup,
                    name: "cache lookup".into(),
                    exec: *exec,
                    node: Some(*node),
                    start_micros: end.saturating_sub(*elapsed_micros),
                    end_micros: end,
                    attrs: vec![("hit".into(), hit.to_string())],
                });
            }
            EngineEvent::OutputProduced {
                exec,
                node,
                port,
                meta,
            } => {
                if let Some(open) = self.open_modules.get_mut(&(*exec, *node)) {
                    open.span.attrs.push((
                        format!("out:{port}"),
                        format!("{} {}B", meta.dtype, meta.size),
                    ));
                }
            }
            EngineEvent::ModuleFinished {
                exec,
                node,
                status,
                from_cache,
                error,
                ..
            } => {
                // A cache-served module never ran its body: drop the
                // speculative attempt-1 span instead of recording it.
                if let Some(attempt) = self.open_attempts.remove(&(*exec, *node)) {
                    if !*from_cache {
                        let mut attempt = attempt;
                        attempt.span.attrs.push(("status".into(), "ok".into()));
                        self.close(attempt);
                    }
                }
                if let Some(mut module) = self.open_modules.remove(&(*exec, *node)) {
                    module
                        .span
                        .attrs
                        .push(("status".into(), status.to_string()));
                    if *from_cache {
                        module.span.attrs.push(("from_cache".into(), "true".into()));
                    }
                    if let Some(e) = error {
                        module.span.attrs.push(("error".into(), e.clone()));
                    }
                    self.close(module);
                }
                // Skipped nodes never emitted ModuleStarted: record a
                // zero-length marker span so the trace stays complete.
                else if *status == wf_engine::RunStatus::Skipped {
                    let parent = self.run_id(*exec);
                    let at = now_micros();
                    self.push_interval(Span {
                        id: SpanId(0),
                        parent,
                        kind: SpanKind::Module,
                        name: "skipped".into(),
                        exec: *exec,
                        node: Some(*node),
                        start_micros: at,
                        end_micros: at,
                        attrs: vec![("status".into(), "skipped".into())],
                    });
                }
            }
            EngineEvent::WorkflowFinished { exec, status, .. } => {
                if let Some(mut run) = self.open_runs.remove(exec) {
                    run.span.attrs.push(("status".into(), status.to_string()));
                    self.close(run);
                }
            }
            EngineEvent::InputBound { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_engine::{standard_registry, ExecPolicy, Executor, FaultPlan, RetryPolicy};
    use wf_model::WorkflowBuilder;

    fn chain(n: usize) -> wf_model::Workflow {
        let mut b = WorkflowBuilder::new(1, "chain");
        let mut prev = None;
        for i in 0..n {
            let id = b.add("Busy");
            b.param(id, "work", 50i64).param(id, "seed", i as i64);
            if let Some(p) = prev {
                b.connect(p, "out", id, "in");
            }
            prev = Some(id);
        }
        b.build()
    }

    #[test]
    fn one_span_per_run_module_and_attempt() {
        let wf = chain(3);
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        let r = exec.run_observed(&wf, &mut col).unwrap();
        let trace = col.take_trace();
        assert_eq!(trace.of_kind(SpanKind::Run).count(), 1);
        assert_eq!(trace.of_kind(SpanKind::Module).count(), 3);
        assert_eq!(trace.of_kind(SpanKind::Attempt).count(), 3);
        let run = trace.run_span(r.exec).unwrap();
        assert_eq!(run.attr("status"), Some("succeeded"));
        // Every module span is a child of the run span; every attempt span
        // a child of its module span.
        for m in trace.of_kind(SpanKind::Module) {
            assert_eq!(m.parent, Some(run.id));
            assert!(m.end_micros >= m.start_micros);
            let kids = trace.children_of(m.id);
            assert_eq!(kids.len(), 1);
            assert_eq!(kids[0].kind, SpanKind::Attempt);
        }
    }

    #[test]
    fn retries_produce_attempt_and_backoff_spans() {
        let mut b = WorkflowBuilder::new(1, "flaky");
        let n = b.add("ConstInt");
        let wf = b.build();
        let exec = Executor::new(standard_registry())
            .with_policy(
                ExecPolicy::new().with_retry(RetryPolicy::attempts(3).backoff(100, 2.0, 400)),
            )
            .with_faults(FaultPlan::new().fail_on(n, 1, "transient"));
        let mut col = SpanCollector::new();
        exec.run_observed(&wf, &mut col).unwrap();
        let trace = col.take_trace();
        let attempts: Vec<_> = trace.of_kind(SpanKind::Attempt).collect();
        assert_eq!(attempts.len(), 2, "failed attempt + successful retry");
        assert_eq!(attempts[0].attr("will_retry"), Some("true"));
        assert!(attempts[0].attr("error").unwrap().contains("transient"));
        let backoffs: Vec<_> = trace.of_kind(SpanKind::Backoff).collect();
        assert_eq!(backoffs.len(), 1);
        assert!(backoffs[0].duration_micros() >= 100);
    }

    #[test]
    fn cache_lookup_spans_record_hits_and_misses() {
        let wf = chain(2);
        let exec = Executor::new(standard_registry()).with_cache(64);
        let mut col = SpanCollector::new();
        exec.run_observed(&wf, &mut col).unwrap();
        exec.run_observed(&wf, &mut col).unwrap();
        let trace = col.take_trace();
        let lookups: Vec<_> = trace.of_kind(SpanKind::CacheLookup).collect();
        assert_eq!(lookups.len(), 4);
        assert_eq!(
            lookups
                .iter()
                .filter(|s| s.attr("hit") == Some("true"))
                .count(),
            2
        );
        // Cache-served modules have no attempt span (no body ran).
        assert_eq!(trace.of_kind(SpanKind::Attempt).count(), 2);
        assert_eq!(trace.of_kind(SpanKind::Module).count(), 4);
    }

    #[test]
    fn skipped_nodes_get_marker_spans() {
        let mut b = WorkflowBuilder::new(1, "failing");
        let bad = b.add("FailIf");
        b.param(bad, "fail", true);
        let down = b.add("Identity");
        b.connect(bad, "out", down, "in");
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        exec.run_observed(&b.build(), &mut col).unwrap();
        let trace = col.take_trace();
        let skipped: Vec<_> = trace
            .of_kind(SpanKind::Module)
            .filter(|s| s.attr("status") == Some("skipped"))
            .collect();
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].node, Some(down));
        assert_eq!(skipped[0].duration_micros(), 0);
    }

    #[test]
    fn parallel_driver_produces_a_complete_trace() {
        let wf = wf_engine::synth::challenge_workflow(2, 4, 3);
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        let r = exec.run_parallel(&wf, 4, &mut col).unwrap();
        let trace = col.take_trace();
        assert_eq!(trace.of_kind(SpanKind::Run).count(), 1);
        assert_eq!(trace.of_kind(SpanKind::Module).count(), wf.node_count());
        let run = trace.run_span(r.exec).unwrap();
        for s in trace.spans_of(r.exec) {
            assert!(s.start_micros >= run.start_micros);
            assert!(s.kind == SpanKind::Run || s.end_micros <= run.end_micros + 1000);
        }
    }

    #[test]
    fn interleaved_runs_stay_separated() {
        let wf = chain(2);
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        let a = exec.run_observed(&wf, &mut col).unwrap();
        let b = exec.run_observed(&wf, &mut col).unwrap();
        let trace = col.take_trace();
        assert_eq!(
            trace.spans_of(a.exec).count(),
            5,
            "run + 2 modules + 2 attempts"
        );
        assert_eq!(trace.spans_of(b.exec).count(), 5);
        assert!(trace.run_span(a.exec).is_some());
        assert!(trace.run_span(b.exec).is_some());
    }
}
