//! E12 bench: row-level provenance (database/workflow bridge) — per-row
//! lineage tracing and taint analysis at growing table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_core::finegrained::{RowLineageTracer, RowRef};
use wf_engine::{standard_registry, Executor};
use wf_model::WorkflowBuilder;

fn bench_rowprov(c: &mut Criterion) {
    for rows in [32usize, 256] {
        let mut b = WorkflowBuilder::new(1, "db");
        let src_a = b.add("TableSource");
        b.param(src_a, "rows", rows as i64)
            .param(src_a, "seed", 1i64);
        let src_b = b.add("TableSource");
        b.param(src_b, "rows", rows as i64)
            .param(src_b, "seed", 2i64);
        let join = b.add("TableJoin");
        let filter = b.add("TableFilter");
        b.param(filter, "min", 25.0f64);
        let agg = b.add("TableAggregate");
        b.param(agg, "group_col", "grp")
            .param(agg, "agg_col", "value");
        b.connect(src_a, "out", join, "left")
            .connect(src_b, "out", join, "right")
            .connect(join, "out", filter, "in")
            .connect(filter, "out", agg, "in");
        let wf = b.build();
        let exec = Executor::new(standard_registry());

        let mut group = c.benchmark_group(format!("rowprov/rows={rows}"));
        group.bench_function(BenchmarkId::from_parameter("run_pipeline"), |bch| {
            bch.iter(|| exec.run(&wf).expect("runs").node_runs.len())
        });
        let result = exec.run(&wf).expect("runs");
        let tracer = RowLineageTracer::new(&wf, &result);
        group.bench_function(BenchmarkId::from_parameter("base_rows_of_group"), |bch| {
            bch.iter(|| tracer.base_rows(&RowRef::new(agg, "out", 0)).len())
        });
        group.bench_function(BenchmarkId::from_parameter("taint_one_fact"), |bch| {
            bch.iter(|| {
                tracer
                    .tainted_rows(&RowRef::new(src_a, "out", 0), agg)
                    .len()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_rowprov);
criterion_main!(benches);
