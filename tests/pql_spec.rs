//! PQL language specification tests: grammar corner cases, DNF filter
//! semantics, the `executions` entity, and a generative parse/render
//! round-trip.

use proptest::prelude::*;
use prov_query::{parse, Comparison, Condition, Direction, Entity, Field, Op, Query, Target};
use provenance_workflows::prelude::*;

fn fig1_engine() -> (PqlEngine, RetrospectiveProvenance) {
    let (wf, _) = wf_engine::synth::figure1_workflow(1);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).unwrap();
    let retro = cap.take(r.exec).unwrap();
    let mut e = PqlEngine::new();
    e.ingest(&retro);
    (e, retro)
}

#[test]
fn or_filter_unions_disjuncts() {
    let (e, _) = fig1_engine();
    let hist = e.eval("count runs where module = histogram").unwrap().len();
    let iso = e
        .eval("count runs where module = isosurface")
        .unwrap()
        .len();
    let both = e
        .eval("count runs where module = histogram or module = isosurface")
        .unwrap()
        .len();
    assert_eq!(hist, 1);
    assert_eq!(iso, 1);
    assert_eq!(both, 2);
}

#[test]
fn and_binds_tighter_than_or() {
    let (e, _) = fig1_engine();
    // (module = histogram AND status = failed) OR module = isosurface
    // The first disjunct is empty (nothing failed), so only iso matches.
    let n = e
        .eval("count runs where module = histogram and status = failed or module = isosurface")
        .unwrap()
        .len();
    assert_eq!(n, 1);
}

#[test]
fn executions_entity_counts_and_filters() {
    let (wf, _) = wf_engine::synth::figure1_workflow(1);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    exec.run_observed(&wf, &mut cap).unwrap();
    exec.run_observed(&wf, &mut cap).unwrap();
    // A failing run too.
    let mut b = WorkflowBuilder::new(2, "failing");
    let bad = b.add("FailIf");
    b.param(bad, "fail", true);
    exec.run_observed(&b.build(), &mut cap).unwrap();

    let mut e = PqlEngine::new();
    for retro in cap.finish_all() {
        e.ingest(&retro);
    }
    assert_eq!(e.eval("count executions").unwrap(), QueryResult::Count(3));
    assert_eq!(
        e.eval("count executions where status = failed").unwrap(),
        QueryResult::Count(1)
    );
    let listed = e
        .eval("list executions where status = succeeded")
        .unwrap()
        .render();
    assert!(listed.contains("visualize-head-ct"));
}

#[test]
fn filter_on_closure_applies_dnf() {
    let (e, retro) = fig1_engine();
    let file = retro
        .runs
        .iter()
        .find(|r| r.identity == "SaveFile@1")
        .unwrap()
        .outputs[0]
        .1;
    let q =
        format!("lineage of artifact {file:016x} where module = histogram or module = loadvolume");
    let n = e.eval(&q).unwrap().len();
    assert_eq!(n, 2);
}

// --- generative parse/render round-trip ---------------------------------

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        Just(Field::Module),
        Just(Field::Status),
        Just(Field::Dtype),
        Just(Field::Exec),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Eq), Just(Op::Neq), Just(Op::Contains)]
}

fn arb_comparison() -> impl Strategy<Value = Comparison> {
    // The alphabet deliberately includes `"` and `\` — the renderer must
    // escape both (backslash first) for quoted values to round-trip.
    (arb_field(), arb_op(), r#"[a-z0-9_@. "\\]{0,16}"#).prop_map(|(field, op, value)| Comparison {
        field,
        op,
        value,
    })
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    proptest::collection::vec(proptest::collection::vec(arb_comparison(), 1..3), 0..3)
        .prop_map(|any_of| Condition { any_of })
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        any::<u64>().prop_map(Target::Artifact),
        (0u64..1000, 0u64..1000).prop_map(|(e, n)| Target::Run(e, n)),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    let entity = prop_oneof![
        Just(Entity::Runs),
        Just(Entity::Artifacts),
        Just(Entity::Executions)
    ];
    prop_oneof![
        (
            prop_oneof![Just(Direction::Upstream), Just(Direction::Downstream)],
            arb_target(),
            proptest::option::of(0usize..64),
            arb_condition()
        )
            .prop_map(|(direction, target, depth, filter)| Query::Closure {
                direction,
                target,
                depth,
                filter
            }),
        (entity.clone(), arb_condition())
            .prop_map(|(entity, filter)| Query::Count { entity, filter }),
        (entity, arb_condition()).prop_map(|(entity, filter)| Query::List { entity, filter }),
        (arb_target(), arb_target(), proptest::option::of(1usize..32))
            .prop_map(|(from, to, max_len)| Query::Paths { from, to, max_len }),
    ]
}

proptest! {
    #[test]
    fn parse_render_roundtrip(q in arb_query()) {
        let rendered = q.to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("{rendered:?} failed to reparse: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    /// The canonical rendering is a fixed point: rendering, reparsing, and
    /// rendering again changes nothing, textually or structurally.
    #[test]
    fn canonical_rendering_is_idempotent(q in arb_query()) {
        let r1 = q.to_string();
        let p1 = parse(&r1).unwrap_or_else(|e| panic!("{r1:?} failed to reparse: {e}"));
        let r2 = p1.to_string();
        let p2 = parse(&r2).unwrap_or_else(|e| panic!("{r2:?} failed to reparse: {e}"));
        prop_assert_eq!(&r1, &r2, "render(parse(render)) drifted");
        prop_assert_eq!(p1, p2, "reparse of the canonical form drifted");
    }
}

/// Inputs that historically broke the round trip: backslashes in quoted
/// values (renderer escaped `"` but not `\`), and digests whose canonical
/// zero-padded hex rendering is all decimal digits (the lexer classified
/// them as integers on reparse).
#[test]
fn roundtrip_regressions_hold() {
    for q in [
        r#"count runs where module = "a\\b""#,
        r#"count runs where module = "say \"hi\" twice""#,
        r#"list artifacts where dtype contains "\\\\server\\share""#,
        "lineage of artifact 16",
        "lineage of artifact 1311768467294899695", // 0x123456789abcdef
        "paths from artifact 16 to artifact 32",
    ] {
        let p1 = parse(q).unwrap_or_else(|e| panic!("{q:?} failed to parse: {e}"));
        let r1 = p1.to_string();
        let p2 = parse(&r1).unwrap_or_else(|e| panic!("canonical {r1:?} failed to reparse: {e}"));
        assert_eq!(p1, p2, "AST drifted across the round trip for {q:?}");
        assert_eq!(r1, p2.to_string(), "rendering not idempotent for {q:?}");
    }
}
