//! End-to-end tests of the `provctl` command-line tool.

use std::path::PathBuf;
use std::process::{Command, Output};

fn provctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_provctl"))
        .args(args)
        .output()
        .expect("provctl spawns")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("provctl-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn demo_validate_run_query_roundtrip() {
    let dir = tempdir("roundtrip");
    let wf = dir.join("wf.json");
    let prov = dir.join("prov.json");
    let wf_s = wf.to_str().unwrap();
    let prov_s = prov.to_str().unwrap();

    let o = provctl(&["demo", "fig1", wf_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("8 modules"));

    let o = provctl(&["validate", wf_s]);
    assert!(o.status.success(), "{}", stderr(&o));

    let o = provctl(&["recipe", wf_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("LoadVolume@1"));

    let o = provctl(&["run", wf_s, prov_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("succeeded"));

    let o = provctl(&["log", prov_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("Histogram@1"));

    let o = provctl(&["query", prov_s, "count runs where status = succeeded"]);
    assert!(o.status.success());
    assert_eq!(stdout(&o).trim(), "8");

    let o = provctl(&["dot", prov_s]);
    assert!(o.status.success());
    assert!(stdout(&o).starts_with("digraph"));

    let o = provctl(&["wfdot", wf_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("LoadVolume@1"));

    let o = provctl(&["profile", prov_s]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("critical path"));

    let o = provctl(&["verify", wf_s, prov_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("8/8"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lineage_finds_upstream_of_saved_file() {
    let dir = tempdir("lineage");
    let wf = dir.join("wf.json");
    let prov = dir.join("prov.json");
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);
    provctl(&["run", wf.to_str().unwrap(), prov.to_str().unwrap()]);
    // Find a bytes artifact digest via a query, then trace it.
    let o = provctl(&[
        "query",
        prov.to_str().unwrap(),
        "list artifacts where dtype = bytes",
    ]);
    let line = stdout(&o);
    let digest = line
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("a bytes artifact exists")
        .to_string();
    let o = provctl(&["lineage", prov.to_str().unwrap(), &digest]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("LoadVolume@1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_across_multiple_provenance_files() {
    let dir = tempdir("multi");
    let wf = dir.join("wf.json");
    let p1 = dir.join("p1.json");
    let p2 = dir.join("p2.json");
    provctl(&["demo", "db", wf.to_str().unwrap()]);
    provctl(&["run", wf.to_str().unwrap(), p1.to_str().unwrap()]);
    provctl(&["run", wf.to_str().unwrap(), p2.to_str().unwrap()]);
    // NOTE: two runs of the same spec get distinct exec ids 0 and 0 —
    // each invocation is a fresh process, so both files record exec 0 and
    // the engine deduplicates runs by (exec, node). Counting executions
    // still sees a single logical record.
    let o = provctl(&[
        "query",
        p1.to_str().unwrap(),
        p2.to_str().unwrap(),
        "count runs",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let n: usize = stdout(&o).trim().parse().expect("a count");
    assert!(n >= 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_workflow_is_rejected() {
    let dir = tempdir("invalid");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{ not json").unwrap();
    let o = provctl(&["validate", bad.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("bad workflow"));
    let o = provctl(&["validate", dir.join("missing.json").to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("cannot read"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_on_no_args() {
    let o = provctl(&[]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("usage: provctl"));
}

#[test]
fn failing_workflow_reports_and_captures() {
    let dir = tempdir("failing");
    // Hand-author a failing workflow spec.
    let mut b = wf_model::WorkflowBuilder::new(1, "will-fail");
    let n = b.add("FailIf");
    b.param(n, "fail", true);
    b.param(n, "message", "cli-injected");
    let wf = b.build();
    let wf_path = dir.join("wf.json");
    let prov_path = dir.join("prov.json");
    std::fs::write(&wf_path, wf.to_json().unwrap()).unwrap();
    let o = provctl(&[
        "run",
        wf_path.to_str().unwrap(),
        prov_path.to_str().unwrap(),
    ]);
    assert!(!o.status.success(), "failed runs exit nonzero");
    // Provenance was still captured, with the error message.
    let o = provctl(&["log", prov_path.to_str().unwrap()]);
    assert!(stdout(&o).contains("cli-injected"));
    let o = provctl(&[
        "query",
        prov_path.to_str().unwrap(),
        "count runs where status = failed",
    ]);
    assert_eq!(stdout(&o).trim(), "1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_exports_a_valid_chrome_trace_with_span_log() {
    let dir = tempdir("trace");
    let wf = dir.join("wf.json");
    let trace = dir.join("trace.json");
    let spans = dir.join("spans.jsonl");
    let spans_opt = format!("spans={}", spans.to_str().unwrap());
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);

    let o = provctl(&[
        "trace",
        wf.to_str().unwrap(),
        trace.to_str().unwrap(),
        &spans_opt,
        "threads=4",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("succeeded"));
    assert!(stdout(&o).contains("speedup"));

    // The written file passes the independent validator command.
    let o = provctl(&["tracecheck", trace.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("valid Chrome trace"));

    // The span log has one JSON object per line and survives grep-ability:
    // the run span mentions the workflow, module spans their identities.
    let log = std::fs::read_to_string(&spans).unwrap();
    assert!(log.lines().count() >= 9, "run + 8 modules at minimum");
    assert!(log.contains("\"kind\":\"run\""));
    assert!(log.contains("\"kind\":\"module\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tracecheck_rejects_non_trace_files() {
    let dir = tempdir("tracecheck");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"notATrace\":true}").unwrap();
    let o = provctl(&["tracecheck", bad.to_str().unwrap()]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("traceEvents"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_prints_prometheus_text() {
    let dir = tempdir("metrics");
    let wf = dir.join("wf.json");
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);
    let o = provctl(&["metrics", wf.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    let text = stdout(&o);
    assert!(text.contains("# TYPE wf_runs_started_total counter"));
    assert!(text.contains("wf_runs_started_total 1"));
    assert!(text.contains("wf_modules_started_total 8"));
    assert!(text.contains("wf_module_latency_micros_bucket{le=\"+Inf\"} 8"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_plan_analyze_stats_and_backend_reports() {
    let dir = tempdir("explain");
    let wf = dir.join("wf.json");
    let prov = dir.join("prov.json");
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);
    provctl(&["run", wf.to_str().unwrap(), prov.to_str().unwrap()]);
    let prov_s = prov.to_str().unwrap();

    // Plain EXPLAIN needs no provenance: it renders the logical plan.
    let o = provctl(&["explain", "lineage of artifact 00000000000000ff"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let plan = stdout(&o);
    assert!(plan.starts_with("Collect"), "{plan}");
    assert!(plan.contains("+- Traverse (upstream)"));
    assert!(plan.contains("Anchor (artifact 00000000000000ff)"));

    // Find a real digest to analyze.
    let o = provctl(&["query", prov_s, "list artifacts where dtype = bytes"]);
    let digest = stdout(&o)
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
        .expect("a bytes artifact exists");
    let q = format!("lineage of artifact {digest}");

    // EXPLAIN ANALYZE annotates every operator with rows/time/accesses.
    let o = provctl(&["explain", prov_s, &q, "analyze"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let text = stdout(&o);
    assert!(text.contains("rows="), "{text}");
    assert!(text.contains("total:"), "{text}");
    assert!(text.contains("accesses:"), "{text}");

    // Backend ANALYZE reports the chosen backend's access profile.
    for backend in ["graph", "triple", "relational", "log"] {
        let opt = format!("backend={backend}");
        let o = provctl(&["explain", prov_s, &q, &opt]);
        assert!(o.status.success(), "[{backend}] {}", stderr(&o));
        let text = stdout(&o);
        assert!(text.starts_with(&format!("backend: {backend}")), "{text}");
        assert!(text.contains("TransitiveClosure"), "{text}");
    }

    // Unknown backends are rejected with the valid names.
    let o = provctl(&["explain", prov_s, &q, "backend=quantum"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("graph"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slowlog_retains_queries_and_writes_jsonl() {
    let dir = tempdir("slowlog");
    let wf = dir.join("wf.json");
    let prov = dir.join("prov.json");
    let jsonl = dir.join("slow.jsonl");
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);
    provctl(&["run", wf.to_str().unwrap(), prov.to_str().unwrap()]);

    // Threshold 0 admits the whole canned workload.
    let out_opt = format!("out={}", jsonl.to_str().unwrap());
    let o = provctl(&[
        "slowlog",
        prov.to_str().unwrap(),
        "threshold_us=0",
        &out_opt,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let text = stdout(&o);
    assert!(text.contains("slow-query log:"), "{text}");
    assert!(text.contains("threshold 0us"), "{text}");
    assert!(text.contains("[graph]") && text.contains("[log]"), "{text}");
    assert!(text.contains("lineage of artifact"), "{text}");

    // The JSONL dump has one parsable object per retained entry.
    let dump = std::fs::read_to_string(&jsonl).unwrap();
    assert!(dump.lines().count() > 4, "canned workload retained");
    assert!(dump.lines().all(|l| l.starts_with("{\"seq\":")), "{dump}");
    assert!(dump.contains("\"backend\":\"relational\""));

    // An unreachable threshold retains nothing but still reports totals.
    let o = provctl(&["slowlog", prov.to_str().unwrap(), "threshold_us=999999999"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let text = stdout(&o);
    assert!(text.contains("0 retained"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_reports_critical_path_and_utilization_from_stored_provenance() {
    let dir = tempdir("profile-retro");
    let wf = dir.join("wf.json");
    let prov = dir.join("prov.json");
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);
    provctl(&["run", wf.to_str().unwrap(), prov.to_str().unwrap()]);

    // Profiling needs only the stored provenance file — no re-execution,
    // no workflow spec.
    let o = provctl(&["profile", prov.to_str().unwrap(), "top=3"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let text = stdout(&o);
    assert!(text.contains("critical path:"));
    assert!(text.contains("top 3 modules by self time"));
    assert!(text.contains("utilization"));
    assert!(text.contains("speedup"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_user_input_exits_one_with_a_message_never_a_panic() {
    // Missing provenance file.
    let o = provctl(&["query", "/nonexistent/prov.json", "count runs"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("cannot read"), "{}", stderr(&o));
    assert!(!stderr(&o).contains("panicked"), "{}", stderr(&o));

    // Bad numeric run options: reject, don't wrap or truncate.
    let dir = tempdir("bad-input");
    let wf = dir.join("wf.json");
    provctl(&["demo", "fig1", wf.to_str().unwrap()]);
    for (opt, needle) in [
        ("retries=abc", "needs an integer"),
        ("retries=5000000000", "needs an integer"), // overflows u32 range check via bound
        ("retries=2000", "retries must be 0-1000"),
        ("timeout_ms=never", "needs an integer"),
        ("frobnicate=1", "unknown run option"),
    ] {
        let o = provctl(&[
            "run",
            wf.to_str().unwrap(),
            dir.join("p.json").to_str().unwrap(),
            opt,
        ]);
        assert!(!o.status.success(), "option {opt} must fail");
        let err = stderr(&o);
        assert!(
            err.contains(needle) || err.contains("retries must be 0-1000"),
            "option {opt}: expected '{needle}' in {err}"
        );
        assert!(!err.contains("panicked"), "option {opt} panicked: {err}");
    }

    // Bad serve/client arguments fail fast without touching the network.
    let o = provctl(&["serve", "127.0.0.1:0", "workers=many"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("workers needs an integer"));
    let o = provctl(&["client", "not-an-address", "health"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("bad server address"));
    let o = provctl(&["client", "127.0.0.1:9", "frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("usage: client"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_client_round_trip_over_http() {
    use std::io::BufRead;
    use std::process::Stdio;

    // Start a server on an ephemeral port and read the bound address
    // from its first stdout line.
    let mut serve = Command::new(env!("CARGO_BIN_EXE_provctl"))
        .args(["serve", "127.0.0.1:0", "workers=2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut first_line = String::new();
    std::io::BufReader::new(serve.stdout.take().expect("stdout piped"))
        .read_line(&mut first_line)
        .expect("read listen line");
    let addr = first_line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on listen line")
        .to_string();

    let o = provctl(&["client", &addr, "health"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("\"ready\":true"), "{}", stdout(&o));

    let o = provctl(&["client", &addr, "create", "lab", "tenant=alice"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("\"created\":\"lab\""));

    let o = provctl(&["client", &addr, "query", "lab", "count runs"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("\"type\":\"count\""), "{}", stdout(&o));

    // Unknown namespace: clean exit 1 with the server's JSON error.
    let o = provctl(&["client", &addr, "query", "ghost", "count runs"]);
    assert!(!o.status.success());
    assert!(stdout(&o).contains("no_such_namespace"), "{}", stdout(&o));

    let o = provctl(&["client", &addr, "metrics"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("prov_server_requests_total"));

    // Shutdown drains the server; the serve process exits on its own.
    let o = provctl(&["client", &addr, "shutdown"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let status = serve.wait().expect("serve process exits after shutdown");
    assert!(status.success(), "serve must exit cleanly, got {status:?}");
}
