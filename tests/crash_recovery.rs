//! Kill-9 crash-recovery harness for the durable provenance server.
//!
//! Each round spawns a real `provctl serve` process with a WAL-backed
//! data directory, drives HTTP ingests against it, and SIGKILLs the
//! process at a seeded crash point — then restarts it on the same
//! directory and audits the recovered state. The contract under test is
//! the durability layer's core promise: **every ingest the server acked
//! over HTTP is present after the crash**, the restored generation
//! counter equals the replayed execution count, and torn tails are
//! truncated to the longest valid hash-chained prefix rather than
//! wedging recovery.
//!
//! Crash points vary the fsync policy and checkpointing so recovery is
//! exercised from a bare live tail, from snapshot + tail, and across
//! repeated crashes on the same directory. (kill -9 does not lose the
//! OS page cache, so even `fsync=never` rounds must lose nothing; the
//! policies differ only under power loss.)

use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::model::RetrospectiveProvenance;
use prov_server::{wire, HttpClient, HttpRetry};
use prov_telemetry::parse_json;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wf_engine::synth::figure1_workflow;
use wf_engine::{standard_registry, ExecId, Executor};

const NAMESPACE: &str = "lab";

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "prov-crash-{}-{}-{tag}",
        std::process::id(),
        wf_engine::event::now_millis()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn base_doc() -> RetrospectiveProvenance {
    let (wf, _) = figure1_workflow(1);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).unwrap();
    cap.take(r.exec).unwrap()
}

/// A running `provctl serve` child plus the address it bound.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawn `provctl serve 127.0.0.1:0 data_dir=...` and wait for the
    /// listening line (printed only after WAL replay completes).
    fn spawn(data_dir: &Path, fsync: &str, checkpoint_every: u64) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_provctl"));
        cmd.arg("serve")
            .arg("127.0.0.1:0")
            .arg(format!("data_dir={}", data_dir.display()))
            .arg(format!("fsync={fsync}"))
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if checkpoint_every > 0 {
            cmd.arg(format!("checkpoint_every={checkpoint_every}"));
        }
        let mut child = cmd.spawn().expect("provctl serve spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve prints a listening line before EOF")
                .expect("readable stdout");
            if let Some(rest) = line.strip_prefix("prov-server listening on ") {
                break rest.trim().parse().expect("valid listen address");
            }
        };
        // Drain the rest of stdout so the child never blocks on a full
        // pipe; we kill -9 it anyway.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    fn client(&self) -> HttpClient {
        HttpClient::new(self.addr, "crash-harness")
    }

    /// SIGKILL — no drain, no flush, no destructors.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }
}

fn stats(client: &HttpClient) -> prov_server::NamespaceStats {
    let reply = client.stats(NAMESPACE).expect("stats reachable");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    wire::stats_from_json(&parse_json(&reply.body).unwrap()).unwrap()
}

fn count_executions(client: &HttpClient) -> u64 {
    let reply = client.query(NAMESPACE, "count executions").unwrap();
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let q = wire::reply_from_json(&parse_json(&reply.body).unwrap()).unwrap();
    match q.result {
        prov_query::QueryResult::Count(n) => n as u64,
        other => panic!("count executions returned {other:?}"),
    }
}

#[test]
fn acked_ingests_survive_kill_9_across_seeded_crash_points() {
    let data_dir = tempdir("kill9");
    let base = base_doc();
    // Unique exec ids across the whole test: each ingest is a distinct
    // execution, so `executions` counts ingests exactly and the restored
    // generation must equal it.
    let next_exec = AtomicU64::new(10_000);
    let mut acked_total: u64 = 0;

    // Eight seeded crash points cycling fsync policy and checkpointing;
    // the data directory persists across rounds, so every restart also
    // re-proves the previous rounds' records.
    let policies = ["batch:4:2000", "always", "never", "batch"];
    for round in 0u64..8 {
        let fsync = policies[(round % 4) as usize];
        let checkpoint_every = if round % 2 == 1 { 5 } else { 0 };
        let acks_before_kill = 2 + (round * 3 + 1) % 7;
        let chaos = round >= 6;

        let server = Server::spawn(&data_dir, fsync, checkpoint_every);
        let client = server.client();

        // Chaos rounds add a second, untracked client whose in-flight
        // request at kill time may or may not have been applied — acked
        // ones must survive, unacked ones may legitimately appear.
        let stop = Arc::new(AtomicBool::new(false));
        let chaos_acked = Arc::new(AtomicU64::new(0));
        let chaos_attempted = Arc::new(AtomicU64::new(0));
        let chaos_thread = chaos.then(|| {
            let addr = server.addr;
            let base = base.clone();
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&chaos_acked);
            let attempted = Arc::clone(&chaos_attempted);
            let next = next_exec.fetch_add(1_000, Ordering::SeqCst);
            std::thread::spawn(move || {
                let client = HttpClient::new(addr, "chaos");
                let mut i = 0;
                while !stop.load(Ordering::SeqCst) {
                    let mut doc = base.clone();
                    doc.exec = ExecId(next + i);
                    i += 1;
                    attempted.fetch_add(1, Ordering::SeqCst);
                    match client.ingest(NAMESPACE, &doc) {
                        Ok(r) if r.status == 200 => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        _ => break, // server is gone
                    }
                }
            })
        });

        for _ in 0..acks_before_kill {
            let mut doc = base.clone();
            doc.exec = ExecId(next_exec.fetch_add(1, Ordering::SeqCst));
            let reply = client.ingest(NAMESPACE, &doc).expect("server reachable");
            assert_eq!(reply.status, 200, "round {round}: {}", reply.body);
            acked_total += 1;
        }
        server.kill9();
        stop.store(true, Ordering::SeqCst);
        if let Some(t) = chaos_thread {
            t.join().unwrap();
        }
        let chaos_ok = chaos_acked.load(Ordering::SeqCst);
        let chaos_try = chaos_attempted.load(Ordering::SeqCst);
        acked_total += chaos_ok;

        // Restart on the same directory and audit.
        let server = Server::spawn(&data_dir, fsync, checkpoint_every);
        let client = server.client();
        let s = stats(&client);
        if chaos {
            // Tracked + chaos-acked is the durability floor; in-flight
            // unacked chaos requests bound the ceiling.
            assert!(
                s.executions as u64 >= acked_total,
                "round {round}: lost acked ingests: {} < {acked_total}",
                s.executions
            );
            assert!(
                s.executions as u64 <= acked_total + (chaos_try - chaos_ok),
                "round {round}: {} executions exceed all sent requests",
                s.executions
            );
            acked_total = s.executions as u64; // resync for later rounds
        } else {
            assert_eq!(
                s.executions as u64, acked_total,
                "round {round} (fsync={fsync}): acked ingests after restart"
            );
        }
        assert_eq!(
            s.generation, s.executions as u64,
            "round {round}: restored generation equals replayed executions"
        );
        assert_eq!(
            count_executions(&client),
            s.executions as u64,
            "round {round}: query path agrees with stats"
        );
        assert_eq!(s.store_runs, s.runs, "round {round}: graph store replayed");
        server.kill9();
    }

    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn torn_tail_is_truncated_not_fatal_after_kill_9() {
    let data_dir = tempdir("torn");
    let base = base_doc();

    let server = Server::spawn(&data_dir, "never", 0);
    let client = server.client();
    let mut acked = 0u64;
    for i in 0..4u64 {
        let mut doc = base.clone();
        doc.exec = ExecId(500 + i);
        let reply = client.ingest(NAMESPACE, &doc).unwrap();
        assert_eq!(reply.status, 200, "{}", reply.body);
        acked += 1;
    }
    server.kill9();

    // Simulate a write torn mid-frame by the crash: garbage bytes on the
    // WAL tail that never produced an ack.
    let wal = data_dir.join(NAMESPACE).join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("wal exists");
    bytes.extend_from_slice(&[0xFF; 64]);
    std::fs::write(&wal, &bytes).unwrap();

    // The offline recover subcommand reports the truncation...
    let out = Command::new(env!("CARGO_BIN_EXE_provctl"))
        .arg("recover")
        .arg(data_dir.to_str().unwrap())
        .output()
        .expect("provctl recover runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("torn tail truncated"), "stdout: {text}");

    // ...and a restarted server replays exactly the acked prefix.
    let server = Server::spawn(&data_dir, "never", 0);
    let client = server.client();
    let s = stats(&client);
    assert_eq!(s.executions as u64, acked, "acked prefix survives");
    assert_eq!(s.generation, acked);
    server.kill9();
    std::fs::remove_dir_all(&data_dir).ok();
}

#[test]
fn client_retries_ride_through_a_restart() {
    // A client with bounded retries and a request id should survive the
    // server being down briefly: connection-refused attempts back off and
    // the ingest lands exactly once when the server returns.
    let data_dir = tempdir("retry");
    let base = base_doc();

    let server = Server::spawn(&data_dir, "batch", 0);
    let client = server.client();
    let mut doc = base.clone();
    doc.exec = ExecId(900);
    assert_eq!(client.ingest(NAMESPACE, &doc).unwrap().status, 200);
    server.kill9();

    let server = Server::spawn(&data_dir, "batch", 0);
    let retrying = HttpClient::new(server.addr, "crash-harness").with_retry(
        HttpRetry::attempts(5)
            .backoff(20_000, 2.0, 500_000)
            .seeded(7),
    );
    let mut doc = base.clone();
    doc.exec = ExecId(901);
    // Same request id twice: the second send must replay the ack, not
    // double-apply, even though the dedupe memory crossed a restart.
    let r1 = retrying
        .ingest_with_id(NAMESPACE, &doc, "riders-1")
        .unwrap();
    assert_eq!(r1.status, 200, "{}", r1.body);
    let r2 = retrying
        .ingest_with_id(NAMESPACE, &doc, "riders-1")
        .unwrap();
    assert_eq!(r2.status, 200);
    assert_eq!(r1.body, r2.body, "identical ack replayed");
    let s = stats(&retrying);
    assert_eq!(s.executions, 2, "no double-apply");
    server.kill9();
    std::fs::remove_dir_all(&data_dir).ok();
}
