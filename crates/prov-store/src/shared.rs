//! Thread-safe shared ownership of a store backend.
//!
//! The backends in this crate are single-writer structures: `ingest` takes
//! `&mut self`. That is the right shape for the in-process experiments,
//! but the concurrent service layer (the `prov-server` crate) needs many
//! clients reading and writing one store at once. [`SharedStore`] is the
//! bridge: it owns a backend behind an [`RwLock`], exposes `&self` ingest
//! (writer lock) and `&self` queries (reader lock), and maintains an
//! ingest **generation** so readers can tell which version of the data a
//! result was computed against.
//!
//! Two properties make this safe and exact:
//!
//! * every backend is `Send + Sync` (its [`StoreStats`] counters are
//!   relaxed atomics and its `optimized` flag is an `AtomicBool`), so a
//!   reader-writer lock is sufficient — no per-method auditing;
//! * [`StoreStats`] handles are cheap clones sharing one counter block, so
//!   the wrapper can hand out the recorder of the locked-away backend
//!   without holding any lock, and concurrent readers' bumps never lose
//!   increments.
//!
//! The generation is bumped *while the write lock is held*, so any thread
//! holding a read guard observes a stable generation for the whole guard
//! lifetime: data and generation cannot change out from under it.

use crate::api::{Frontier, ProvenanceStore, RunRef};
use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

/// A store backend shared between concurrent readers and writers.
///
/// Wraps any [`ProvenanceStore`] (including a boxed one) in an [`RwLock`]:
/// queries take the read lock, [`SharedStore::ingest_shared`] takes the
/// write lock. The wrapper itself implements [`ProvenanceStore`], so
/// everything that consumes the trait — the canned-query harness, the plan
/// analyzer, the differential tests — works unchanged on the shared form.
#[derive(Debug)]
pub struct SharedStore<S> {
    name: &'static str,
    stats: StoreStats,
    generation: AtomicU64,
    inner: RwLock<S>,
}

impl<S: ProvenanceStore> SharedStore<S> {
    /// Take ownership of `store` and make it shareable.
    pub fn new(store: S) -> Self {
        SharedStore {
            name: store.backend_name(),
            stats: store.stats().clone(),
            generation: AtomicU64::new(0),
            inner: RwLock::new(store),
        }
    }

    /// Ingest one execution's provenance under the write lock, returning
    /// the new generation. Readers either see the store entirely before or
    /// entirely after this call — never a half-applied execution.
    pub fn ingest_shared(&self, retro: &RetrospectiveProvenance) -> u64 {
        let mut guard = self.write();
        guard.ingest(retro);
        // Bumped while exclusive, so a read guard pins the generation.
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// The number of ingests applied so far. A result computed under a
    /// read guard is tagged with a generation that cannot change while
    /// the guard is held.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Acquire the read lock for a multi-query consistent view.
    pub fn read(&self) -> RwLockReadGuard<'_, S> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, S> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Unwrap, returning the inner backend.
    pub fn into_inner(self) -> S {
        match self.inner.into_inner() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<S: ProvenanceStore> ProvenanceStore for SharedStore<S> {
    fn backend_name(&self) -> &'static str {
        self.name
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        self.ingest_shared(retro);
    }

    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        self.read().generators(artifact)
    }

    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        self.read().lineage_runs(artifact)
    }

    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        self.read().derived_artifacts(artifact)
    }

    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        self.read().expand_frontier(seeds, upstream)
    }

    fn adopt_stats(&mut self, stats: &StoreStats) {
        self.write().adopt_stats(stats);
        // The wrapper hands out its own handle without locking, so it must
        // track the recorder the inner store now bumps.
        self.stats = stats.clone();
    }

    fn runs_per_module(&self) -> Vec<(String, usize)> {
        self.read().runs_per_module()
    }

    fn run_count(&self) -> usize {
        self.read().run_count()
    }

    fn set_optimized(&self, on: bool) {
        self.read().set_optimized(on)
    }

    fn optimized(&self) -> bool {
        self.read().optimized()
    }

    fn approx_bytes(&self) -> usize {
        self.read().approx_bytes()
    }
}

/// Boxed stores answer through the box, so `SharedStore<Box<dyn
/// ProvenanceStore + Send + Sync>>` (the type-erased shared form the
/// server uses) is itself a `ProvenanceStore`.
impl<T: ProvenanceStore + ?Sized> ProvenanceStore for Box<T> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
    fn stats(&self) -> &StoreStats {
        (**self).stats()
    }
    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        (**self).ingest(retro)
    }
    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        (**self).generators(artifact)
    }
    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        (**self).lineage_runs(artifact)
    }
    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        (**self).derived_artifacts(artifact)
    }
    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        (**self).expand_frontier(seeds, upstream)
    }
    fn adopt_stats(&mut self, stats: &StoreStats) {
        (**self).adopt_stats(stats)
    }
    fn runs_per_module(&self) -> Vec<(String, usize)> {
        (**self).runs_per_module()
    }
    fn run_count(&self) -> usize {
        (**self).run_count()
    }
    fn set_optimized(&self, on: bool) {
        (**self).set_optimized(on)
    }
    fn optimized(&self) -> bool {
        (**self).optimized()
    }
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphstore::GraphStore;
    use crate::logstore::LogStore;
    use crate::relstore::RelStore;
    use crate::triplestore::TripleStore;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use std::sync::Arc;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn retro(seed: u64) -> RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        cap.take(r.exec).unwrap()
    }

    #[test]
    fn every_backend_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphStore>();
        assert_send_sync::<TripleStore>();
        assert_send_sync::<RelStore>();
        assert_send_sync::<LogStore>();
        assert_send_sync::<SharedStore<GraphStore>>();
        assert_send_sync::<SharedStore<Box<dyn ProvenanceStore + Send + Sync>>>();
    }

    #[test]
    fn shared_store_answers_like_the_plain_store() {
        let r = retro(1);
        let mut plain = GraphStore::new();
        plain.ingest(&r);
        let shared = SharedStore::new(GraphStore::new());
        assert_eq!(shared.generation(), 0);
        shared.ingest_shared(&r);
        assert_eq!(shared.generation(), 1);
        assert_eq!(shared.backend_name(), "graph");
        assert_eq!(shared.run_count(), plain.run_count());
        assert_eq!(shared.runs_per_module(), plain.runs_per_module());
        let a = *r.artifacts.keys().next().unwrap();
        assert_eq!(shared.generators(a), plain.generators(a));
        assert_eq!(shared.lineage_runs(a), plain.lineage_runs(a));
        assert_eq!(shared.derived_artifacts(a), plain.derived_artifacts(a));
    }

    #[test]
    fn shared_stats_alias_the_inner_recorder() {
        let shared = SharedStore::new(GraphStore::new());
        shared.ingest_shared(&retro(1));
        let before = shared.stats().snapshot();
        let _ = shared.runs_per_module();
        let d = shared.stats().snapshot().delta(&before);
        assert!(d.scans >= 1, "inner bumps are visible through the wrapper");
    }

    #[test]
    fn concurrent_ingest_loses_no_writes() {
        let shared = Arc::new(SharedStore::new(GraphStore::new()));
        let retros: Vec<_> = (0..8).map(|i| retro(100 + i)).collect();
        let expected: usize = {
            let mut plain = GraphStore::new();
            for r in &retros {
                plain.ingest(r);
            }
            plain.run_count()
        };
        std::thread::scope(|scope| {
            for r in &retros {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    shared.ingest_shared(r);
                });
            }
        });
        assert_eq!(shared.generation(), 8);
        assert_eq!(shared.run_count(), expected, "no lost writes");
    }

    #[test]
    fn readers_see_a_stable_generation_under_a_guard() {
        let shared = Arc::new(SharedStore::new(GraphStore::new()));
        shared.ingest_shared(&retro(1));
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..4 {
                    shared.ingest_shared(&retro(200 + i));
                }
            })
        };
        for _ in 0..50 {
            let g1 = shared.generation();
            let guard = shared.read();
            let g2 = shared.generation();
            let count = guard.run_count();
            let g3 = shared.generation();
            drop(guard);
            assert_eq!(g2, g3, "generation is pinned while the guard is held");
            assert!(g2 >= g1);
            assert!(count > 0);
        }
        writer.join().unwrap();
        assert_eq!(shared.generation(), 5);
    }
}
