//! prov-server: a concurrent multi-tenant provenance service.
//!
//! Davidson & Freire's survey frames provenance management as a *service*
//! problem: many scientists, one shared store of workflow provenance, with
//! querying as the interface (§2.2–2.3). Everything else in this workspace
//! is single-owner — `provctl` builds a store, queries it, exits. This
//! crate makes the stores long-running and shared:
//!
//! * [`ProvServer`] owns per-namespace state (a PQL engine, a
//!   [`prov_store::SharedStore`] graph store, a result cache, a query
//!   observer) behind `&self` entry points safe to call from any thread;
//! * admission control ([`admission`]) bounds in-flight work and meters
//!   tenants with token buckets — overload is shed with explicit
//!   429/503-style errors, never unbounded queueing;
//! * the [`http`] front end serves the whole API as HTTP/1.1 + JSON using
//!   only `std::net`, with a hand-written codec ([`wire`]) over the
//!   workspace's dependency-free JSON parser (no serde needed);
//! * the in-process [`Session`] API offers the same request path without
//!   sockets, for tests, benchmarks, and embedding;
//! * a closed-loop load generator ([`loadgen`]) drives mixed
//!   ingest/query traffic and verifies zero lost writes, engine/store
//!   agreement, and exact counter accounting afterwards;
//! * the [`durability`] layer writes every acked ingest to a per-namespace
//!   write-ahead log before applying it, replays the logs on restart
//!   ([`ProvServer::recover`]), gates readiness on replay, and degrades a
//!   namespace to read-only after persistent WAL failures;
//! * the [`retry`] policy gives clients bounded, seeded
//!   exponential-backoff retries that never retry a non-idempotent ingest
//!   without a request id;
//! * the observability plane ([`trace`] plus per-tenant metric families)
//!   makes every request traceable end to end: clients propagate a
//!   W3C-style `traceparent`, the server records request/query/operator
//!   spans under the caller's trace id, and `/v1/trace/{id}`,
//!   `/v1/metrics`, and `/v1/slowlog/{ns}` expose traces, Prometheus
//!   series, and the slow-query log over the wire.

#![warn(missing_docs)]

pub mod admission;
pub mod durability;
pub mod error;
pub mod http;
pub mod loadgen;
pub mod retry;
pub mod server;
pub mod trace;
pub mod wire;

pub use admission::{Admission, RateLimiter};
pub use durability::{DurabilityConfig, RecoveryReport};
pub use error::ServerError;
pub use http::{HttpClient, HttpReply, HttpServer};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use retry::HttpRetry;
pub use server::{
    IngestAck, Namespace, NamespaceStats, ProvServer, QueryReply, Request, RequestBody,
    ResponseBody, ServerConfig, ServerStats, Session, TraceMeta,
};
pub use trace::{StoredTrace, TraceStore, TraceStoreStats};
