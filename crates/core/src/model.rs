//! The provenance data model: prospective and retrospective provenance.
//!
//! "There are two distinct forms of provenance: *prospective* and
//! *retrospective*. Prospective provenance captures the specification of a
//! computational task … Retrospective provenance captures the steps that
//! were executed as well as information about the execution environment"
//! (§2.2, after Clifford et al.).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wf_engine::{ExecId, RunStatus};
use wf_model::{NodeId, ParamValue, Workflow, WorkflowId};

/// Identity of a data artifact: its stable content hash.
///
/// Two artifacts with equal content are the *same* artifact wherever they
/// appear — this is what lets provenance connect runs within and across
/// systems (and what the Provenance Challenge integration joins on).
pub type ArtifactHash = u64;

/// A data artifact observed during execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Content hash (identity).
    pub hash: ArtifactHash,
    /// Rendered data type (e.g. `grid`, `table`, `bytes`).
    pub dtype: String,
    /// Approximate payload size in bytes.
    pub size: usize,
    /// Inline preview for small scalars (fine-grained capture only).
    pub preview: Option<String>,
}

impl Artifact {
    /// Hex digest display form.
    pub fn digest(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// One executed module within a run — one record of the "detailed log of
/// the execution of a computational task".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleRun {
    /// The node of the specification that ran.
    pub node: NodeId,
    /// Module identity `name@version`.
    pub identity: String,
    /// Effective parameters at run time.
    pub params: Vec<(String, ParamValue)>,
    /// Outcome.
    pub status: RunStatus,
    /// Start timestamp (ms since epoch).
    pub started_millis: u64,
    /// Module-body duration in microseconds.
    pub elapsed_micros: u64,
    /// Whether the outputs came from the memoization cache.
    pub from_cache: bool,
    /// Failure message when `status` is `Failed`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Input bindings: (port, artifact hash). Fine-grained capture only.
    pub inputs: Vec<(String, ArtifactHash)>,
    /// Outputs produced: (port, artifact hash).
    pub outputs: Vec<(String, ArtifactHash)>,
    /// Number of body attempts made (>1 when a retry policy re-attempted
    /// the module). Serialized only when retries actually happened, so
    /// records from engines without fault tolerance read back unchanged.
    #[serde(
        default = "default_attempts",
        skip_serializing_if = "is_single_attempt"
    )]
    pub attempts: u32,
    /// Total time spent waiting out retry backoffs, in microseconds.
    #[serde(default, skip_serializing_if = "is_zero_u64")]
    pub backoff_micros: u64,
}

fn default_attempts() -> u32 {
    1
}

#[allow(clippy::trivially_copy_pass_by_ref)] // serde requires &T
fn is_single_attempt(attempts: &u32) -> bool {
    *attempts <= 1
}

#[allow(clippy::trivially_copy_pass_by_ref)] // serde requires &T
fn is_zero_u64(v: &u64) -> bool {
    *v == 0
}

/// The execution environment recorded with retrospective provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Operating system family.
    pub os: String,
    /// CPU architecture.
    pub arch: String,
    /// Engine version string.
    pub engine: String,
    /// Number of executor threads used.
    pub threads: usize,
}

impl Environment {
    /// Capture the current environment.
    pub fn current(threads: usize) -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            engine: format!("wf-engine {}", env!("CARGO_PKG_VERSION")),
            threads,
        }
    }
}

/// Retrospective provenance of one workflow run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrospectiveProvenance {
    /// The run.
    pub exec: ExecId,
    /// The workflow specification that ran.
    pub workflow: WorkflowId,
    /// Specification name at run time.
    pub workflow_name: String,
    /// Overall outcome.
    pub status: RunStatus,
    /// Start timestamp (ms since epoch).
    pub started_millis: u64,
    /// End timestamp (ms since epoch).
    pub finished_millis: u64,
    /// Module runs, in completion order.
    pub runs: Vec<ModuleRun>,
    /// All artifacts observed, keyed by content hash.
    pub artifacts: BTreeMap<ArtifactHash, Artifact>,
    /// Execution environment.
    pub environment: Environment,
    /// When this run resumed an earlier failed run, that run's id — the
    /// resume lineage link that makes recovery itself queryable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resumed_from: Option<ExecId>,
}

impl RetrospectiveProvenance {
    /// The run record for a node, if it ran.
    pub fn run_of(&self, node: NodeId) -> Option<&ModuleRun> {
        self.runs.iter().find(|r| r.node == node)
    }

    /// Artifacts produced on a node's output port.
    pub fn produced(&self, node: NodeId, port: &str) -> Option<&Artifact> {
        let run = self.run_of(node)?;
        let (_, hash) = run.outputs.iter().find(|(p, _)| p == port)?;
        self.artifacts.get(hash)
    }

    /// The module runs that *generated* an artifact (usually one; cached
    /// re-runs can add more).
    pub fn generators_of(&self, artifact: ArtifactHash) -> Vec<&ModuleRun> {
        self.runs
            .iter()
            .filter(|r| r.outputs.iter().any(|(_, h)| *h == artifact))
            .collect()
    }

    /// The module runs that *used* an artifact.
    pub fn users_of(&self, artifact: ArtifactHash) -> Vec<&ModuleRun> {
        self.runs
            .iter()
            .filter(|r| r.inputs.iter().any(|(_, h)| *h == artifact))
            .collect()
    }

    /// Number of module runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Render a human-readable execution log (the right-hand side of
    /// Figure 1).
    pub fn render_log(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "execution {} of workflow '{}' ({}): {}\n",
            self.exec, self.workflow_name, self.workflow, self.status
        ));
        if let Some(from) = self.resumed_from {
            s.push_str(&format!("resumed from failed execution {from}\n"));
        }
        s.push_str(&format!(
            "environment: {}/{} on {} threads, {}\n",
            self.environment.os,
            self.environment.arch,
            self.environment.threads,
            self.environment.engine
        ));
        for r in &self.runs {
            s.push_str(&format!(
                "  {} {} [{}us{}{}] {}{}\n",
                r.node,
                r.identity,
                r.elapsed_micros,
                if r.from_cache { ", cached" } else { "" },
                if r.attempts > 1 {
                    format!(", {} attempts", r.attempts)
                } else {
                    String::new()
                },
                r.status,
                r.error
                    .as_deref()
                    .map(|e| format!(": {e}"))
                    .unwrap_or_default()
            ));
            for (port, hash) in &r.inputs {
                s.push_str(&format!("    <- {port}: {hash:016x}\n"));
            }
            for (port, hash) in &r.outputs {
                let annot = self
                    .artifacts
                    .get(hash)
                    .map(|a| format!(" ({}, {} bytes)", a.dtype, a.size))
                    .unwrap_or_default();
                s.push_str(&format!("    -> {port}: {hash:016x}{annot}\n"));
            }
        }
        s
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

/// Prospective provenance: the specification plus versioning metadata —
/// "a recipe to derive these kinds of data products" (Figure 1 caption).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProspectiveProvenance {
    /// The workflow specification.
    pub workflow: Workflow,
    /// The version-tree node this specification corresponds to, when the
    /// workflow is under evolution provenance (`prov-evolution`).
    pub version: Option<u64>,
    /// When the specification was captured (ms since epoch).
    pub captured_millis: u64,
}

impl ProspectiveProvenance {
    /// Capture a specification now.
    pub fn of(workflow: &Workflow) -> Self {
        Self {
            workflow: workflow.clone(),
            version: None,
            captured_millis: wf_engine::event::now_millis(),
        }
    }

    /// Attach an evolution-provenance version id.
    pub fn at_version(mut self, version: u64) -> Self {
        self.version = Some(version);
        self
    }

    /// Render the recipe as indented module lines with wiring — the
    /// left-hand side of Figure 1.
    pub fn render_recipe(&self) -> String {
        let mut s = format!("workflow '{}' ({})\n", self.workflow.name, self.workflow.id);
        if let Some(v) = self.version {
            s.push_str(&format!("  at version {v}\n"));
        }
        let order = self
            .workflow
            .topo_nodes()
            .unwrap_or_else(|| self.workflow.nodes.keys().copied().collect());
        for id in order {
            if let Ok(n) = self.workflow.node(id) {
                s.push_str(&format!("  {} {} '{}'", n.id, n.kind_identity(), n.label));
                if !n.params.is_empty() {
                    let ps: Vec<String> =
                        n.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    s.push_str(&format!(" [{}]", ps.join(", ")));
                }
                s.push('\n');
                for c in self.workflow.inputs_of(id) {
                    s.push_str(&format!(
                        "    {}.{} -> {}\n",
                        c.from.node, c.from.port, c.to.port
                    ));
                }
            }
        }
        s
    }
}

/// The complete provenance of a set of data products: the recipe and the
/// log, side by side — Figure 1 as a data structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceBundle {
    /// Prospective provenance.
    pub prospective: ProspectiveProvenance,
    /// Retrospective provenance of one run of the specification.
    pub retrospective: RetrospectiveProvenance,
}

impl ProvenanceBundle {
    /// Bundle a specification with one of its runs.
    pub fn new(prospective: ProspectiveProvenance, retrospective: RetrospectiveProvenance) -> Self {
        Self {
            prospective,
            retrospective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_retro() -> RetrospectiveProvenance {
        let mut artifacts = BTreeMap::new();
        artifacts.insert(
            11,
            Artifact {
                hash: 11,
                dtype: "grid".into(),
                size: 4096,
                preview: None,
            },
        );
        artifacts.insert(
            22,
            Artifact {
                hash: 22,
                dtype: "table".into(),
                size: 256,
                preview: None,
            },
        );
        RetrospectiveProvenance {
            exec: ExecId(0),
            workflow: WorkflowId(1),
            workflow_name: "demo".into(),
            status: RunStatus::Succeeded,
            started_millis: 100,
            finished_millis: 200,
            runs: vec![
                ModuleRun {
                    node: NodeId(0),
                    identity: "LoadVolume@1".into(),
                    params: vec![("path".into(), "head.120.vtk".into())],
                    status: RunStatus::Succeeded,
                    started_millis: 100,
                    elapsed_micros: 500,
                    from_cache: false,
                    error: None,
                    inputs: vec![],
                    outputs: vec![("grid".into(), 11)],
                    attempts: 1,
                    backoff_micros: 0,
                },
                ModuleRun {
                    node: NodeId(1),
                    identity: "Histogram@1".into(),
                    params: vec![("bins".into(), ParamValue::Int(32))],
                    status: RunStatus::Succeeded,
                    started_millis: 150,
                    elapsed_micros: 300,
                    from_cache: false,
                    error: None,
                    inputs: vec![("data".into(), 11)],
                    outputs: vec![("table".into(), 22)],
                    attempts: 1,
                    backoff_micros: 0,
                },
            ],
            artifacts,
            environment: Environment::current(1),
            resumed_from: None,
        }
    }

    #[test]
    fn generators_and_users() {
        let p = sample_retro();
        let gens = p.generators_of(22);
        assert_eq!(gens.len(), 1);
        assert_eq!(gens[0].identity, "Histogram@1");
        let users = p.users_of(11);
        assert_eq!(users.len(), 1);
        assert_eq!(users[0].node, NodeId(1));
        assert!(p.generators_of(999).is_empty());
    }

    #[test]
    fn produced_lookup() {
        let p = sample_retro();
        let a = p.produced(NodeId(1), "table").unwrap();
        assert_eq!(a.dtype, "table");
        assert!(p.produced(NodeId(1), "nope").is_none());
        assert!(p.produced(NodeId(9), "table").is_none());
    }

    #[test]
    fn render_log_mentions_runs_and_artifacts() {
        let p = sample_retro();
        let log = p.render_log();
        assert!(log.contains("LoadVolume@1"));
        assert!(log.contains("Histogram@1"));
        assert!(
            log.contains("000000000000000b"),
            "artifact 11 in hex: {log}"
        );
        assert!(log.contains("succeeded"));
    }

    #[test]
    fn retro_roundtrips_json() {
        let p = sample_retro();
        let s = p.to_json().unwrap();
        let back = RetrospectiveProvenance::from_json(&s).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn prospective_recipe_renders_wiring() {
        let mut b = wf_model::WorkflowBuilder::new(1, "demo");
        let a = b.add("LoadVolume");
        let h = b.add("Histogram");
        b.connect(a, "grid", h, "data");
        b.param(h, "bins", 32i64);
        let pro = ProspectiveProvenance::of(&b.build()).at_version(7);
        let recipe = pro.render_recipe();
        assert!(recipe.contains("at version 7"));
        assert!(recipe.contains("LoadVolume@1"));
        assert!(recipe.contains("bins=32"));
        assert!(recipe.contains("n0.grid -> data"));
    }

    #[test]
    fn artifact_digest_formats_hash() {
        let a = Artifact {
            hash: 0xdead_beef,
            dtype: "bytes".into(),
            size: 1,
            preview: None,
        };
        assert_eq!(a.digest(), "00000000deadbeef");
    }
}
