//! Scatter-gather PQL over execution-hash shards.
//!
//! §3 of the tutorial asks how provenance stores stay queryable as corpora
//! grow to millions of runs. [`ShardedEngine`] answers at the query layer:
//! N inner [`PqlEngine`] shards partitioned by a seeded hash of the
//! execution id (lineage locality follows the run, so a run and all of its
//! run-side edges are wholly shard-local), plus a thin coordinator that
//! mirrors only the artifact-side adjacency and the artifact catalog in
//! global ingest order — artifacts are the only cross-shard joints.
//!
//! Queries fan out across shards on scoped threads and merge:
//!
//! * **closures** run a level-synchronous BFS — each frontier level's
//!   neighbor fetches scatter to the owning shards (and the coordinator
//!   for artifact nodes) in parallel, then gather sequentially in frontier
//!   order, which reproduces the single engine's FIFO discovery order
//!   bit for bit;
//! * **scans** over runs/executions run per shard and merge by key order
//!   (executions are disjoint across shards, so the merged order equals
//!   the single engine's scan order);
//! * **filters and collects** route each row to its owning shard (or the
//!   coordinator for artifacts) and reassemble by input position.
//!
//! Every shard adopts one shared [`StoreStats`] recorder, so EXPLAIN
//! ANALYZE access totals sum exactly across shards: for closure and path
//! queries the totals equal the unsharded engine's to the last counter.
//! The plan grows a [`PlanOp::ScatterGather`] operator whose EXPLAIN
//! ANALYZE rendering carries one child row per shard. The optimizer's
//! decision core ([`crate::optimize`]) runs against summed cardinalities
//! and posting lengths, so rewrite decisions match the single engine.

use crate::ast::*;
use crate::error::PqlError;
use crate::eval::{PNode, PqlEngine, QueryResult, ResultNode, ScanItem};
use crate::optimize::{optimize_with, Optimization, QueryCache, Rewrite};
use crate::parser::parse;
use crate::plan::{Analysis, CostModel, OpReport, Plan, PlanNode, PlanOp};
use prov_core::model::RetrospectiveProvenance;
use prov_store::{shard_of, StatsSnapshot, StoreStats, DEFAULT_SHARD_SEED};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use wf_engine::ExecId;

/// Below this many routed rows a stage runs sequentially: scoped-thread
/// spawn overhead would swamp the per-row work.
const PARALLEL_FANOUT: usize = 256;

/// Per-lane (shard or coordinator) accounting for one scatter stage.
#[derive(Debug, Default, Clone, Copy)]
struct Lane {
    rows_in: usize,
    rows_out: usize,
    micros: u64,
}

/// N [`PqlEngine`] shards behind one scatter-gather query surface.
///
/// Results — rows, order, and error strings — are identical to a single
/// [`PqlEngine`] fed the same documents in the same order; the differential
/// harness pins this as the `sharded(N)` evaluation modes.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<PqlEngine>,
    seed: u64,
    /// Shared recorder: every shard's counted accessors bump this block.
    stats: StoreStats,
    /// Mirror of the single engine's artifact catalog (hash → dtype),
    /// maintained in global ingest order so first-writer-wins dtypes and
    /// describe/filter output match the unsharded engine exactly.
    catalog: BTreeMap<u64, String>,
    /// Artifact-side adjacency: runs consuming the artifact, in global
    /// edge-insertion order (the single engine's `succ[Artifact]`).
    art_succ: BTreeMap<u64, Vec<PNode>>,
    /// Runs producing the artifact (the single engine's `pred[Artifact]`).
    art_pred: BTreeMap<u64, Vec<PNode>>,
    /// Global dtype index, rebuilt from the catalog after each ingest.
    dtype_index: BTreeMap<String, Vec<u64>>,
    /// Raises `generation()` above the shard sum after WAL recovery.
    gen_floor: u64,
    /// Cache-partitioning backend key, `sharded(N)`.
    backend_key: String,
}

impl ShardedEngine {
    /// A sharded engine with the default routing seed.
    pub fn new(shards: usize) -> Self {
        Self::with_seed(shards, DEFAULT_SHARD_SEED)
    }

    /// A sharded engine with an explicit routing seed (shard count is
    /// clamped to at least 1).
    pub fn with_seed(shards: usize, seed: u64) -> Self {
        let n = shards.max(1);
        let stats = StoreStats::default();
        let shards = (0..n)
            .map(|_| {
                let mut e = PqlEngine::new();
                e.adopt_stats(&stats);
                e
            })
            .collect();
        ShardedEngine {
            shards,
            seed,
            stats,
            catalog: BTreeMap::new(),
            art_succ: BTreeMap::new(),
            art_pred: BTreeMap::new(),
            dtype_index: BTreeMap::new(),
            gen_floor: 0,
            backend_key: format!("sharded({n})"),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard an execution routes to.
    pub fn route(&self, exec: ExecId) -> usize {
        shard_of(self.seed, exec, self.shards.len())
    }

    /// Read access to one shard engine (tests, stats endpoints).
    pub fn shard(&self, i: usize) -> &PqlEngine {
        &self.shards[i]
    }

    /// The cache-partitioning backend key, `sharded(N)`.
    pub fn backend_key(&self) -> &str {
        &self.backend_key
    }

    /// The shared access recorder (all shards bump it).
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Per-shard ingest generations.
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(PqlEngine::generation).collect()
    }

    /// Global generation: the recovery floor plus the *sum* of per-shard
    /// generations, so an ingest into any shard — not just shard 0 —
    /// advances it and invalidates cached results (see [`Self::eval_cached`]).
    pub fn generation(&self) -> u64 {
        self.gen_floor + self.generations().iter().sum::<u64>()
    }

    /// Raise the generation to at least `watermark` after WAL recovery.
    /// Replay is compacted (fewer ingests than the pre-crash process saw),
    /// so without the floor cached pre-crash results would appear fresh.
    pub fn restore_generation(&mut self, watermark: u64) {
        let sum: u64 = self.generations().iter().sum();
        self.gen_floor = self.gen_floor.max(watermark.saturating_sub(sum));
    }

    /// Total ingested runs across shards.
    pub fn run_count(&self) -> usize {
        self.shards.iter().map(PqlEngine::run_count).sum()
    }

    /// Known artifacts (coordinator catalog).
    pub fn artifact_count(&self) -> usize {
        self.catalog.len()
    }

    /// Total ingested executions across shards (disjoint by routing).
    pub fn exec_count(&self) -> usize {
        self.shards.iter().map(PqlEngine::exec_count).sum()
    }

    /// Total dataflow edges across shards (each edge lives in exactly the
    /// shard of its run endpoint, so the sum counts each edge once).
    pub fn edge_count(&self) -> usize {
        self.shards.iter().map(PqlEngine::edge_count).sum()
    }

    /// Summed cardinalities — identical to the single engine's cost model
    /// over the same corpus, so row estimates and rewrite decisions match.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            runs: self.run_count() as u64,
            artifacts: self.artifact_count() as u64,
            execs: self.exec_count() as u64,
            edges: self.edge_count() as u64,
        }
    }

    /// Ingest one execution's provenance: mirror the artifact catalog and
    /// artifact-side adjacency on the coordinator (in exactly the order the
    /// single engine would), then route the document to its shard.
    pub fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        for (h, a) in &retro.artifacts {
            self.catalog.entry(*h).or_insert_with(|| a.dtype.clone());
        }
        for run in &retro.runs {
            let r = PNode::Run(retro.exec, run.node);
            for (_, h) in &run.inputs {
                self.catalog.entry(*h).or_default();
                // Mirrors the single engine's `edge(Artifact, run)` dedupe:
                // the succ side is the pushed-together witness.
                let s = self.art_succ.entry(*h).or_default();
                if !s.contains(&r) {
                    s.push(r);
                }
            }
            for (_, h) in &run.outputs {
                self.catalog.entry(*h).or_default();
                // `edge(run, Artifact)` pushes pred[artifact] iff
                // succ[run] gains the edge; both sides are pushed together,
                // so pred containment is an equivalent dedupe witness.
                let p = self.art_pred.entry(*h).or_default();
                if !p.contains(&r) {
                    p.push(r);
                }
            }
        }
        self.dtype_index.clear();
        for (&h, dtype) in &self.catalog {
            self.dtype_index
                .entry(dtype.to_lowercase())
                .or_default()
                .push(h);
        }
        let s = self.route(retro.exec);
        self.shards[s].ingest(retro);
    }

    // ---- counted coordinator accessors ---------------------------------
    //
    // The artifact-side twins of the shard engines' counted accessors,
    // with the same counting discipline, so per-operator snapshot deltas
    // (and their totals) match the unsharded engine.

    fn artifact_neighbors_counted(&self, h: u64, reverse: bool) -> &[PNode] {
        self.stats.add_keyed_lookups(1);
        self.stats.add_node_reads(1);
        let m = if reverse {
            &self.art_pred
        } else {
            &self.art_succ
        };
        let ns = m.get(&h).map(|v| v.as_slice()).unwrap_or(&[]);
        self.stats.add_edge_reads(ns.len() as u64);
        ns
    }

    fn artifact_matches_counted(&self, h: u64, cond: &Condition) -> bool {
        self.stats.add_node_reads(1);
        PqlEngine::dnf_matches(cond, |field| match field {
            Field::Dtype => self.catalog.get(&h).cloned(),
            _ => None,
        })
    }

    fn artifact_describe_counted(&self, h: u64) -> ResultNode {
        self.stats.add_node_reads(1);
        ResultNode::Artifact {
            hash: h,
            dtype: self.catalog.get(&h).cloned().unwrap_or_default(),
        }
    }

    fn scan_artifacts_counted(&self) -> Vec<ScanItem> {
        self.stats.add_scans(1);
        let items: Vec<ScanItem> = self
            .catalog
            .keys()
            .map(|&h| ScanItem::Node(PNode::Artifact(h)))
            .collect();
        self.stats.add_node_reads(items.len() as u64);
        items
    }

    fn probe_dtype_counted(&self, value: &str) -> &[u64] {
        self.stats.add_keyed_lookups(1);
        let posting = self
            .dtype_index
            .get(&value.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        self.stats.add_node_reads(posting.len() as u64);
        posting
    }

    /// Global posting length: coordinator dtype index for artifacts,
    /// per-shard sums for run indexes (executions stay unindexed). Feeds
    /// the optimizer's decision core.
    fn posting_len(&self, entity: Entity, field: Field, value: &str) -> Option<usize> {
        match (entity, field) {
            (Entity::Artifacts, Field::Dtype) => Some(
                self.dtype_index
                    .get(&value.to_lowercase())
                    .map_or(0, Vec::len),
            ),
            (Entity::Runs, Field::Module) | (Entity::Runs, Field::Status) => {
                let mut total = 0usize;
                for shard in &self.shards {
                    total += shard.posting_len(entity, field, value)?;
                }
                Some(total)
            }
            _ => None,
        }
    }

    /// Counted anchor resolution: identical counters and error strings to
    /// `PqlEngine::resolve_counted`.
    fn resolve_sharded(&self, t: Target) -> Result<PNode, PqlError> {
        match t {
            Target::Artifact(h) => {
                self.stats.add_keyed_lookups(1);
                self.stats.add_node_reads(1);
                if self.catalog.contains_key(&h) {
                    Ok(PNode::Artifact(h))
                } else {
                    Err(PqlError::Eval(format!("unknown artifact {h:016x}")))
                }
            }
            Target::Run(e, _) => self.shards[self.route(ExecId(e))].resolve_counted(t),
        }
    }

    fn neighbors_routed(&self, node: PNode, reverse: bool) -> &[PNode] {
        match node {
            PNode::Run(e, _) => self.shards[self.route(e)].neighbors_counted(node, reverse),
            PNode::Artifact(h) => self.artifact_neighbors_counted(h, reverse),
        }
    }

    fn describe_routed(&self, node: PNode) -> ResultNode {
        match node {
            PNode::Run(e, _) => self.shards[self.route(e)].describe_item(ScanItem::Node(node)),
            PNode::Artifact(h) => self.artifact_describe_counted(h),
        }
    }

    /// Run `f`, returning its output plus (self-time µs, access delta)
    /// against the shared recorder.
    fn measured_stage<T>(&self, f: impl FnOnce() -> T) -> (T, u64, StatsSnapshot) {
        let before = self.stats.snapshot();
        let t0 = Instant::now();
        let out = f();
        let micros = t0.elapsed().as_micros() as u64;
        (out, micros, self.stats.snapshot().delta(&before))
    }

    // ---- scatter stages -------------------------------------------------

    /// Fetch the adjacency lists of one BFS frontier level: run nodes
    /// scatter to their owning shards, artifact nodes to the coordinator
    /// (chunked), in parallel above [`PARALLEL_FANOUT`]. Results come back
    /// positioned by frontier index, so the sequential gather preserves
    /// the single engine's discovery order. Lane `shards.len()` is the
    /// coordinator.
    fn fetch_level(&self, level: &[PNode], reverse: bool, lanes: &mut [Lane]) -> Vec<Vec<PNode>> {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut coord: Vec<usize> = Vec::new();
        for (i, node) in level.iter().enumerate() {
            match node {
                PNode::Run(e, _) => per_shard[self.route(*e)].push(i),
                PNode::Artifact(_) => coord.push(i),
            }
        }
        let mut out: Vec<Option<Vec<PNode>>> = Vec::new();
        out.resize_with(level.len(), || None);
        if n > 1 && level.len() >= PARALLEL_FANOUT {
            let chunk = coord.len().div_ceil(n).max(1);
            type LanePart = (usize, Vec<(usize, Vec<PNode>)>, u64);
            let results: Vec<LanePart> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (s, idxs) in per_shard.iter().enumerate() {
                    if idxs.is_empty() {
                        continue;
                    }
                    let shard = &self.shards[s];
                    handles.push(scope.spawn(move || {
                        let t0 = Instant::now();
                        let fetched: Vec<(usize, Vec<PNode>)> = idxs
                            .iter()
                            .map(|&i| (i, shard.neighbors_counted(level[i], reverse).to_vec()))
                            .collect();
                        (s, fetched, t0.elapsed().as_micros() as u64)
                    }));
                }
                for ch in coord.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        let t0 = Instant::now();
                        let fetched: Vec<(usize, Vec<PNode>)> = ch
                            .iter()
                            .map(|&i| {
                                let PNode::Artifact(h) = level[i] else {
                                    unreachable!("coordinator lane holds artifacts only")
                                };
                                (i, self.artifact_neighbors_counted(h, reverse).to_vec())
                            })
                            .collect();
                        (n, fetched, t0.elapsed().as_micros() as u64)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter fetch thread"))
                    .collect()
            });
            for (lane, fetched, micros) in results {
                lanes[lane].micros += micros;
                for (i, ns) in fetched {
                    lanes[lane].rows_in += 1;
                    lanes[lane].rows_out += ns.len();
                    out[i] = Some(ns);
                }
            }
        } else {
            for (s, idxs) in per_shard.iter().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                let t0 = Instant::now();
                for &i in idxs {
                    let ns = self.shards[s].neighbors_counted(level[i], reverse).to_vec();
                    lanes[s].rows_in += 1;
                    lanes[s].rows_out += ns.len();
                    out[i] = Some(ns);
                }
                lanes[s].micros += t0.elapsed().as_micros() as u64;
            }
            if !coord.is_empty() {
                let t0 = Instant::now();
                for &i in &coord {
                    let PNode::Artifact(h) = level[i] else {
                        unreachable!("coordinator lane holds artifacts only")
                    };
                    let ns = self.artifact_neighbors_counted(h, reverse).to_vec();
                    lanes[n].rows_in += 1;
                    lanes[n].rows_out += ns.len();
                    out[i] = Some(ns);
                }
                lanes[n].micros += t0.elapsed().as_micros() as u64;
            }
        }
        out.into_iter().map(Option::unwrap_or_default).collect()
    }

    /// Route one map stage over mixed rows: run/execution rows to their
    /// owning shard, artifact rows to the coordinator (chunked), parallel
    /// above [`PARALLEL_FANOUT`]. Output is reassembled by input position,
    /// so row order — and therefore result order — is preserved.
    fn routed_map<R: Send>(
        &self,
        items: &[ScanItem],
        shard_f: &(impl Fn(&PqlEngine, ScanItem) -> R + Sync),
        coord_f: &(impl Fn(u64) -> R + Sync),
    ) -> Vec<R> {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut coord: Vec<usize> = Vec::new();
        for (i, it) in items.iter().enumerate() {
            match it {
                ScanItem::Node(PNode::Run(e, _)) | ScanItem::Exec(e) => {
                    per_shard[self.route(*e)].push(i)
                }
                ScanItem::Node(PNode::Artifact(_)) => coord.push(i),
            }
        }
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(items.len(), || None);
        if n > 1 && items.len() >= PARALLEL_FANOUT {
            let chunk = coord.len().div_ceil(n).max(1);
            let results: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (s, idxs) in per_shard.iter().enumerate() {
                    if idxs.is_empty() {
                        continue;
                    }
                    let shard = &self.shards[s];
                    handles.push(scope.spawn(move || {
                        idxs.iter()
                            .map(|&i| (i, shard_f(shard, items[i])))
                            .collect::<Vec<_>>()
                    }));
                }
                for ch in coord.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        ch.iter()
                            .map(|&i| {
                                let ScanItem::Node(PNode::Artifact(h)) = items[i] else {
                                    unreachable!("coordinator lane holds artifacts only")
                                };
                                (i, coord_f(h))
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("routed stage thread"))
                    .collect()
            });
            for part in results {
                for (i, r) in part {
                    out[i] = Some(r);
                }
            }
        } else {
            for (s, idxs) in per_shard.iter().enumerate() {
                for &i in idxs {
                    out[i] = Some(shard_f(&self.shards[s], items[i]));
                }
            }
            for &i in &coord {
                let ScanItem::Node(PNode::Artifact(h)) = items[i] else {
                    unreachable!("coordinator lane holds artifacts only")
                };
                out[i] = Some(coord_f(h));
            }
        }
        out.into_iter()
            .map(|o| o.expect("every routed row is produced exactly once"))
            .collect()
    }

    /// Routed filter stage with the single engine's counting discipline.
    fn filter_items(&self, items: &[ScanItem], filter: &Condition) -> Vec<ScanItem> {
        let mask = self.routed_map(items, &|shard, it| shard.item_matches(it, filter), &|h| {
            self.artifact_matches_counted(h, filter)
        });
        items
            .iter()
            .zip(mask)
            .filter_map(|(&it, keep)| keep.then_some(it))
            .collect()
    }

    /// Routed collect stage (result materialization).
    fn describe_items(&self, items: &[ScanItem]) -> Vec<ResultNode> {
        self.routed_map(items, &|shard, it| shard.describe_item(it), &|h| {
            self.artifact_describe_counted(h)
        })
    }

    // ---- plans ----------------------------------------------------------

    /// The naive (unoptimized) scatter-gather plan for `query` — what a
    /// plain `EXPLAIN` renders for this shard layout.
    pub fn plan(&self, query: &Query) -> Plan {
        self.naive_plan(query)
    }

    /// The naive sharded plan: the single engine's shape with a
    /// [`PlanOp::ScatterGather`] wrapped around the operators that fan out
    /// (closure traversal; run/execution scans). Artifact scans and path
    /// enumeration stay coordinator-shaped.
    fn naive_plan(&self, query: &Query) -> Plan {
        let n = self.shards.len();
        match query {
            Query::Closure {
                direction,
                target,
                depth,
                filter,
            } => {
                let mut node = PlanNode::over(
                    PlanOp::ScatterGather { shards: n },
                    PlanNode::over(
                        PlanOp::Traverse {
                            direction: *direction,
                            depth: *depth,
                        },
                        PlanNode::leaf(PlanOp::Anchor { target: *target }),
                    ),
                );
                if !filter.is_trivial() {
                    node = PlanNode::over(
                        PlanOp::Filter {
                            filter: filter.clone(),
                        },
                        node,
                    );
                }
                Plan {
                    root: PlanNode::over(PlanOp::Collect, node),
                }
            }
            Query::Count { entity, filter } | Query::List { entity, filter }
                if *entity != Entity::Artifacts =>
            {
                let mut node = PlanNode::over(
                    PlanOp::ScatterGather { shards: n },
                    PlanNode::leaf(PlanOp::Scan { entity: *entity }),
                );
                if !filter.is_trivial() {
                    node = PlanNode::over(
                        PlanOp::Filter {
                            filter: filter.clone(),
                        },
                        node,
                    );
                }
                let top = if matches!(query, Query::Count { .. }) {
                    PlanOp::CountRows
                } else {
                    PlanOp::Collect
                };
                Plan {
                    root: PlanNode::over(top, node),
                }
            }
            _ => Plan::of(query),
        }
    }

    /// Per-shard EXPLAIN ANALYZE child rows under a ScatterGather
    /// operator. The shared recorder cannot attribute access deltas to a
    /// single shard, so child rows carry rows and self-time only; the
    /// parent operators' deltas stay exact.
    fn lane_reports(&self, lanes: &[Lane], depth: usize) -> Vec<OpReport> {
        let n = self.shards.len();
        let mut out: Vec<OpReport> = lanes[..n]
            .iter()
            .enumerate()
            .map(|(s, lane)| OpReport {
                label: format!("shard {s}/{n}"),
                depth,
                rows_in: lane.rows_in,
                rows_out: lane.rows_out,
                est_rows: None,
                self_micros: lane.micros,
                accesses: StatsSnapshot::default(),
            })
            .collect();
        if lanes.len() > n && lanes[n].rows_in > 0 {
            out.push(OpReport {
                label: "coordinator (artifact joints)".to_string(),
                depth,
                rows_in: lanes[n].rows_in,
                rows_out: lanes[n].rows_out,
                est_rows: None,
                self_micros: lanes[n].micros,
                accesses: StatsSnapshot::default(),
            });
        }
        out
    }

    // ---- the analyzing executor ----------------------------------------

    /// EXPLAIN ANALYZE through the naive sharded plan. Results are
    /// identical to `PqlEngine::eval_query` on the same corpus.
    pub fn analyze(&self, query: &Query) -> Result<Analysis, PqlError> {
        match query {
            Query::Closure { .. } => self.analyze_closure(query),
            Query::Count { .. } | Query::List { .. } => self.analyze_scan(query),
            Query::Paths { .. } => self.analyze_paths(query),
        }
    }

    fn analyze_closure(&self, query: &Query) -> Result<Analysis, PqlError> {
        let Query::Closure {
            direction,
            target,
            depth,
            filter,
        } = query
        else {
            unreachable!("analyze_closure dispatches on closure queries")
        };
        let n = self.shards.len();
        let plan = self.naive_plan(query);
        let mut ests = self.cost_model().plan_estimates(&plan).into_iter();
        let t_total = Instant::now();

        let (anchor, anchor_micros, anchor_delta) =
            self.measured_stage(|| self.resolve_sharded(*target));
        let anchor = anchor?;

        // Level-synchronous BFS: a level is the nodes discovered in FIFO
        // order at one depth, so expanding levels in that order and merging
        // each level's (position-indexed) adjacency lists sequentially
        // reproduces the single engine's FIFO discovery order exactly.
        // Nodes at the depth limit are included but not expanded.
        let reverse = *direction == Direction::Upstream;
        let mut lanes = vec![Lane::default(); n + 1];
        let (discovered, traverse_micros, traverse_delta) = self.measured_stage(|| {
            let mut discovered: Vec<PNode> = Vec::new();
            let mut seen: BTreeSet<PNode> = [anchor].into();
            let mut level: Vec<PNode> = vec![anchor];
            let mut d = 0usize;
            while !level.is_empty() {
                if let Some(limit) = depth {
                    if d == *limit {
                        break;
                    }
                }
                let fetched = self.fetch_level(&level, reverse, &mut lanes);
                let mut next: Vec<PNode> = Vec::new();
                for ns in &fetched {
                    for &m in ns {
                        if seen.insert(m) {
                            discovered.push(m);
                            next.push(m);
                        }
                    }
                }
                level = next;
                d += 1;
            }
            discovered
        });
        let discovered_rows = discovered.len();
        let fetched_rows: usize = lanes.iter().map(|l| l.rows_out).sum();
        let gather_micros: u64 = lanes.iter().map(|l| l.micros).sum();

        let mut filter_report: Option<(usize, usize, u64, StatsSnapshot)> = None;
        let kept: Vec<PNode> = if filter.is_trivial() {
            discovered
        } else {
            let items: Vec<ScanItem> = discovered.iter().map(|&p| ScanItem::Node(p)).collect();
            let (kept_items, t, d) = self.measured_stage(|| self.filter_items(&items, filter));
            filter_report = Some((items.len(), kept_items.len(), t, d));
            kept_items
                .into_iter()
                .map(|it| {
                    let ScanItem::Node(p) = it else {
                        unreachable!("closure rows are graph nodes")
                    };
                    p
                })
                .collect()
        };

        let collect_items: Vec<ScanItem> = kept.iter().map(|&p| ScanItem::Node(p)).collect();
        let (rows, collect_micros, collect_delta) =
            self.measured_stage(|| self.describe_items(&collect_items));

        // Assemble reports in plan (render) order, consuming cost estimates
        // positionally: Collect, [Filter], ScatterGather, Traverse, Anchor.
        let mut ops = Vec::new();
        ops.push(OpReport {
            label: PlanOp::Collect.label(),
            depth: 0,
            rows_in: collect_items.len(),
            rows_out: rows.len(),
            est_rows: ests.next().flatten(),
            self_micros: collect_micros,
            accesses: collect_delta,
        });
        let mut depth_cursor = 1;
        if let Some((rows_in, rows_out, t, d)) = filter_report {
            ops.push(OpReport {
                label: PlanOp::Filter {
                    filter: filter.clone(),
                }
                .label(),
                depth: depth_cursor,
                rows_in,
                rows_out,
                est_rows: ests.next().flatten(),
                self_micros: t,
                accesses: d,
            });
            depth_cursor += 1;
        }
        ops.push(OpReport {
            label: PlanOp::ScatterGather { shards: n }.label(),
            depth: depth_cursor,
            rows_in: fetched_rows,
            rows_out: discovered_rows,
            est_rows: ests.next().flatten(),
            self_micros: gather_micros,
            accesses: StatsSnapshot::default(),
        });
        ops.extend(self.lane_reports(&lanes, depth_cursor + 1));
        ops.push(OpReport {
            label: PlanOp::Traverse {
                direction: *direction,
                depth: *depth,
            }
            .label(),
            depth: depth_cursor + 1,
            rows_in: 1,
            rows_out: discovered_rows,
            est_rows: ests.next().flatten(),
            self_micros: traverse_micros,
            accesses: traverse_delta,
        });
        ops.push(OpReport {
            label: PlanOp::Anchor { target: *target }.label(),
            depth: depth_cursor + 2,
            rows_in: 0,
            rows_out: 1,
            est_rows: ests.next().flatten(),
            self_micros: anchor_micros,
            accesses: anchor_delta,
        });

        Ok(Analysis {
            plan,
            result: QueryResult::Nodes(rows),
            total_micros: t_total.elapsed().as_micros() as u64,
            ops,
        })
    }

    fn analyze_scan(&self, query: &Query) -> Result<Analysis, PqlError> {
        let (Query::Count { entity, filter } | Query::List { entity, filter }) = query else {
            unreachable!("analyze_scan dispatches on count/list queries")
        };
        let n = self.shards.len();
        let cost = self.cost_model();
        let plan = self.naive_plan(query);
        let mut ests = cost.plan_estimates(&plan).into_iter();
        let t_total = Instant::now();

        // Scan stage: artifacts are coordinator-resident; runs/executions
        // scatter to shards and merge in key order (executions are
        // disjoint across shards, so the merged sequence is exactly the
        // single engine's scan order).
        let mut lanes = vec![Lane::default(); n];
        let mut gather_micros = 0u64;
        let (items, scan_micros, scan_delta) = if *entity == Entity::Artifacts {
            self.measured_stage(|| self.scan_artifacts_counted())
        } else {
            let (parts, micros, delta) = self.measured_stage(|| {
                if n > 1 && cost.entity_rows(*entity) as usize >= PARALLEL_FANOUT {
                    let fetched: Vec<(usize, Vec<ScanItem>, u64)> = std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .shards
                            .iter()
                            .enumerate()
                            .map(|(s, shard)| {
                                scope.spawn(move || {
                                    let t0 = Instant::now();
                                    let items = shard.scan_entity(*entity);
                                    (s, items, t0.elapsed().as_micros() as u64)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("scatter scan thread"))
                            .collect()
                    });
                    fetched
                } else {
                    self.shards
                        .iter()
                        .enumerate()
                        .map(|(s, shard)| {
                            let t0 = Instant::now();
                            let items = shard.scan_entity(*entity);
                            (s, items, t0.elapsed().as_micros() as u64)
                        })
                        .collect()
                }
            });
            let mut items: Vec<ScanItem> = Vec::new();
            for (s, part, micros) in parts {
                lanes[s].rows_out = part.len();
                lanes[s].micros = micros;
                items.extend(part);
            }
            let t0 = Instant::now();
            items.sort_by_key(scan_key);
            gather_micros = t0.elapsed().as_micros() as u64;
            (items, micros, delta)
        };
        let total = items.len();

        let mut filter_report: Option<(usize, usize, u64, StatsSnapshot)> = None;
        let kept = if filter.is_trivial() {
            items
        } else {
            let (kept, t, d) = self.measured_stage(|| self.filter_items(&items, filter));
            filter_report = Some((total, kept.len(), t, d));
            kept
        };

        // Assemble in render order: top, [Filter], [ScatterGather + shard
        // rows], Scan.
        let mut ops = Vec::new();
        let result = if matches!(query, Query::Count { .. }) {
            ops.push(OpReport {
                label: PlanOp::CountRows.label(),
                depth: 0,
                rows_in: kept.len(),
                rows_out: kept.len(),
                est_rows: ests.next().flatten(),
                self_micros: 0,
                accesses: StatsSnapshot::default(),
            });
            QueryResult::Count(kept.len())
        } else {
            let (rows, t, d) = self.measured_stage(|| self.describe_items(&kept));
            ops.push(OpReport {
                label: PlanOp::Collect.label(),
                depth: 0,
                rows_in: kept.len(),
                rows_out: rows.len(),
                est_rows: ests.next().flatten(),
                self_micros: t,
                accesses: d,
            });
            QueryResult::Nodes(rows)
        };
        let mut depth_cursor = 1;
        if let Some((rows_in, rows_out, t, d)) = filter_report {
            ops.push(OpReport {
                label: PlanOp::Filter {
                    filter: filter.clone(),
                }
                .label(),
                depth: depth_cursor,
                rows_in,
                rows_out,
                est_rows: ests.next().flatten(),
                self_micros: t,
                accesses: d,
            });
            depth_cursor += 1;
        }
        if *entity != Entity::Artifacts {
            ops.push(OpReport {
                label: PlanOp::ScatterGather { shards: n }.label(),
                depth: depth_cursor,
                rows_in: total,
                rows_out: total,
                est_rows: ests.next().flatten(),
                self_micros: gather_micros,
                accesses: StatsSnapshot::default(),
            });
            ops.extend(self.lane_reports(&lanes, depth_cursor + 1));
            depth_cursor += 1;
        }
        ops.push(OpReport {
            label: PlanOp::Scan { entity: *entity }.label(),
            depth: depth_cursor,
            rows_in: 0,
            rows_out: total,
            est_rows: ests.next().flatten(),
            self_micros: scan_micros,
            accesses: scan_delta,
        });

        Ok(Analysis {
            plan,
            result,
            total_micros: t_total.elapsed().as_micros() as u64,
            ops,
        })
    }

    fn analyze_paths(&self, query: &Query) -> Result<Analysis, PqlError> {
        let Query::Paths { from, to, max_len } = query else {
            unreachable!("analyze_paths dispatches on path queries")
        };
        let plan = self.naive_plan(query);
        let mut ests = self.cost_model().plan_estimates(&plan).into_iter();
        let t_total = Instant::now();

        let (a, ta, da) = self.measured_stage(|| self.resolve_sharded(*from));
        let a = a?;
        let (b, tb, db) = self.measured_stage(|| self.resolve_sharded(*to));
        let b = b?;

        let cap = max_len.unwrap_or(16);
        // Same DFS as the single engine: simple paths over succ edges with
        // a length budget; run adjacency comes from the owning shard,
        // artifact adjacency from the coordinator mirror.
        let (paths, tp, dp) = self.measured_stage(|| {
            let mut paths: Vec<Vec<PNode>> = Vec::new();
            let mut stack = vec![a];
            let mut on_path: BTreeSet<PNode> = [a].into();
            self.dfs_routed(a, b, cap, &mut stack, &mut on_path, &mut paths);
            paths
        });

        let rows_in = paths.len();
        let (rendered, tc, dc) = self.measured_stage(|| {
            paths
                .into_iter()
                .map(|p| p.into_iter().map(|n| self.describe_routed(n)).collect())
                .collect::<Vec<Vec<ResultNode>>>()
        });

        let ops = vec![
            OpReport {
                label: PlanOp::Collect.label(),
                depth: 0,
                rows_in,
                rows_out: rendered.len(),
                est_rows: ests.next().flatten(),
                self_micros: tc,
                accesses: dc,
            },
            OpReport {
                label: PlanOp::EnumeratePaths { max_len: cap }.label(),
                depth: 1,
                rows_in: 2,
                rows_out: rows_in,
                est_rows: ests.next().flatten(),
                self_micros: tp,
                accesses: dp,
            },
            OpReport {
                label: PlanOp::Anchor { target: *from }.label(),
                depth: 2,
                rows_in: 0,
                rows_out: 1,
                est_rows: ests.next().flatten(),
                self_micros: ta,
                accesses: da,
            },
            OpReport {
                label: PlanOp::Anchor { target: *to }.label(),
                depth: 2,
                rows_in: 0,
                rows_out: 1,
                est_rows: ests.next().flatten(),
                self_micros: tb,
                accesses: db,
            },
        ];
        Ok(Analysis {
            plan,
            result: QueryResult::Paths(rendered),
            total_micros: t_total.elapsed().as_micros() as u64,
            ops,
        })
    }

    fn dfs_routed(
        &self,
        cur: PNode,
        to: PNode,
        budget: usize,
        stack: &mut Vec<PNode>,
        on_path: &mut BTreeSet<PNode>,
        out: &mut Vec<Vec<PNode>>,
    ) {
        if cur == to {
            out.push(stack.clone());
            return;
        }
        if budget == 0 {
            return;
        }
        let ns = self.neighbors_routed(cur, false).to_vec();
        for n in ns {
            if on_path.insert(n) {
                stack.push(n);
                self.dfs_routed(n, to, budget - 1, stack, on_path, out);
                stack.pop();
                on_path.remove(&n);
            }
        }
    }

    // ---- optimizer surface ----------------------------------------------

    /// Cost-based optimization against the sharded corpus. The decision
    /// core is shared with the single engine (`optimize_with`), fed summed
    /// cardinalities and posting lengths, so rewrite choices match; only
    /// the plan shape differs (fan-out operators gain a ScatterGather).
    pub fn optimize(&self, query: &Query) -> Optimization {
        let cost = self.cost_model();
        let mut opt = optimize_with(
            &cost,
            &|entity, field, value| self.posting_len(entity, field, value),
            query,
        );
        opt.plan = self.plan_for(&opt.chosen, query);
        opt
    }

    /// The sharded plan shape for a rewrite decision.
    fn plan_for(&self, chosen: &Rewrite, query: &Query) -> Plan {
        let n = self.shards.len();
        match chosen {
            Rewrite::None => self.naive_plan(query),
            Rewrite::MetaCount { entity } => {
                let leaf = PlanNode::leaf(PlanOp::MetaCount { entity: *entity });
                if *entity == Entity::Artifacts {
                    // The coordinator catalog answers directly.
                    Plan { root: leaf }
                } else {
                    Plan {
                        root: PlanNode::over(PlanOp::ScatterGather { shards: n }, leaf),
                    }
                }
            }
            Rewrite::IndexLookup { entity, keys, .. } => {
                let filter = match query {
                    Query::Count { filter, .. } | Query::List { filter, .. } => filter.clone(),
                    _ => unreachable!("IndexLookup only rewrites count/list"),
                };
                let mut node = PlanNode::leaf(PlanOp::IndexLookup {
                    entity: *entity,
                    keys: keys.clone(),
                });
                if *entity != Entity::Artifacts {
                    node = PlanNode::over(PlanOp::ScatterGather { shards: n }, node);
                }
                let filtered = PlanNode::over(PlanOp::Filter { filter }, node);
                let top = if matches!(query, Query::Count { .. }) {
                    PlanOp::CountRows
                } else {
                    PlanOp::Collect
                };
                Plan {
                    root: PlanNode::over(top, filtered),
                }
            }
            Rewrite::NeighborProbe => {
                let Query::Closure {
                    direction,
                    target,
                    filter,
                    ..
                } = query
                else {
                    unreachable!("NeighborProbe only rewrites depth-1 closures")
                };
                // A single adjacency read touches one shard (or the
                // coordinator); no fan-out to merge.
                let mut node = PlanNode::over(
                    PlanOp::NeighborProbe {
                        direction: *direction,
                    },
                    PlanNode::leaf(PlanOp::Anchor { target: *target }),
                );
                if !filter.is_trivial() {
                    node = PlanNode::over(
                        PlanOp::Filter {
                            filter: filter.clone(),
                        },
                        node,
                    );
                }
                Plan {
                    root: PlanNode::over(PlanOp::Collect, node),
                }
            }
        }
    }

    /// EXPLAIN ANALYZE through the optimizer: execute the rewritten plan
    /// with the same row/estimate conventions as the single engine's
    /// `analyze_optimized`. Falls back to [`Self::analyze`] when no rewrite
    /// applies.
    pub fn analyze_optimized(&self, query: &Query) -> Result<Analysis, PqlError> {
        let opt = self.optimize(query);
        match opt.chosen.clone() {
            Rewrite::None => self.analyze(query),
            Rewrite::MetaCount { entity } => Ok(self.analyze_meta_count(opt, entity)),
            Rewrite::IndexLookup { entity, keys, est } => {
                self.analyze_index_lookup(opt, query, entity, keys, est)
            }
            Rewrite::NeighborProbe => self.analyze_neighbor_probe(opt, query),
        }
    }

    fn analyze_meta_count(&self, opt: Optimization, entity: Entity) -> Analysis {
        let n = self.shards.len();
        let t_total = Instant::now();
        if entity == Entity::Artifacts {
            // One keyed lookup against the coordinator catalog, mirroring
            // the single engine's meta_count counting.
            let (total, t, d) = self.measured_stage(|| {
                self.stats.add_keyed_lookups(1);
                self.catalog.len()
            });
            return Analysis {
                plan: opt.plan,
                result: QueryResult::Count(total),
                total_micros: t_total.elapsed().as_micros() as u64,
                ops: vec![OpReport {
                    label: PlanOp::MetaCount { entity }.label(),
                    depth: 0,
                    rows_in: 0,
                    rows_out: total,
                    est_rows: Some(total as u64),
                    self_micros: t,
                    accesses: d,
                }],
            };
        }
        let mut lanes = vec![Lane::default(); n];
        let (total, t, d) = self.measured_stage(|| {
            let mut total = 0usize;
            for (s, shard) in self.shards.iter().enumerate() {
                let t0 = Instant::now();
                let c = shard.meta_count(entity);
                lanes[s].rows_out = c;
                lanes[s].micros = t0.elapsed().as_micros() as u64;
                total += c;
            }
            total
        });
        let mut ops = vec![OpReport {
            label: PlanOp::ScatterGather { shards: n }.label(),
            depth: 0,
            rows_in: total,
            rows_out: total,
            est_rows: Some(total as u64),
            self_micros: t,
            accesses: StatsSnapshot::default(),
        }];
        ops.extend(self.lane_reports(&lanes, 1));
        ops.push(OpReport {
            label: PlanOp::MetaCount { entity }.label(),
            depth: 1,
            rows_in: 0,
            rows_out: total,
            est_rows: Some(total as u64),
            self_micros: t,
            accesses: d,
        });
        Analysis {
            plan: opt.plan,
            result: QueryResult::Count(total),
            total_micros: t_total.elapsed().as_micros() as u64,
            ops,
        }
    }

    fn analyze_index_lookup(
        &self,
        opt: Optimization,
        query: &Query,
        entity: Entity,
        keys: Vec<(Field, String)>,
        est: u64,
    ) -> Result<Analysis, PqlError> {
        let n = self.shards.len();
        let filter = match query {
            Query::Count { filter, .. } | Query::List { filter, .. } => filter,
            _ => unreachable!("IndexLookup only rewrites count/list"),
        };
        let t_total = Instant::now();
        let mut lanes = vec![Lane::default(); n];
        let mut probed_rows = 0usize;

        // Union of postings through a BTreeSet: candidates come out in key
        // order, exactly the order a (merged) scan enumerates.
        let (candidates, lookup_micros, lookup_delta) = self.measured_stage(|| match entity {
            Entity::Runs => {
                let mut set = BTreeSet::new();
                for (s, shard) in self.shards.iter().enumerate() {
                    let t0 = Instant::now();
                    let mut cnt = 0usize;
                    for (field, value) in &keys {
                        for &key in shard.probe_run_index(*field, value).unwrap_or(&[]) {
                            cnt += 1;
                            set.insert(key);
                        }
                    }
                    lanes[s].rows_out = cnt;
                    lanes[s].micros = t0.elapsed().as_micros() as u64;
                    probed_rows += cnt;
                }
                set.into_iter()
                    .map(|(e, node)| ScanItem::Node(PNode::Run(e, node)))
                    .collect::<Vec<_>>()
            }
            Entity::Artifacts => {
                let mut set: BTreeSet<u64> = BTreeSet::new();
                for (_, value) in &keys {
                    set.extend(self.probe_dtype_counted(value));
                }
                set.into_iter()
                    .map(|h| ScanItem::Node(PNode::Artifact(h)))
                    .collect::<Vec<_>>()
            }
            Entity::Executions => unreachable!("executions have no secondary index"),
        });

        let rows_in = candidates.len();
        let (kept, filter_micros, filter_delta) =
            self.measured_stage(|| self.filter_items(&candidates, filter));

        let mut ops = Vec::new();
        let result = if matches!(query, Query::Count { .. }) {
            ops.push(OpReport {
                label: PlanOp::CountRows.label(),
                depth: 0,
                rows_in: kept.len(),
                rows_out: kept.len(),
                est_rows: Some(est.div_ceil(3)),
                self_micros: 0,
                accesses: StatsSnapshot::default(),
            });
            QueryResult::Count(kept.len())
        } else {
            let (rows, t, d) = self.measured_stage(|| self.describe_items(&kept));
            ops.push(OpReport {
                label: PlanOp::Collect.label(),
                depth: 0,
                rows_in: kept.len(),
                rows_out: rows.len(),
                est_rows: Some(est.div_ceil(3)),
                self_micros: t,
                accesses: d,
            });
            QueryResult::Nodes(rows)
        };
        ops.push(OpReport {
            label: PlanOp::Filter {
                filter: filter.clone(),
            }
            .label(),
            depth: 1,
            rows_in,
            rows_out: kept.len(),
            est_rows: Some(est.div_ceil(3)),
            self_micros: filter_micros,
            accesses: filter_delta,
        });
        let mut lookup_depth = 2;
        if entity != Entity::Artifacts {
            ops.push(OpReport {
                label: PlanOp::ScatterGather { shards: n }.label(),
                depth: 2,
                rows_in: probed_rows,
                rows_out: rows_in,
                est_rows: Some(est),
                self_micros: lanes.iter().map(|l| l.micros).sum(),
                accesses: StatsSnapshot::default(),
            });
            ops.extend(self.lane_reports(&lanes, 3));
            lookup_depth = 3;
        }
        ops.push(OpReport {
            label: PlanOp::IndexLookup { entity, keys }.label(),
            depth: lookup_depth,
            rows_in: 0,
            rows_out: rows_in,
            est_rows: Some(est),
            self_micros: lookup_micros,
            accesses: lookup_delta,
        });

        Ok(Analysis {
            plan: opt.plan,
            result,
            total_micros: t_total.elapsed().as_micros() as u64,
            ops,
        })
    }

    fn analyze_neighbor_probe(
        &self,
        opt: Optimization,
        query: &Query,
    ) -> Result<Analysis, PqlError> {
        let Query::Closure {
            direction,
            target,
            depth: Some(1),
            filter,
        } = query
        else {
            unreachable!("NeighborProbe only rewrites depth-1 closures")
        };
        let cost = self.cost_model();
        let t_total = Instant::now();
        // Stage reports in execution order; depth becomes the render
        // position after the final reversal (linear chain).
        let mut stages: Vec<(String, usize, usize, Option<u64>, u64, StatsSnapshot)> = Vec::new();

        let (anchor, t, d) = self.measured_stage(|| self.resolve_sharded(*target));
        let anchor = anchor?;
        stages.push((
            PlanOp::Anchor { target: *target }.label(),
            0,
            1,
            Some(1),
            t,
            d,
        ));

        let reverse = *direction == Direction::Upstream;
        // Same discovery order as the BFS's first (and only) level.
        let (discovered, t, d) = self.measured_stage(|| {
            let mut out = Vec::new();
            let mut seen: BTreeSet<PNode> = [anchor].into();
            for &m in self.neighbors_routed(anchor, reverse) {
                if seen.insert(m) {
                    out.push(m);
                }
            }
            out
        });
        let probe_est = cost.avg_degree().min(cost.graph_nodes());
        stages.push((
            PlanOp::NeighborProbe {
                direction: *direction,
            }
            .label(),
            1,
            discovered.len(),
            Some(probe_est),
            t,
            d,
        ));

        let kept: Vec<PNode> = if filter.is_trivial() {
            discovered
        } else {
            let items: Vec<ScanItem> = discovered.iter().map(|&p| ScanItem::Node(p)).collect();
            let (kept_items, t, d) = self.measured_stage(|| self.filter_items(&items, filter));
            stages.push((
                PlanOp::Filter {
                    filter: filter.clone(),
                }
                .label(),
                items.len(),
                kept_items.len(),
                Some(probe_est.div_ceil(3)),
                t,
                d,
            ));
            kept_items
                .into_iter()
                .map(|it| {
                    let ScanItem::Node(p) = it else {
                        unreachable!("closure rows are graph nodes")
                    };
                    p
                })
                .collect()
        };

        let collect_items: Vec<ScanItem> = kept.iter().map(|&p| ScanItem::Node(p)).collect();
        let (rows, t, d) = self.measured_stage(|| self.describe_items(&collect_items));
        let collect_est = stages.last().and_then(|s| s.3);
        stages.push((
            PlanOp::Collect.label(),
            collect_items.len(),
            rows.len(),
            collect_est,
            t,
            d,
        ));

        let ops = stages
            .into_iter()
            .rev()
            .enumerate()
            .map(
                |(depth, (label, rows_in, rows_out, est_rows, self_micros, accesses))| OpReport {
                    label,
                    depth,
                    rows_in,
                    rows_out,
                    est_rows,
                    self_micros,
                    accesses,
                },
            )
            .collect();
        Ok(Analysis {
            plan: opt.plan,
            result: QueryResult::Nodes(rows),
            total_micros: t_total.elapsed().as_micros() as u64,
            ops,
        })
    }

    // ---- eval surface ---------------------------------------------------

    /// Parse and evaluate a PQL query string.
    pub fn eval(&self, query: &str) -> Result<QueryResult, PqlError> {
        self.eval_query(&parse(query)?)
    }

    /// Evaluate a parsed query through the naive sharded plan.
    /// Result-identical to `PqlEngine::eval_query` over the same corpus.
    pub fn eval_query(&self, query: &Query) -> Result<QueryResult, PqlError> {
        Ok(self.analyze(query)?.result)
    }

    /// Evaluate through the optimized sharded plan.
    pub fn eval_optimized(&self, query: &Query) -> Result<QueryResult, PqlError> {
        Ok(self.analyze_optimized(query)?.result)
    }

    /// Evaluate with result caching. Entries are keyed by the
    /// `sharded(N)` backend and tagged with the *summed* generation, so an
    /// ingest into any shard — not just shard 0 — invalidates them.
    pub fn eval_cached(
        &self,
        query: &Query,
        cache: &mut QueryCache,
    ) -> Result<QueryResult, PqlError> {
        let key = QueryCache::key_for(query);
        if let Some(result) = cache.get(&self.backend_key, &key, self.generation()) {
            return Ok(result);
        }
        let result = self.eval_optimized(query)?;
        cache.put(&self.backend_key, &key, self.generation(), result.clone());
        Ok(result)
    }
}

/// Global scan order of a merged per-shard scan: runs by (exec, node),
/// executions by exec, artifacts by hash — the key order each shard's
/// BTreeMaps already enumerate.
fn scan_key(it: &ScanItem) -> (u64, u64) {
    match it {
        ScanItem::Node(PNode::Run(e, n)) => (e.0, n.raw()),
        ScanItem::Exec(e) => (e.0, 0),
        ScanItem::Node(PNode::Artifact(h)) => (*h, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{analyze_optimized, eval_optimized};
    use crate::plan::analyze;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn corpus(n_docs: usize) -> (Vec<RetrospectiveProvenance>, wf_engine::synth::Figure1Nodes) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        for _ in 0..n_docs {
            exec.run_observed(&wf, &mut cap).unwrap();
        }
        (cap.finish_all(), nodes)
    }

    fn engines(shards: usize, docs: &[RetrospectiveProvenance]) -> (PqlEngine, ShardedEngine) {
        let mut single = PqlEngine::new();
        let mut sharded = ShardedEngine::new(shards);
        for d in docs {
            single.ingest(d);
            sharded.ingest(d);
        }
        (single, sharded)
    }

    #[test]
    fn routing_spreads_executions_across_shards() {
        let (docs, _) = corpus(6);
        let (_, sharded) = engines(4, &docs);
        let mut busy: BTreeSet<usize> = BTreeSet::new();
        for d in &docs {
            busy.insert(sharded.route(d.exec));
        }
        assert!(busy.len() >= 2, "seeded hash spreads execs: {busy:?}");
        assert_eq!(sharded.run_count(), docs.len() * 8);
        assert_eq!(sharded.exec_count(), docs.len());
    }

    #[test]
    fn sharded_matches_single_engine_on_every_query_shape() {
        let (docs, nodes) = corpus(5);
        let file = docs[0].produced(nodes.save_hist, "file").unwrap();
        let grid = docs[0].produced(nodes.load, "grid").unwrap();
        let iso = docs[0].produced(nodes.save_iso, "file").unwrap();
        for shards in [1, 2, 4] {
            let (single, sharded) = engines(shards, &docs);
            for q in [
                format!("lineage of artifact {}", file.digest()),
                format!("lineage of artifact {} depth 1", file.digest()),
                format!("lineage of artifact {} depth 2", file.digest()),
                format!(
                    "lineage of artifact {} where module = histogram",
                    file.digest()
                ),
                format!("impact of artifact {}", grid.digest()),
                format!("impact of artifact {} where dtype = bytes", grid.digest()),
                format!("impact of run {}/{}", docs[2].exec.0, nodes.load.raw()),
                "count runs".to_string(),
                "count artifacts".to_string(),
                "count executions".to_string(),
                "count runs where status = succeeded".to_string(),
                "list runs where module = histogram or module = isosurface".to_string(),
                "list runs where module contains save".to_string(),
                "list artifacts where dtype = grid".to_string(),
                "list executions where status = succeeded".to_string(),
                "count runs where exec = 3".to_string(),
                format!(
                    "paths from artifact {} to artifact {}",
                    grid.digest(),
                    iso.digest()
                ),
            ] {
                let parsed = parse(&q).unwrap();
                let reference = single.eval_query(&parsed).unwrap();
                assert_eq!(
                    sharded.eval_query(&parsed).unwrap(),
                    reference,
                    "naive divergence on {q} with {shards} shard(s)"
                );
                assert_eq!(
                    sharded.eval_optimized(&parsed).unwrap(),
                    reference,
                    "optimized divergence on {q} with {shards} shard(s)"
                );
                assert_eq!(
                    eval_optimized(&single, &parsed).unwrap(),
                    reference,
                    "single-engine optimizer sanity on {q}"
                );
            }
        }
    }

    #[test]
    fn sharded_errors_match_single_engine() {
        let (docs, _) = corpus(2);
        let (single, sharded) = engines(4, &docs);
        for q in [
            "lineage of artifact 00000000000000aa",
            "impact of run 9999/9",
            "paths from artifact 00000000000000aa to artifact 00000000000000bb",
        ] {
            let parsed = parse(q).unwrap();
            assert_eq!(
                sharded.eval_query(&parsed).unwrap_err(),
                single.eval_query(&parsed).unwrap_err(),
                "error divergence on {q}"
            );
        }
    }

    #[test]
    fn closure_analyze_access_totals_match_unsharded_exactly() {
        let (docs, nodes) = corpus(4);
        let file = docs[0].produced(nodes.save_hist, "file").unwrap();
        let (single, sharded) = engines(4, &docs);
        for q in [
            format!("lineage of artifact {}", file.digest()),
            format!(
                "lineage of artifact {} where module contains save or status = failed",
                file.digest()
            ),
            format!(
                "paths from artifact {} to artifact {}",
                docs[0].produced(nodes.load, "grid").unwrap().digest(),
                docs[0].produced(nodes.save_iso, "file").unwrap().digest()
            ),
        ] {
            let parsed = parse(&q).unwrap();
            let a1 = analyze(&single, &parsed).unwrap();
            let a2 = sharded.analyze(&parsed).unwrap();
            assert_eq!(a1.result, a2.result, "result divergence on {q}");
            assert_eq!(
                a1.total_accesses(),
                a2.total_accesses(),
                "access totals diverge on {q}"
            );
        }
    }

    #[test]
    fn explain_analyze_renders_per_shard_rows() {
        let (docs, nodes) = corpus(4);
        let file = docs[0].produced(nodes.save_hist, "file").unwrap();
        let (_, sharded) = engines(4, &docs);
        let q = parse(&format!("lineage of artifact {}", file.digest())).unwrap();
        let rendered = sharded.analyze(&q).unwrap().render();
        assert!(
            rendered.contains("ScatterGather (4 shards) [merge]"),
            "{rendered}"
        );
        assert!(rendered.contains("shard 0/4"), "{rendered}");
        assert!(rendered.contains("shard 3/4"), "{rendered}");
        assert!(rendered.contains("coordinator"), "{rendered}");
        // Scans fan out too.
        let q = parse("list runs where module contains save").unwrap();
        let rendered = sharded.analyze(&q).unwrap().render();
        assert!(rendered.contains("ScatterGather"), "{rendered}");
        assert!(rendered.contains("Scan (runs)"), "{rendered}");
    }

    #[test]
    fn optimizer_decisions_match_single_engine() {
        let (docs, nodes) = corpus(4);
        let file = docs[0].produced(nodes.save_hist, "file").unwrap();
        let (single, sharded) = engines(4, &docs);
        for q in [
            "count runs".to_string(),
            "count artifacts".to_string(),
            "count runs where status = succeeded".to_string(),
            "list runs where module = histogram".to_string(),
            "list artifacts where dtype = grid".to_string(),
            "count runs where module contains save".to_string(),
            "count runs where exec = 0".to_string(),
            format!("lineage of artifact {} depth 1", file.digest()),
            format!("lineage of artifact {} depth 2", file.digest()),
        ] {
            let parsed = parse(&q).unwrap();
            let a = crate::optimize::optimize(&single, &parsed);
            let b = sharded.optimize(&parsed);
            assert_eq!(a.chosen, b.chosen, "decision divergence on {q}");
            assert_eq!(a.rewrites, b.rewrites, "note divergence on {q}");
            let reference = analyze_optimized(&single, &parsed).unwrap();
            let sharded_a = sharded.analyze_optimized(&parsed).unwrap();
            assert_eq!(reference.result, sharded_a.result, "result on {q}");
        }
        // Sharded rewritten plans surface the fan-out.
        let opt = sharded.optimize(&parse("count runs").unwrap());
        assert!(
            opt.plan.render().contains("ScatterGather"),
            "{}",
            opt.plan.render()
        );
        assert!(opt.plan.render().contains("MetaCount"));
        let opt = sharded.optimize(&parse("count runs where status = succeeded").unwrap());
        assert!(opt.plan.render().contains("IndexLookup"));
        assert!(opt.plan.render().contains("ScatterGather"));
        // Artifact paths stay coordinator-shaped.
        let opt = sharded.optimize(&parse("count artifacts").unwrap());
        assert!(!opt.plan.render().contains("ScatterGather"));
    }

    #[test]
    fn cache_invalidated_by_ingest_into_any_shard() {
        let (docs, _) = corpus(3);
        let (_, mut sharded) = engines(4, &docs);
        let mut cache = QueryCache::new(8);
        let q = parse("count runs").unwrap();
        let first = sharded.eval_cached(&q, &mut cache).unwrap();
        assert_eq!(first, QueryResult::Count(24));
        assert_eq!(sharded.eval_cached(&q, &mut cache).unwrap(), first);
        assert_eq!(cache.hits(), 1);
        // Route a fresh doc to a shard other than 0 and ingest: the
        // summed-generation tag must invalidate the cached count.
        let (mut extra, _) = corpus(1);
        let mut doc = extra.pop().unwrap();
        let target = (100..200)
            .map(ExecId)
            .find(|&e| sharded.route(e) != 0)
            .unwrap();
        doc.exec = target;
        let gen_before = sharded.generation();
        sharded.ingest(&doc);
        assert!(sharded.generation() > gen_before);
        let second = sharded.eval_cached(&q, &mut cache).unwrap();
        assert_eq!(second, QueryResult::Count(32), "stale entry must not serve");
    }

    #[test]
    fn generation_sums_shards_and_restores_watermark() {
        let (docs, _) = corpus(5);
        let (_, mut sharded) = engines(4, &docs);
        assert_eq!(sharded.generation(), 5, "one bump per ingested doc");
        assert_eq!(sharded.generations().iter().sum::<u64>(), 5);
        sharded.restore_generation(40);
        assert!(sharded.generation() >= 40);
        let before = sharded.generation();
        let (mut extra, _) = corpus(1);
        let mut doc = extra.pop().unwrap();
        doc.exec = ExecId(500);
        sharded.ingest(&doc);
        assert!(sharded.generation() > before, "floor keeps monotonicity");
        // Restoring below the current generation is a no-op.
        let cur = sharded.generation();
        sharded.restore_generation(1);
        assert_eq!(sharded.generation(), cur);
    }

    #[test]
    fn shard_count_clamped_and_backend_key_stable() {
        let e = ShardedEngine::new(0);
        assert_eq!(e.shard_count(), 1);
        assert_eq!(e.backend_key(), "sharded(1)");
        let e = ShardedEngine::with_seed(3, 7);
        assert_eq!(e.seed(), 7);
        assert_eq!(e.backend_key(), "sharded(3)");
    }
}
