//! The builtin scientific module library.
//!
//! Everything the tutorial's running examples need, implemented as
//! deterministic synthetic stand-ins (see DESIGN.md §6 for the substitution
//! record):
//!
//! * **Figure 1** (medical imaging): `LoadVolume` simulates reading the
//!   CT scan `head.120.vtk`; `Histogram`, `Isosurface`, `SmoothMesh`,
//!   `RenderMesh`, `PlotTable`, and `SaveFile` rebuild both branches of the
//!   figure's workflow.
//! * **Provenance Challenge** (fMRI): `AlignWarp`, `Reslice`, `Softmean`,
//!   `Slice`, and `Convert` rebuild the five-stage challenge pipeline.
//! * **Benchmarks**: `Busy` and `SynthStage` provide tunable deterministic
//!   work for the capture-overhead and sweep experiments.
//!
//! All modules are pure functions of (parameters, inputs): same key, same
//! output — the property provenance-based caching and the reproducibility
//! checker rely on.

use crate::error::ExecError;
use crate::registry::{ExecInput, ModuleRegistry, Outputs};
use crate::value::{fnv1a, ContentHasher, Grid, Image, Mesh, Table, Value};
use bytes::Bytes;
use std::collections::BTreeMap;
use wf_model::{DataType, ModuleKind, ParamSpec, PortSpec};

/// Deterministic 64-bit RNG (SplitMix64), used by synthetic data sources so
/// that the platform has no hidden nondeterminism.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn out1(port: &str, value: Value) -> Outputs {
    let mut m = Outputs::new();
    m.insert(port.to_string(), value);
    m
}

fn fail(input: &ExecInput, identity: &str, message: impl Into<String>) -> ExecError {
    ExecError::ModuleFailed {
        node: input.node,
        identity: identity.to_string(),
        message: message.into(),
    }
}

/// Generate the deterministic synthetic volume for a "file path". The field
/// mixes a radially symmetric structure (so isosurfaces are non-trivial)
/// with seeded noise, entirely determined by `(path, dims)`.
fn synth_volume(seed: u64, nx: usize, ny: usize, nz: usize, noise: f64) -> Grid {
    let mut rng = SplitMix64::new(seed);
    let mut data = Vec::with_capacity(nx * ny * nz);
    let (cx, cy, cz) = (
        (nx.max(1) - 1) as f64 / 2.0,
        (ny.max(1) - 1) as f64 / 2.0,
        (nz.max(1) - 1) as f64 / 2.0,
    );
    let rmax = (cx * cx + cy * cy + cz * cz).sqrt().max(1.0);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let dz = z as f64 - cz;
                let r = (dx * dx + dy * dy + dz * dz).sqrt() / rmax;
                let shell = (1.0 - r).max(0.0);
                let ripple = (r * 12.0).sin() * 0.15;
                let n = (rng.next_f64() - 0.5) * noise;
                data.push((shell + ripple + n).clamp(-1.0, 2.0));
            }
        }
    }
    Grid::new((nx, ny, nz), data)
}

fn grid_dims_param(input: &ExecInput) -> Result<(usize, usize, usize), ExecError> {
    let nx = input.param_i64("nx")?.max(1) as usize;
    let ny = input.param_i64("ny")?.max(1) as usize;
    let nz = input.param_i64("nz")?.max(1) as usize;
    Ok((nx, ny, nz))
}

fn register_sources(r: &mut ModuleRegistry) {
    r.register(
        ModuleKind::new("LoadVolume")
            .category("io")
            .doc("Simulate loading a volumetric dataset from a file path (Figure 1's head.120.vtk)")
            .output(PortSpec::required("grid", DataType::Grid))
            .param(ParamSpec::new("path", "volume.vtk").with_doc("simulated file path"))
            .param(ParamSpec::new("nx", 16i64))
            .param(ParamSpec::new("ny", 16i64))
            .param(ParamSpec::new("nz", 16i64)),
        |input: &ExecInput| {
            let path = input.param_text("path")?;
            let (nx, ny, nz) = grid_dims_param(input)?;
            let seed = fnv1a(path.as_bytes());
            Ok(out1(
                "grid",
                Value::Grid(synth_volume(seed, nx, ny, nz, 0.05)),
            ))
        },
    );
    r.register(
        ModuleKind::new("SyntheticGrid")
            .category("io")
            .doc("Deterministic synthetic volume from an explicit seed")
            .output(PortSpec::required("grid", DataType::Grid))
            .param(ParamSpec::new("seed", 0i64))
            .param(ParamSpec::new("noise", 0.1f64))
            .param(ParamSpec::new("nx", 16i64))
            .param(ParamSpec::new("ny", 16i64))
            .param(ParamSpec::new("nz", 16i64)),
        |input: &ExecInput| {
            let seed = input.param_i64("seed")? as u64;
            let noise = input.param_f64("noise")?;
            let (nx, ny, nz) = grid_dims_param(input)?;
            Ok(out1(
                "grid",
                Value::Grid(synth_volume(seed, nx, ny, nz, noise)),
            ))
        },
    );
    r.register(
        ModuleKind::new("SaveFile")
            .category("io")
            .doc("Persist any value as a simulated file artifact (name + content digest)")
            .input(PortSpec::required("in", DataType::Any))
            .output(PortSpec::required("file", DataType::Bytes))
            .param(ParamSpec::new("name", "out.dat").with_doc("simulated file name")),
        |input: &ExecInput| {
            let v = input.input("in")?;
            let name = input.param_text("name")?;
            let payload = format!("{name}\n{}\n{}", v.dtype(), v.digest());
            Ok(out1(
                "file",
                Value::Bytes(Bytes::from(payload.into_bytes())),
            ))
        },
    );
}

fn register_analysis(r: &mut ModuleRegistry) {
    r.register(
        ModuleKind::new("Histogram")
            .category("analysis")
            .doc("Bin the scalar values of a grid into a frequency table")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("table", DataType::Table))
            .param(ParamSpec::new("bins", 64i64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let bins = input.param_i64("bins")?.max(1) as usize;
            let (lo, hi) = g.range();
            let width = if hi > lo {
                (hi - lo) / bins as f64
            } else {
                1.0
            };
            let mut counts = vec![0f64; bins];
            for &v in g.data.iter() {
                let mut b = ((v - lo) / width) as usize;
                if b >= bins {
                    b = bins - 1;
                }
                counts[b] += 1.0;
            }
            let rows = counts
                .iter()
                .enumerate()
                .map(|(i, &c)| vec![lo + i as f64 * width, lo + (i + 1) as f64 * width, c])
                .collect();
            Ok(out1(
                "table",
                Value::Table(Table::try_new(
                    vec!["bin_lo".into(), "bin_hi".into(), "count".into()],
                    rows,
                )?),
            ))
        },
    );
    r.register(
        ModuleKind::new("Threshold")
            .category("analysis")
            .doc("Binary mask of samples above a level")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("mask", DataType::Grid))
            .param(ParamSpec::new("level", 0.5f64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let level = input.param_f64("level")?;
            let data = g
                .data
                .iter()
                .map(|&v| if v >= level { 1.0 } else { 0.0 })
                .collect();
            Ok(out1("mask", Value::Grid(Grid::try_new(g.dims, data)?)))
        },
    );
    r.register(
        ModuleKind::new("SmoothGrid")
            .category("analysis")
            .doc("Iterated 6-neighbour box smoothing")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("smoothed", DataType::Grid))
            .param(ParamSpec::new("iterations", 1i64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let iters = input.param_i64("iterations")?.max(0) as usize;
            let (nx, ny, nz) = g.dims;
            let mut cur: Vec<f64> = g.data.as_ref().clone();
            let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
            for _ in 0..iters {
                let mut next = cur.clone();
                for z in 0..nz {
                    for y in 0..ny {
                        for x in 0..nx {
                            let mut sum = cur[idx(x, y, z)];
                            let mut n = 1.0;
                            if x > 0 {
                                sum += cur[idx(x - 1, y, z)];
                                n += 1.0;
                            }
                            if x + 1 < nx {
                                sum += cur[idx(x + 1, y, z)];
                                n += 1.0;
                            }
                            if y > 0 {
                                sum += cur[idx(x, y - 1, z)];
                                n += 1.0;
                            }
                            if y + 1 < ny {
                                sum += cur[idx(x, y + 1, z)];
                                n += 1.0;
                            }
                            if z > 0 {
                                sum += cur[idx(x, y, z - 1)];
                                n += 1.0;
                            }
                            if z + 1 < nz {
                                sum += cur[idx(x, y, z + 1)];
                                n += 1.0;
                            }
                            next[idx(x, y, z)] = sum / n;
                        }
                    }
                }
                cur = next;
            }
            Ok(out1("smoothed", Value::Grid(Grid::try_new(g.dims, cur)?)))
        },
    );
    r.register(
        ModuleKind::new("Downsample")
            .category("analysis")
            .doc("Reduce resolution by an integer factor (block averaging)")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("out", DataType::Grid))
            .param(ParamSpec::new("factor", 2i64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let f = input.param_i64("factor")?.max(1) as usize;
            let (nx, ny, nz) = g.dims;
            let (mx, my, mz) = ((nx / f).max(1), (ny / f).max(1), (nz / f).max(1));
            let mut data = Vec::with_capacity(mx * my * mz);
            for z in 0..mz {
                for y in 0..my {
                    for x in 0..mx {
                        let mut sum = 0.0;
                        let mut n = 0.0;
                        for dz in 0..f {
                            for dy in 0..f {
                                for dx in 0..f {
                                    let (sx, sy, sz) = (x * f + dx, y * f + dy, z * f + dz);
                                    if sx < nx && sy < ny && sz < nz {
                                        sum += g.at(sx, sy, sz);
                                        n += 1.0;
                                    }
                                }
                            }
                        }
                        data.push(if n > 0.0 { sum / n } else { 0.0 });
                    }
                }
            }
            Ok(out1("out", Value::Grid(Grid::try_new((mx, my, mz), data)?)))
        },
    );
    r.register(
        ModuleKind::new("GridStats")
            .category("analysis")
            .doc("Summary statistics of a grid (min, max, mean, std)")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("stats", DataType::Table)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let n = g.len().max(1) as f64;
            let mean = g.data.iter().sum::<f64>() / n;
            let var = g.data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            let (lo, hi) = g.range();
            Ok(out1(
                "stats",
                Value::Table(Table::try_new(
                    vec!["min".into(), "max".into(), "mean".into(), "std".into()],
                    vec![vec![lo, hi, mean, var.sqrt()]],
                )?),
            ))
        },
    );
    r.register(
        ModuleKind::new("GridCombine")
            .category("analysis")
            .doc("Pointwise combination of two grids of identical dimensions")
            .input(PortSpec::required("a", DataType::Grid))
            .input(PortSpec::required("b", DataType::Grid))
            .output(PortSpec::required("out", DataType::Grid))
            .param(ParamSpec::new("op", "add").with_doc("add | sub | mul")),
        |input: &ExecInput| {
            let a = input.grid("a")?;
            let b = input.grid("b")?;
            if a.dims != b.dims {
                return Err(fail(
                    input,
                    "GridCombine@1",
                    format!("dimension mismatch: {:?} vs {:?}", a.dims, b.dims),
                ));
            }
            let op = input.param_text("op")?;
            let f: fn(f64, f64) -> f64 = match op {
                "add" => |x, y| x + y,
                "sub" => |x, y| x - y,
                "mul" => |x, y| x * y,
                other => {
                    return Err(fail(
                        input,
                        "GridCombine@1",
                        format!("unknown op '{other}'"),
                    ))
                }
            };
            let data = a
                .data
                .iter()
                .zip(b.data.iter())
                .map(|(&x, &y)| f(x, y))
                .collect();
            Ok(out1("out", Value::Grid(Grid::try_new(a.dims, data)?)))
        },
    );
    r.register(
        ModuleKind::new("Scale")
            .category("analysis")
            .doc("Multiply every sample by a factor")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("out", DataType::Grid))
            .param(ParamSpec::new("factor", 1.0f64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let k = input.param_f64("factor")?;
            let data = g.data.iter().map(|&v| v * k).collect();
            Ok(out1("out", Value::Grid(Grid::try_new(g.dims, data)?)))
        },
    );
}

/// Vertex-neighbourhood Laplacian smoothing used by `SmoothMesh`.
fn laplacian_smooth(mesh: &Mesh, iterations: usize) -> Mesh {
    let nv = mesh.vertices.len();
    let mut neighbours: Vec<Vec<u32>> = vec![Vec::new(); nv];
    for t in mesh.triangles.iter() {
        let [a, b, c] = *t;
        for (u, v) in [(a, b), (b, c), (c, a)] {
            if !neighbours[u as usize].contains(&v) {
                neighbours[u as usize].push(v);
            }
            if !neighbours[v as usize].contains(&u) {
                neighbours[v as usize].push(u);
            }
        }
    }
    let mut verts: Vec<[f64; 3]> = mesh.vertices.as_ref().clone();
    for _ in 0..iterations {
        let mut next = verts.clone();
        for (i, ns) in neighbours.iter().enumerate() {
            if ns.is_empty() {
                continue;
            }
            let mut acc = [0.0f64; 3];
            for &n in ns {
                for k in 0..3 {
                    acc[k] += verts[n as usize][k];
                }
            }
            for k in 0..3 {
                // Blend halfway toward the neighbourhood centroid.
                next[i][k] = 0.5 * verts[i][k] + 0.5 * acc[k] / ns.len() as f64;
            }
        }
        verts = next;
    }
    Mesh::new(verts, mesh.triangles.as_ref().clone())
}

fn register_visualization(r: &mut ModuleRegistry) {
    r.register(
        ModuleKind::new("Isosurface")
            .category("visualization")
            .doc("Extract an isosurface mesh at a scalar level (simplified marching cells)")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("mesh", DataType::Mesh))
            .param(ParamSpec::new("isovalue", 0.5f64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let iso = input.param_f64("isovalue")?;
            let (nx, ny, nz) = g.dims;
            let mut vertices: Vec<[f64; 3]> = Vec::new();
            let mut triangles: Vec<[u32; 3]> = Vec::new();
            // For every cell whose corners straddle the isovalue, emit a
            // small triangle at the cell centre. Not watertight geometry —
            // deterministic stand-in with the right complexity profile.
            for z in 0..nz.saturating_sub(1) {
                for y in 0..ny.saturating_sub(1) {
                    for x in 0..nx.saturating_sub(1) {
                        let corners = [
                            g.at(x, y, z),
                            g.at(x + 1, y, z),
                            g.at(x, y + 1, z),
                            g.at(x, y, z + 1),
                            g.at(x + 1, y + 1, z),
                            g.at(x + 1, y, z + 1),
                            g.at(x, y + 1, z + 1),
                            g.at(x + 1, y + 1, z + 1),
                        ];
                        let above = corners.iter().filter(|&&v| v >= iso).count();
                        if above == 0 || above == 8 {
                            continue;
                        }
                        let base = vertices.len() as u32;
                        let (fx, fy, fz) = (x as f64 + 0.5, y as f64 + 0.5, z as f64 + 0.5);
                        vertices.push([fx, fy, fz]);
                        vertices.push([fx + 0.5, fy, fz]);
                        vertices.push([fx, fy + 0.5, fz]);
                        triangles.push([base, base + 1, base + 2]);
                    }
                }
            }
            Ok(out1("mesh", Value::Mesh(Mesh::new(vertices, triangles))))
        },
    );
    r.register(
        ModuleKind::new("SmoothMesh")
            .category("visualization")
            .doc("Laplacian mesh smoothing (the Figure 2 refinement module)")
            .input(PortSpec::required("mesh", DataType::Mesh))
            .output(PortSpec::required("mesh", DataType::Mesh))
            .param(ParamSpec::new("iterations", 2i64)),
        |input: &ExecInput| {
            let m = input.mesh("mesh")?;
            let iters = input.param_i64("iterations")?.max(0) as usize;
            Ok(out1("mesh", Value::Mesh(laplacian_smooth(m, iters))))
        },
    );
    r.register(
        ModuleKind::new("RenderMesh")
            .category("visualization")
            .doc("Orthographic point-splat rendering of a mesh into a grayscale image")
            .input(PortSpec::required("mesh", DataType::Mesh))
            .output(PortSpec::required("image", DataType::Image))
            .param(ParamSpec::new("width", 64i64))
            .param(ParamSpec::new("height", 64i64))
            .param(ParamSpec::new("azimuth", 0.0f64)),
        |input: &ExecInput| {
            let m = input.mesh("mesh")?;
            let w = input.param_i64("width")?.max(1) as usize;
            let h = input.param_i64("height")?.max(1) as usize;
            let az = input.param_f64("azimuth")?;
            let (sin_a, cos_a) = az.sin_cos();
            let mut pixels = vec![0u8; w * h];
            if !m.vertices.is_empty() {
                let (mut lo, mut hi) = ([f64::INFINITY; 2], [f64::NEG_INFINITY; 2]);
                let project = |v: &[f64; 3]| {
                    let px = v[0] * cos_a + v[1] * sin_a;
                    let py = v[2];
                    (px, py)
                };
                for v in m.vertices.iter() {
                    let (px, py) = project(v);
                    lo[0] = lo[0].min(px);
                    lo[1] = lo[1].min(py);
                    hi[0] = hi[0].max(px);
                    hi[1] = hi[1].max(py);
                }
                let span = |i: usize| (hi[i] - lo[i]).max(1e-9);
                for v in m.vertices.iter() {
                    let (px, py) = project(v);
                    let ix = (((px - lo[0]) / span(0)) * (w - 1) as f64) as usize;
                    let iy = (((py - lo[1]) / span(1)) * (h - 1) as f64) as usize;
                    let p = &mut pixels[iy.min(h - 1) * w + ix.min(w - 1)];
                    *p = p.saturating_add(40);
                }
            }
            Ok(out1("image", Value::Image(Image::try_new(w, h, pixels)?)))
        },
    );
    r.register(
        ModuleKind::new("PlotTable")
            .category("visualization")
            .doc("Bar plot of one table column (Figure 1's histogram image)")
            .input(PortSpec::required("table", DataType::Table))
            .output(PortSpec::required("image", DataType::Image))
            .param(ParamSpec::new("width", 64i64))
            .param(ParamSpec::new("height", 64i64))
            .param(ParamSpec::new("column", "count")),
        |input: &ExecInput| {
            let t = input.table("table")?;
            let w = input.param_i64("width")?.max(1) as usize;
            let h = input.param_i64("height")?.max(1) as usize;
            let col = input.param_text("column")?;
            let values = t
                .column(col)
                .ok_or_else(|| fail(input, "PlotTable@1", format!("no column '{col}'")))?;
            let mut pixels = vec![0u8; w * h];
            if !values.is_empty() {
                let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
                for x in 0..w {
                    let i = x * values.len() / w;
                    let bar = ((values[i] / max) * h as f64) as usize;
                    for y in 0..bar.min(h) {
                        pixels[(h - 1 - y) * w + x] = 255;
                    }
                }
            }
            Ok(out1("image", Value::Image(Image::try_new(w, h, pixels)?)))
        },
    );
    r.register(
        ModuleKind::new("Slice")
            .category("visualization")
            .doc("Extract one axis-aligned plane of a grid as a grayscale image")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("image", DataType::Image))
            .param(ParamSpec::new("axis", "z").with_doc("x | y | z"))
            .param(ParamSpec::new("index", 0i64)),
        |input: &ExecInput| {
            let g = input.grid("data")?;
            let axis = input.param_text("axis")?;
            let index = input.param_i64("index")?.max(0) as usize;
            let (nx, ny, nz) = g.dims;
            let (lo, hi) = g.range();
            let norm = |v: f64| {
                if hi > lo {
                    (((v - lo) / (hi - lo)) * 255.0) as u8
                } else {
                    0
                }
            };
            type PlaneFn<'a> = Box<dyn Fn(usize, usize) -> f64 + 'a>;
            let (w, h, get): (usize, usize, PlaneFn) = match axis {
                "x" => {
                    let i = index.min(nx.saturating_sub(1));
                    (ny, nz, Box::new(move |a, b| g.at(i, a, b)))
                }
                "y" => {
                    let i = index.min(ny.saturating_sub(1));
                    (nx, nz, Box::new(move |a, b| g.at(a, i, b)))
                }
                "z" => {
                    let i = index.min(nz.saturating_sub(1));
                    (nx, ny, Box::new(move |a, b| g.at(a, b, i)))
                }
                other => return Err(fail(input, "Slice@1", format!("unknown axis '{other}'"))),
            };
            let mut pixels = Vec::with_capacity(w * h);
            for b in 0..h {
                for a in 0..w {
                    pixels.push(norm(get(a, b)));
                }
            }
            Ok(out1("image", Value::Image(Image::try_new(w, h, pixels)?)))
        },
    );
}

fn register_challenge(r: &mut ModuleRegistry) {
    r.register(
        ModuleKind::new("AlignWarp")
            .category("challenge")
            .doc("Determine a warp aligning an anatomy volume to a reference (fMRI challenge stage 1)")
            .input(PortSpec::required("anatomy", DataType::Grid))
            .input(PortSpec::required("reference", DataType::Grid))
            .output(PortSpec::required("warp", DataType::Table))
            .param(ParamSpec::new("model", 12i64).with_doc("warp model order")),
        |input: &ExecInput| {
            let a = input.grid("anatomy")?;
            let rf = input.grid("reference")?;
            if rf.is_empty() {
                return Err(fail(input, "AlignWarp@1", "reference grid is empty"));
            }
            let model = input.param_i64("model")?.max(1) as usize;
            // Deterministic pseudo-registration: derive warp coefficients
            // from the two volumes' statistics and hashes.
            let mut h = ContentHasher::new();
            h.update_u64(Value::Grid(a.clone()).content_hash());
            h.update_u64(Value::Grid(rf.clone()).content_hash());
            let mut rng = SplitMix64::new(h.finish());
            let mean_a = a.data.iter().sum::<f64>() / a.len().max(1) as f64;
            let mean_r = rf.data.iter().sum::<f64>() / rf.len().max(1) as f64;
            let rows = (0..model)
                .map(|i| vec![i as f64, mean_r - mean_a + (rng.next_f64() - 0.5) * 0.01])
                .collect();
            Ok(out1(
                "warp",
                Value::Table(Table::try_new(vec!["coef".into(), "value".into()], rows)?),
            ))
        },
    );
    r.register(
        ModuleKind::new("Reslice")
            .category("challenge")
            .doc("Apply a warp to an anatomy volume (fMRI challenge stage 2)")
            .input(PortSpec::required("anatomy", DataType::Grid))
            .input(PortSpec::required("warp", DataType::Table))
            .output(PortSpec::required("resliced", DataType::Grid)),
        |input: &ExecInput| {
            let g = input.grid("anatomy")?;
            let w = input.table("warp")?;
            let shift = w
                .column("value")
                .map(|v| v.iter().sum::<f64>())
                .unwrap_or(0.0);
            let data = g.data.iter().map(|&v| v + shift / 10.0).collect();
            Ok(out1("resliced", Value::Grid(Grid::try_new(g.dims, data)?)))
        },
    );
    r.register(
        ModuleKind::new("Softmean")
            .category("challenge")
            .doc("Average up to four resliced volumes into an atlas (fMRI challenge stage 3)")
            .input(PortSpec::required("i1", DataType::Grid))
            .input(PortSpec::optional("i2", DataType::Grid))
            .input(PortSpec::optional("i3", DataType::Grid))
            .input(PortSpec::optional("i4", DataType::Grid))
            .output(PortSpec::required("atlas", DataType::Grid)),
        |input: &ExecInput| {
            let first = input.grid("i1")?;
            let mut grids = vec![first];
            for port in ["i2", "i3", "i4"] {
                if let Some(v) = input.input_opt(port) {
                    let g = v.as_grid().ok_or_else(|| ExecError::BadInputType {
                        expected: format!("grid on port '{port}'"),
                        got: v.dtype().to_string(),
                    })?;
                    if g.dims != first.dims {
                        return Err(fail(input, "Softmean@1", "volume dimension mismatch"));
                    }
                    grids.push(g);
                }
            }
            let n = grids.len() as f64;
            let data = (0..first.len())
                .map(|i| grids.iter().map(|g| g.data[i]).sum::<f64>() / n)
                .collect();
            Ok(out1("atlas", Value::Grid(Grid::try_new(first.dims, data)?)))
        },
    );
    r.register(
        ModuleKind::new("Convert")
            .category("challenge")
            .doc("Convert an image to a simulated graphic file (fMRI challenge stage 5)")
            .input(PortSpec::required("image", DataType::Image))
            .output(PortSpec::required("file", DataType::Bytes))
            .param(ParamSpec::new("format", "pgm")),
        |input: &ExecInput| {
            let img = input.image("image")?;
            let format = input.param_text("format")?;
            let mut bytes = format!("{format} {} {}\n", img.width, img.height).into_bytes();
            bytes.extend_from_slice(&img.pixels);
            Ok(out1("file", Value::Bytes(Bytes::from(bytes))))
        },
    );
}

fn register_util(r: &mut ModuleRegistry) {
    r.register(
        ModuleKind::new("ConstInt")
            .category("util")
            .doc("Constant integer source")
            .output(PortSpec::required("out", DataType::Integer))
            .param(ParamSpec::new("value", 0i64)),
        |input: &ExecInput| Ok(out1("out", Value::Int(input.param_i64("value")?))),
    );
    r.register(
        ModuleKind::new("ConstFloat")
            .category("util")
            .doc("Constant float source")
            .output(PortSpec::required("out", DataType::Float))
            .param(ParamSpec::new("value", 0.0f64)),
        |input: &ExecInput| Ok(out1("out", Value::Float(input.param_f64("value")?))),
    );
    r.register(
        ModuleKind::new("ConstText")
            .category("util")
            .doc("Constant text source")
            .output(PortSpec::required("out", DataType::Text))
            .param(ParamSpec::new("value", "")),
        |input: &ExecInput| {
            Ok(out1(
                "out",
                Value::Text(input.param_text("value")?.to_string()),
            ))
        },
    );
    r.register(
        ModuleKind::new("Identity")
            .category("util")
            .doc("Pass a value through unchanged")
            .input(PortSpec::required("in", DataType::Any))
            .output(PortSpec::required("out", DataType::Any)),
        |input: &ExecInput| Ok(out1("out", input.input("in")?.clone())),
    );
    r.register(
        ModuleKind::new("AddInt")
            .category("util")
            .doc("Integer addition")
            .input(PortSpec::required("a", DataType::Integer))
            .input(PortSpec::required("b", DataType::Integer))
            .output(PortSpec::required("out", DataType::Integer)),
        |input: &ExecInput| {
            let a = input.input("a")?.as_i64().unwrap_or(0);
            let b = input.input("b")?.as_i64().unwrap_or(0);
            Ok(out1("out", Value::Int(a.wrapping_add(b))))
        },
    );
    r.register(
        ModuleKind::new("Busy")
            .category("util")
            .doc("Deterministic busy work: `work` rounds of hashing. The workhorse of the capture-overhead experiment.")
            .input(PortSpec::optional("in", DataType::Any))
            .output(PortSpec::required("out", DataType::Integer))
            .param(ParamSpec::new("work", 1000i64))
            .param(ParamSpec::new("seed", 0i64)),
        |input: &ExecInput| {
            let work = input.param_i64("work")?.max(0) as u64;
            let seed = input.param_i64("seed")? as u64;
            let mut acc = seed ^ input
                .input_opt("in")
                .map(|v| v.content_hash())
                .unwrap_or(0);
            for i in 0..work {
                let mut h = ContentHasher::new();
                h.update_u64(acc);
                h.update_u64(i);
                acc = h.finish();
            }
            Ok(out1("out", Value::Int(acc as i64)))
        },
    );
    r.register(
        ModuleKind::new("FailIf")
            .category("util")
            .doc("Fail on demand (failure-injection for tests and experiments)")
            .input(PortSpec::optional("in", DataType::Any))
            .output(PortSpec::required("out", DataType::Any))
            .param(ParamSpec::new("fail", false))
            .param(ParamSpec::new("message", "injected failure")),
        |input: &ExecInput| {
            if input.param_bool("fail")? {
                return Err(fail(
                    input,
                    "FailIf@1",
                    input.param_text("message")?.to_string(),
                ));
            }
            Ok(out1(
                "out",
                input.input_opt("in").cloned().unwrap_or(Value::Bool(true)),
            ))
        },
    );
    r.register(
        ModuleKind::new("Concat")
            .category("util")
            .doc("Concatenate two text values")
            .input(PortSpec::required("a", DataType::Text))
            .input(PortSpec::required("b", DataType::Text))
            .output(PortSpec::required("out", DataType::Text)),
        |input: &ExecInput| {
            let a = input.input("a")?.as_text().unwrap_or_default().to_string();
            let b = input.input("b")?.as_text().unwrap_or_default();
            Ok(out1("out", Value::Text(a + b)))
        },
    );
    r.register(
        ModuleKind::new("FormatReport")
            .category("util")
            .doc("Render a one-row statistics table as a text report")
            .input(PortSpec::required("stats", DataType::Table))
            .output(PortSpec::required("report", DataType::Text)),
        |input: &ExecInput| {
            let t = input.table("stats")?;
            let mut s = String::new();
            for (i, c) in t.columns.iter().enumerate() {
                let v = t.rows.first().map(|r| r[i]).unwrap_or(f64::NAN);
                s.push_str(&format!("{c}={v:.4}\n"));
            }
            Ok(out1("report", Value::Text(s)))
        },
    );
    r.register(
        ModuleKind::new("SynthStage")
            .category("util")
            .doc("Generic synthetic pipeline stage: hashes its inputs with tunable work. Used by generated benchmark DAGs.")
            .input(PortSpec::optional("in0", DataType::Any))
            .input(PortSpec::optional("in1", DataType::Any))
            .input(PortSpec::optional("in2", DataType::Any))
            .input(PortSpec::optional("in3", DataType::Any))
            .output(PortSpec::required("out", DataType::Integer))
            .param(ParamSpec::new("work", 100i64))
            .param(ParamSpec::new("seed", 0i64)),
        |input: &ExecInput| {
            let mut h = ContentHasher::new();
            h.update_u64(input.param_i64("seed")? as u64);
            for port in ["in0", "in1", "in2", "in3"] {
                if let Some(v) = input.input_opt(port) {
                    h.update_u64(v.content_hash());
                }
            }
            let mut acc = h.finish();
            for i in 0..input.param_i64("work")?.max(0) as u64 {
                let mut hh = ContentHasher::new();
                hh.update_u64(acc);
                hh.update_u64(i);
                acc = hh.finish();
            }
            Ok(out1("out", Value::Int(acc as i64)))
        },
    );
    r.register(
        ModuleKind::new("Range")
            .category("util")
            .doc("List of floats 0..n")
            .output(PortSpec::required(
                "out",
                DataType::List(Box::new(DataType::Float)),
            ))
            .param(ParamSpec::new("n", 10i64)),
        |input: &ExecInput| {
            let n = input.param_i64("n")?.max(0);
            Ok(out1(
                "out",
                Value::List((0..n).map(|i| Value::Float(i as f64)).collect()),
            ))
        },
    );
    r.register(
        ModuleKind::new("SumList")
            .category("util")
            .doc("Sum of a numeric list")
            .input(PortSpec::required(
                "in",
                DataType::List(Box::new(DataType::Float)),
            ))
            .output(PortSpec::required("out", DataType::Float)),
        |input: &ExecInput| {
            let v = input.input("in")?;
            let Value::List(items) = v else {
                return Err(ExecError::BadInputType {
                    expected: "list on port 'in'".into(),
                    got: v.dtype().to_string(),
                });
            };
            let sum: f64 = items.iter().filter_map(Value::as_f64).sum();
            Ok(out1("out", Value::Float(sum)))
        },
    );
}

/// Build the standard module registry containing the whole builtin library.
pub fn standard_registry() -> ModuleRegistry {
    let mut r = ModuleRegistry::new();
    register_sources(&mut r);
    register_analysis(&mut r);
    register_visualization(&mut r);
    register_challenge(&mut r);
    register_util(&mut r);
    crate::dbops::register_database(&mut r);
    r
}

/// Convenience: run a single module of the standard library directly
/// (used heavily by unit tests).
pub fn run_module(
    registry: &ModuleRegistry,
    name: &str,
    params: Vec<(&str, wf_model::ParamValue)>,
    inputs: Vec<(&str, Value)>,
) -> Result<Outputs, ExecError> {
    let bindings: BTreeMap<String, wf_model::ParamValue> = params
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let effective = registry.effective_params(name, 1, &bindings)?;
    let body = registry.executor(&format!("{name}@1"))?;
    body.execute(&ExecInput {
        node: wf_model::NodeId(0),
        params: effective,
        inputs: inputs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> ModuleRegistry {
        standard_registry()
    }

    fn load_head(reg: &ModuleRegistry) -> Grid {
        let out = run_module(
            reg,
            "LoadVolume",
            vec![("path", "head.120.vtk".into())],
            vec![],
        )
        .unwrap();
        out["grid"].as_grid().unwrap().clone()
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn load_volume_is_reproducible_and_path_sensitive() {
        let r = reg();
        let a = load_head(&r);
        let b = load_head(&r);
        assert_eq!(
            Value::Grid(a.clone()).content_hash(),
            Value::Grid(b).content_hash()
        );
        let other =
            run_module(&r, "LoadVolume", vec![("path", "other.vtk".into())], vec![]).unwrap();
        assert_ne!(Value::Grid(a).content_hash(), other["grid"].content_hash());
    }

    #[test]
    fn histogram_counts_every_sample() {
        let r = reg();
        let g = load_head(&r);
        let n = g.len() as f64;
        let out = run_module(
            &r,
            "Histogram",
            vec![("bins", 16i64.into())],
            vec![("data", Value::Grid(g))],
        )
        .unwrap();
        let t = out["table"].as_table().unwrap();
        assert_eq!(t.len(), 16);
        let total: f64 = t.column("count").unwrap().iter().sum();
        assert_eq!(total, n);
    }

    #[test]
    fn threshold_produces_binary_mask() {
        let r = reg();
        let g = Grid::new((2, 2, 1), vec![0.1, 0.9, 0.5, 0.4]);
        let out = run_module(
            &r,
            "Threshold",
            vec![("level", 0.5f64.into())],
            vec![("data", Value::Grid(g))],
        )
        .unwrap();
        let m = out["mask"].as_grid().unwrap();
        assert_eq!(m.data.as_ref(), &vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn smooth_grid_reduces_variance() {
        let r = reg();
        let g = load_head(&r);
        let var = |g: &Grid| {
            let n = g.len() as f64;
            let mean = g.data.iter().sum::<f64>() / n;
            g.data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n
        };
        let before = var(&g);
        let out = run_module(
            &r,
            "SmoothGrid",
            vec![("iterations", 3i64.into())],
            vec![("data", Value::Grid(g))],
        )
        .unwrap();
        let after = var(out["smoothed"].as_grid().unwrap());
        assert!(after < before, "smoothing must reduce variance");
    }

    #[test]
    fn downsample_shrinks_dims() {
        let r = reg();
        let g = load_head(&r); // 16^3
        let out = run_module(
            &r,
            "Downsample",
            vec![("factor", 4i64.into())],
            vec![("data", Value::Grid(g))],
        )
        .unwrap();
        assert_eq!(out["out"].as_grid().unwrap().dims, (4, 4, 4));
    }

    #[test]
    fn grid_combine_checks_dims_and_op() {
        let r = reg();
        let a = Grid::new((2, 1, 1), vec![1.0, 2.0]);
        let b = Grid::new((2, 1, 1), vec![10.0, 20.0]);
        let out = run_module(
            &r,
            "GridCombine",
            vec![("op", "add".into())],
            vec![("a", Value::Grid(a.clone())), ("b", Value::Grid(b))],
        )
        .unwrap();
        assert_eq!(
            out["out"].as_grid().unwrap().data.as_ref(),
            &vec![11.0, 22.0]
        );
        let bad = Grid::new((3, 1, 1), vec![0.0; 3]);
        let err = run_module(
            &r,
            "GridCombine",
            vec![],
            vec![("a", Value::Grid(a.clone())), ("b", Value::Grid(bad))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("dimension mismatch"));
        let err = run_module(
            &r,
            "GridCombine",
            vec![("op", "xor".into())],
            vec![("a", Value::Grid(a.clone())), ("b", Value::Grid(a))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown op"));
    }

    #[test]
    fn isosurface_emits_triangles_on_structured_data() {
        let r = reg();
        let g = load_head(&r);
        let out = run_module(
            &r,
            "Isosurface",
            vec![("isovalue", 0.5f64.into())],
            vec![("data", Value::Grid(g))],
        )
        .unwrap();
        let m = out["mesh"].as_mesh().unwrap();
        assert!(
            !m.triangles.is_empty(),
            "head volume must have an isosurface"
        );
        assert_eq!(m.vertices.len(), m.triangles.len() * 3);
    }

    #[test]
    fn smooth_mesh_changes_geometry_but_not_topology() {
        let r = reg();
        let g = load_head(&r);
        let iso = run_module(&r, "Isosurface", vec![], vec![("data", Value::Grid(g))]).unwrap();
        let before = iso["mesh"].as_mesh().unwrap().clone();
        let out = run_module(
            &r,
            "SmoothMesh",
            vec![("iterations", 2i64.into())],
            vec![("mesh", Value::Mesh(before.clone()))],
        )
        .unwrap();
        let after = out["mesh"].as_mesh().unwrap();
        assert_eq!(after.triangles, before.triangles);
        assert_ne!(after.vertices, before.vertices);
    }

    #[test]
    fn render_and_plot_produce_nonblank_images() {
        let r = reg();
        let g = load_head(&r);
        let iso = run_module(
            &r,
            "Isosurface",
            vec![],
            vec![("data", Value::Grid(g.clone()))],
        )
        .unwrap();
        let img = run_module(
            &r,
            "RenderMesh",
            vec![],
            vec![("mesh", iso["mesh"].clone())],
        )
        .unwrap();
        let im = img["image"].as_image().unwrap();
        assert!(im.pixels.iter().any(|&p| p > 0));

        let hist = run_module(&r, "Histogram", vec![], vec![("data", Value::Grid(g))]).unwrap();
        let plot = run_module(
            &r,
            "PlotTable",
            vec![],
            vec![("table", hist["table"].clone())],
        )
        .unwrap();
        assert!(plot["image"]
            .as_image()
            .unwrap()
            .pixels
            .iter()
            .any(|&p| p > 0));
    }

    #[test]
    fn plot_table_missing_column_fails() {
        let r = reg();
        let t = Table::new(vec!["x".into()], vec![vec![1.0]]);
        let err = run_module(
            &r,
            "PlotTable",
            vec![("column", "nope".into())],
            vec![("table", Value::Table(t))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("no column"));
    }

    #[test]
    fn slice_axes_have_right_shapes() {
        let r = reg();
        let g = Grid::new((4, 3, 2), (0..24).map(|i| i as f64).collect());
        for (axis, w, h) in [("x", 3, 2), ("y", 4, 2), ("z", 4, 3)] {
            let out = run_module(
                &r,
                "Slice",
                vec![("axis", axis.into()), ("index", 1i64.into())],
                vec![("data", Value::Grid(g.clone()))],
            )
            .unwrap();
            let img = out["image"].as_image().unwrap();
            assert_eq!((img.width, img.height), (w, h), "axis {axis}");
        }
        let err = run_module(
            &r,
            "Slice",
            vec![("axis", "w".into())],
            vec![("data", Value::Grid(g))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown axis"));
    }

    #[test]
    fn challenge_pipeline_stages_compose() {
        let r = reg();
        let anatomy = load_head(&r);
        let reference = run_module(&r, "SyntheticGrid", vec![("seed", 42i64.into())], vec![])
            .unwrap()["grid"]
            .clone();
        let warp = run_module(
            &r,
            "AlignWarp",
            vec![],
            vec![
                ("anatomy", Value::Grid(anatomy.clone())),
                ("reference", reference.clone()),
            ],
        )
        .unwrap();
        assert_eq!(warp["warp"].as_table().unwrap().len(), 12);
        let resliced = run_module(
            &r,
            "Reslice",
            vec![],
            vec![
                ("anatomy", Value::Grid(anatomy.clone())),
                ("warp", warp["warp"].clone()),
            ],
        )
        .unwrap();
        let atlas = run_module(
            &r,
            "Softmean",
            vec![],
            vec![
                ("i1", resliced["resliced"].clone()),
                ("i2", resliced["resliced"].clone()),
            ],
        )
        .unwrap();
        assert_eq!(atlas["atlas"].as_grid().unwrap().dims, anatomy.dims);
        let slice =
            run_module(&r, "Slice", vec![], vec![("data", atlas["atlas"].clone())]).unwrap();
        let file = run_module(
            &r,
            "Convert",
            vec![],
            vec![("image", slice["image"].clone())],
        )
        .unwrap();
        match &file["file"] {
            Value::Bytes(b) => assert!(b.starts_with(b"pgm 16 16")),
            other => panic!("expected bytes, got {other}"),
        }
    }

    #[test]
    fn softmean_rejects_mismatched_dims() {
        let r = reg();
        let a = Grid::new((2, 2, 1), vec![0.0; 4]);
        let b = Grid::new((3, 1, 1), vec![0.0; 3]);
        let err = run_module(
            &r,
            "Softmean",
            vec![],
            vec![("i1", Value::Grid(a)), ("i2", Value::Grid(b))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("dimension mismatch"));
    }

    #[test]
    fn busy_output_depends_on_work_seed_and_input() {
        let r = reg();
        let base = run_module(&r, "Busy", vec![], vec![]).unwrap()["out"].clone();
        let same = run_module(&r, "Busy", vec![], vec![]).unwrap()["out"].clone();
        assert_eq!(base, same);
        let more =
            run_module(&r, "Busy", vec![("work", 2000i64.into())], vec![]).unwrap()["out"].clone();
        assert_ne!(base, more);
        let seeded =
            run_module(&r, "Busy", vec![("seed", 9i64.into())], vec![]).unwrap()["out"].clone();
        assert_ne!(base, seeded);
        let with_in =
            run_module(&r, "Busy", vec![], vec![("in", Value::Int(5))]).unwrap()["out"].clone();
        assert_ne!(base, with_in);
    }

    #[test]
    fn fail_if_injects_failures() {
        let r = reg();
        assert!(run_module(&r, "FailIf", vec![("fail", false.into())], vec![]).is_ok());
        let err = run_module(
            &r,
            "FailIf",
            vec![("fail", true.into()), ("message", "boom".into())],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn util_modules_behave() {
        let r = reg();
        let c = run_module(&r, "ConstInt", vec![("value", 5i64.into())], vec![]).unwrap();
        assert_eq!(c["out"], Value::Int(5));
        let s = run_module(
            &r,
            "AddInt",
            vec![],
            vec![("a", Value::Int(2)), ("b", Value::Int(3))],
        )
        .unwrap();
        assert_eq!(s["out"], Value::Int(5));
        let t = run_module(
            &r,
            "Concat",
            vec![],
            vec![
                ("a", Value::Text("head-".into())),
                ("b", Value::Text("hist".into())),
            ],
        )
        .unwrap();
        assert_eq!(t["out"], Value::Text("head-hist".into()));
        let range = run_module(&r, "Range", vec![("n", 4i64.into())], vec![]).unwrap();
        let sum = run_module(&r, "SumList", vec![], vec![("in", range["out"].clone())]).unwrap();
        assert_eq!(sum["out"], Value::Float(6.0));
        let id = run_module(&r, "Identity", vec![], vec![("in", Value::Int(9))]).unwrap();
        assert_eq!(id["out"], Value::Int(9));
    }

    #[test]
    fn grid_stats_and_report() {
        let r = reg();
        let g = Grid::new((2, 1, 1), vec![0.0, 2.0]);
        let stats = run_module(&r, "GridStats", vec![], vec![("data", Value::Grid(g))]).unwrap();
        let t = stats["stats"].as_table().unwrap();
        assert_eq!(t.column("min").unwrap()[0], 0.0);
        assert_eq!(t.column("max").unwrap()[0], 2.0);
        assert_eq!(t.column("mean").unwrap()[0], 1.0);
        let rep = run_module(
            &r,
            "FormatReport",
            vec![],
            vec![("stats", stats["stats"].clone())],
        )
        .unwrap();
        assert!(rep["report"].as_text().unwrap().contains("mean=1.0000"));
    }

    #[test]
    fn synth_stage_is_input_sensitive() {
        let r = reg();
        let a = run_module(&r, "SynthStage", vec![], vec![("in0", Value::Int(1))]).unwrap();
        let b = run_module(&r, "SynthStage", vec![], vec![("in0", Value::Int(2))]).unwrap();
        assert_ne!(a["out"], b["out"]);
    }

    #[test]
    fn save_file_encodes_name_and_digest() {
        let r = reg();
        let out = run_module(
            &r,
            "SaveFile",
            vec![("name", "head-hist.png".into())],
            vec![("in", Value::Int(1))],
        )
        .unwrap();
        match &out["file"] {
            Value::Bytes(b) => {
                let s = String::from_utf8(b.to_vec()).unwrap();
                assert!(s.starts_with("head-hist.png\n"));
                assert!(s.contains(&Value::Int(1).digest()));
            }
            other => panic!("expected bytes, got {other}"),
        }
    }

    #[test]
    fn standard_registry_declares_everything_it_implements() {
        let r = reg();
        assert!(r.catalog().len() >= 25);
        for kind in r.catalog().iter() {
            assert!(
                r.executor(&kind.identity()).is_ok(),
                "kind {} has no executor",
                kind.identity()
            );
            assert!(!kind.doc.is_empty(), "kind {} lacks docs", kind.identity());
        }
    }
}
