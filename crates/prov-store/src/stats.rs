//! Instrumented store access: [`StoreStats`] counts the primitive read
//! operations a backend performs while answering queries.
//!
//! §2.2 of the tutorial frames provenance management as a storage-strategy
//! vs. query-efficiency trade-off. The canned-query experiment (E5) shows
//! the *end-to-end* times; `StoreStats` opens the box and shows *why* — how
//! many node/edge/triple/row/record reads each backend issued, and whether
//! it got to use a keyed lookup or had to scan. Every
//! [`crate::ProvenanceStore`] backend carries one recorder and bumps it on
//! its query paths (ingest is deliberately not counted: the stats describe
//! the cost of *answering* a query, not of building the store).
//!
//! Counters use [`Cell`] rather than atomics: queries against a single
//! store are single-threaded in this codebase, and a `Cell` bump is one
//! unsynchronized add — cheap enough to leave on in the hot path (the E16
//! acceptance bar is <5% overhead with observation enabled). Recording can
//! still be switched off wholesale with [`StoreStats::set_enabled`], which
//! is what the E16 harness uses for its unobserved baseline.

use std::cell::Cell;

/// Counters for the primitive read operations of a store backend.
///
/// Interior-mutable so that read-only query methods (`&self`) can record
/// their work. Obtain a point-in-time copy with [`StoreStats::snapshot`]
/// and attribute work to a region of code by subtracting snapshots with
/// [`StatsSnapshot::delta`].
#[derive(Debug)]
pub struct StoreStats {
    /// Graph-shaped node materializations (graph store, PQL engine).
    node_reads: Cell<u64>,
    /// Adjacency-list entries followed (graph store, PQL engine).
    edge_reads: Cell<u64>,
    /// Triples produced by index pattern matches (triple store).
    triple_reads: Cell<u64>,
    /// Relational rows read out of heap tables (relational store).
    row_reads: Cell<u64>,
    /// Log records replayed or re-examined (log store).
    record_reads: Cell<u64>,
    /// Accesses served by a key or index (hash/B-tree probe).
    keyed_lookups: Cell<u64>,
    /// Accesses that had to walk a whole table/log/index.
    scans: Cell<u64>,
    /// Bytes decoded from a serialized representation.
    bytes_deserialized: Cell<u64>,
    /// When false, every bump is a no-op (the unobserved baseline).
    enabled: Cell<bool>,
}

impl Default for StoreStats {
    fn default() -> Self {
        StoreStats {
            node_reads: Cell::new(0),
            edge_reads: Cell::new(0),
            triple_reads: Cell::new(0),
            row_reads: Cell::new(0),
            record_reads: Cell::new(0),
            keyed_lookups: Cell::new(0),
            scans: Cell::new(0),
            bytes_deserialized: Cell::new(0),
            enabled: Cell::new(true),
        }
    }
}

macro_rules! bump {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&self, n: u64) {
            if self.enabled.get() {
                self.$field.set(self.$field.get() + n);
            }
        }
    };
}

impl StoreStats {
    /// A fresh recorder with all counters zero and recording enabled.
    pub fn new() -> Self {
        Self::default()
    }

    bump!(
        /// Record `n` node materializations.
        add_node_reads,
        node_reads
    );
    bump!(
        /// Record `n` adjacency entries followed.
        add_edge_reads,
        edge_reads
    );
    bump!(
        /// Record `n` triples produced by pattern matches.
        add_triple_reads,
        triple_reads
    );
    bump!(
        /// Record `n` relational rows read.
        add_row_reads,
        row_reads
    );
    bump!(
        /// Record `n` log records examined.
        add_record_reads,
        record_reads
    );
    bump!(
        /// Record `n` keyed (index-served) lookups.
        add_keyed_lookups,
        keyed_lookups
    );
    bump!(
        /// Record `n` full scans.
        add_scans,
        scans
    );
    bump!(
        /// Record `n` bytes decoded from serialized form.
        add_bytes_deserialized,
        bytes_deserialized
    );

    /// Turn recording on or off. Counters keep their values either way.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.set(on);
    }

    /// Whether bumps are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Reset every counter to zero (recording state is unchanged).
    pub fn reset(&self) {
        self.node_reads.set(0);
        self.edge_reads.set(0);
        self.triple_reads.set(0);
        self.row_reads.set(0);
        self.record_reads.set(0);
        self.keyed_lookups.set(0);
        self.scans.set(0);
        self.bytes_deserialized.set(0);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            node_reads: self.node_reads.get(),
            edge_reads: self.edge_reads.get(),
            triple_reads: self.triple_reads.get(),
            row_reads: self.row_reads.get(),
            record_reads: self.record_reads.get(),
            keyed_lookups: self.keyed_lookups.get(),
            scans: self.scans.get(),
            bytes_deserialized: self.bytes_deserialized.get(),
        }
    }
}

/// A point-in-time copy of [`StoreStats`] counters; plain data, `Copy`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Graph-shaped node materializations.
    pub node_reads: u64,
    /// Adjacency-list entries followed.
    pub edge_reads: u64,
    /// Triples produced by index pattern matches.
    pub triple_reads: u64,
    /// Relational rows read out of heap tables.
    pub row_reads: u64,
    /// Log records replayed or re-examined.
    pub record_reads: u64,
    /// Accesses served by a key or index.
    pub keyed_lookups: u64,
    /// Accesses that walked a whole table/log/index.
    pub scans: u64,
    /// Bytes decoded from a serialized representation.
    pub bytes_deserialized: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating): the work done
    /// between the `earlier` snapshot and this one.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            node_reads: self.node_reads.saturating_sub(earlier.node_reads),
            edge_reads: self.edge_reads.saturating_sub(earlier.edge_reads),
            triple_reads: self.triple_reads.saturating_sub(earlier.triple_reads),
            row_reads: self.row_reads.saturating_sub(earlier.row_reads),
            record_reads: self.record_reads.saturating_sub(earlier.record_reads),
            keyed_lookups: self.keyed_lookups.saturating_sub(earlier.keyed_lookups),
            scans: self.scans.saturating_sub(earlier.scans),
            bytes_deserialized: self
                .bytes_deserialized
                .saturating_sub(earlier.bytes_deserialized),
        }
    }

    /// Counter-wise sum of two snapshots.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            node_reads: self.node_reads + other.node_reads,
            edge_reads: self.edge_reads + other.edge_reads,
            triple_reads: self.triple_reads + other.triple_reads,
            row_reads: self.row_reads + other.row_reads,
            record_reads: self.record_reads + other.record_reads,
            keyed_lookups: self.keyed_lookups + other.keyed_lookups,
            scans: self.scans + other.scans,
            bytes_deserialized: self.bytes_deserialized + other.bytes_deserialized,
        }
    }

    /// Total element reads of any kind (nodes + edges + triples + rows +
    /// records). Lookup/scan/byte counters are access *shapes*, not reads,
    /// and are excluded.
    pub fn total_reads(&self) -> u64 {
        self.node_reads + self.edge_reads + self.triple_reads + self.row_reads + self.record_reads
    }

    /// Compact single-line rendering of the non-zero counters, e.g.
    /// `nodes=3 edges=7 keyed=4`. Returns `"-"` when everything is zero.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (label, v) in [
            ("nodes", self.node_reads),
            ("edges", self.edge_reads),
            ("triples", self.triple_reads),
            ("rows", self.row_reads),
            ("records", self.record_reads),
            ("keyed", self.keyed_lookups),
            ("scans", self.scans),
            ("bytes", self.bytes_deserialized),
        ] {
            if v > 0 {
                parts.push(format!("{label}={v}"));
            }
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_accumulate_and_snapshot() {
        let s = StoreStats::new();
        s.add_node_reads(3);
        s.add_edge_reads(2);
        s.add_keyed_lookups(1);
        let snap = s.snapshot();
        assert_eq!(snap.node_reads, 3);
        assert_eq!(snap.edge_reads, 2);
        assert_eq!(snap.keyed_lookups, 1);
        assert_eq!(snap.total_reads(), 5);
    }

    #[test]
    fn disabled_recorder_ignores_bumps() {
        let s = StoreStats::new();
        s.add_scans(1);
        s.set_enabled(false);
        s.add_scans(10);
        s.add_row_reads(10);
        s.set_enabled(true);
        s.add_scans(1);
        let snap = s.snapshot();
        assert_eq!(snap.scans, 2);
        assert_eq!(snap.row_reads, 0);
    }

    #[test]
    fn delta_attributes_work_between_snapshots() {
        let s = StoreStats::new();
        s.add_triple_reads(5);
        let before = s.snapshot();
        s.add_triple_reads(7);
        s.add_scans(1);
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.triple_reads, 7);
        assert_eq!(d.scans, 1);
        assert_eq!(d.node_reads, 0);
    }

    #[test]
    fn merge_sums_counterwise() {
        let a = StatsSnapshot {
            node_reads: 1,
            scans: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            node_reads: 10,
            keyed_lookups: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.node_reads, 11);
        assert_eq!(m.scans, 2);
        assert_eq!(m.keyed_lookups, 4);
    }

    #[test]
    fn render_is_compact_and_skips_zeros() {
        let s = StoreStats::new();
        assert_eq!(s.snapshot().render(), "-");
        s.add_node_reads(3);
        s.add_scans(1);
        assert_eq!(s.snapshot().render(), "nodes=3 scans=1");
    }

    #[test]
    fn reset_zeroes_but_keeps_enabled_state() {
        let s = StoreStats::new();
        s.add_record_reads(9);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        assert!(s.enabled());
    }
}
