//! Property tests for the sharded scatter-gather layer.
//!
//! The scatter-gather merge operators carry the correctness of every
//! sharded answer, so each one is pinned against the single-store
//! reference as an algebraic law:
//!
//! * **union merge** (flat queries): commutative, associative, and
//!   duplicate-free — any gather order over the per-shard partials
//!   produces exactly the canonical single-store answer;
//! * **count merge** (aggregates): the sum of per-shard counts equals the
//!   unsharded count, at the store surface and through PQL `count`;
//! * **closure-frontier exchange** (transitive queries): the fixpoint
//!   equals the single-store closure no matter how executions land on
//!   shards — random, all-in-one-shard, and round-robin assignments are
//!   forced by remapping exec ids to values that hash where the test
//!   wants them.
//!
//! Two stress tests then race writers against scatter-gather readers
//! (`PROVTEST_THREADS` wide, default 8): zero lost writes, exact
//! per-shard generation accounting, and final answers identical to a
//! single-threaded reference — once over [`ShardedStore`], once over a
//! lock-shared [`ShardedEngine`].

use provenance_workflows::prelude::*;
use provenance_workflows::store::{
    shard_of, sort_artifacts, sort_runs, ShardedStore, DEFAULT_SHARD_SEED,
};
use std::collections::BTreeSet;
use wf_engine::synth::challenge_workflow;
use wf_model::NodeId;

type RunRef = (ExecId, NodeId);

// ---- deterministic RNG ---------------------------------------------------

/// A tiny LCG: deterministic across platforms, no dependencies, seedable.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn stress_threads() -> usize {
    std::env::var("PROVTEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .clamp(2, 64)
}

// ---- corpus --------------------------------------------------------------

/// Two captures of each of three workflow seeds. The duplicate captures
/// share every artifact hash while carrying distinct exec ids, so once
/// the copies land on different shards a lineage closure genuinely has
/// to cross shard boundaries to be complete.
fn corpus() -> Vec<RetrospectiveProvenance> {
    let exec = Executor::new(standard_registry());
    let mut docs = Vec::new();
    for seed in 1..=3u64 {
        for _copy in 0..2 {
            let wf = challenge_workflow(seed, 3, 3);
            let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
            let r = exec.run_observed(&wf, &mut cap).expect("workflow runs");
            docs.push(cap.take(r.exec).expect("captured"));
        }
    }
    docs
}

fn probe_digests(docs: &[RetrospectiveProvenance]) -> Vec<u64> {
    let mut out: Vec<u64> = docs
        .iter()
        .flat_map(|d| d.runs.iter())
        .flat_map(|r| r.outputs.iter().map(|(_, h)| *h))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The first `n` exec ids (from an arbitrary offset) whose shard under
/// the default seed is `want(i)` — brute-forced, since the router is a
/// one-way hash.
fn execs_with_routes(shards: usize, want: impl Fn(usize) -> usize, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut e = 10_000u64;
    while out.len() < n {
        if shard_of(DEFAULT_SHARD_SEED, ExecId(e), shards) == want(out.len()) {
            out.push(e);
        }
        e += 1;
    }
    out
}

/// The corpus with exec ids rewritten to `execs`, index-aligned.
fn remapped(docs: &[RetrospectiveProvenance], execs: &[u64]) -> Vec<RetrospectiveProvenance> {
    docs.iter()
        .zip(execs)
        .map(|(d, &e)| {
            let mut d = d.clone();
            d.exec = ExecId(e);
            d
        })
        .collect()
}

// ---- union merge ---------------------------------------------------------

/// The gather-side union operator: exactly what the coordinator does to
/// per-shard partials of a flat query.
fn union(a: Vec<RunRef>, b: Vec<RunRef>) -> Vec<RunRef> {
    sort_runs(a.into_iter().chain(b).collect())
}

#[test]
fn union_merge_is_commutative_associative_and_duplicate_free() {
    let docs = corpus();
    let mut plain = GraphStore::new();
    let sharded = ShardedStore::new(4, GraphStore::new);
    for d in &docs {
        plain.ingest(d);
        sharded.ingest_shared(d);
    }

    let mut rng = Lcg::new(0xDECAF);
    for &h in &probe_digests(&docs) {
        let partials: Vec<Vec<RunRef>> = (0..sharded.shard_count())
            .map(|i| sharded.shard(i).generators(h))
            .collect();
        let canonical = sort_runs(plain.generators(h));

        // Gather in shard order.
        let forward = partials.iter().cloned().fold(Vec::new(), union);
        assert_eq!(forward, canonical, "forward gather of generators({h:016x})");
        assert_eq!(
            sharded.generators(h),
            canonical,
            "scatter-gather generators({h:016x})"
        );

        // Duplicate-free: strictly increasing once sorted.
        assert!(
            forward.windows(2).all(|w| w[0] < w[1]),
            "merged generators({h:016x}) contain a duplicate"
        );

        // Commutative: any shard permutation gathers to the same answer.
        for _ in 0..8 {
            let mut order: Vec<usize> = (0..partials.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.below(i + 1));
            }
            let shuffled = order
                .iter()
                .map(|&i| partials[i].clone())
                .fold(Vec::new(), union);
            assert_eq!(
                shuffled, canonical,
                "gather order changed generators({h:016x})"
            );
        }

        // Associative: ((a∪b)∪(c∪d)) == (a∪(b∪(c∪d))).
        let [a, b, c, d] = [
            partials[0].clone(),
            partials[1].clone(),
            partials[2].clone(),
            partials[3].clone(),
        ];
        let paired = union(union(a.clone(), b.clone()), union(c.clone(), d.clone()));
        let nested = union(a, union(b, union(c, d)));
        assert_eq!(
            paired, nested,
            "association grouping changed generators({h:016x})"
        );
        assert_eq!(paired, canonical);
    }
}

// ---- count merge ---------------------------------------------------------

#[test]
fn count_merge_equals_the_unsharded_count() {
    let docs = corpus();
    let mut plain = GraphStore::new();
    for d in &docs {
        plain.ingest(d);
    }

    // Store surface: the sum of per-shard counts is the unsharded count,
    // for every shard width.
    for shards in [2usize, 3, 4, 7] {
        let sharded = ShardedStore::new(shards, GraphStore::new);
        for d in &docs {
            sharded.ingest_shared(d);
        }
        let per_shard: Vec<usize> = (0..shards).map(|i| sharded.shard(i).run_count()).collect();
        assert_eq!(
            per_shard.iter().sum::<usize>(),
            plain.run_count(),
            "{shards} shards: per-shard run counts must sum to the unsharded count"
        );
        assert_eq!(sharded.run_count(), plain.run_count(), "{shards} shards");
        assert_eq!(
            sharded.runs_per_module(),
            plain.runs_per_module(),
            "{shards} shards: per-module counts"
        );
    }

    // PQL surface: `count` answers agree between the single engine and
    // scatter-gather engines of both widths.
    let mut engine = PqlEngine::new();
    let mut shardeds = vec![ShardedEngine::new(2), ShardedEngine::new(4)];
    for d in &docs {
        engine.ingest(d);
        for se in &mut shardeds {
            se.ingest(d);
        }
    }
    for q in [
        "count runs",
        "count runs where status = succeeded",
        "count runs where module contains load",
        "count runs where attempts = 1",
    ] {
        let want = engine.eval(q).expect("reference count evaluates");
        for se in &shardeds {
            assert_eq!(se.eval(q).expect("sharded count evaluates"), want, "{q}");
        }
    }
}

// ---- closure-frontier exchange -------------------------------------------

#[test]
fn exchange_fixpoint_matches_single_store_under_forced_assignments() {
    let shards = 3usize;
    let base = corpus();
    let n = base.len();

    let mut rng = Lcg::new(0x51AD);
    let mut random_execs: Vec<u64> = Vec::new();
    while random_execs.len() < n {
        let e = rng.next() % 1_000_000;
        if !random_execs.contains(&e) {
            random_execs.push(e);
        }
    }
    let assignments: Vec<(&str, Vec<u64>)> = vec![
        ("random", random_execs),
        ("all-in-one-shard", execs_with_routes(shards, |_| 0, n)),
        ("round-robin", execs_with_routes(shards, |i| i % shards, n)),
    ];

    for (name, execs) in assignments {
        let docs = remapped(&base, &execs);
        let mut plain = GraphStore::new();
        let sharded = ShardedStore::new(shards, GraphStore::new);
        for d in &docs {
            plain.ingest(d);
            sharded.ingest_shared(d);
        }

        // The forced placement actually held.
        match name {
            "all-in-one-shard" => assert_eq!(
                sharded.generations(),
                vec![n as u64, 0, 0],
                "every document must land on shard 0"
            ),
            "round-robin" => assert_eq!(
                sharded.generations(),
                vec![2, 2, 2],
                "documents must alternate across the three shards"
            ),
            _ => {}
        }

        let digests = probe_digests(&docs);
        for &h in &digests {
            for upstream in [true, false] {
                let got = sharded.exchange(&[h], upstream);
                let want = plain.expand_frontier(&[h], upstream);
                assert_eq!(
                    sort_runs(got.runs),
                    sort_runs(want.runs),
                    "{name}: exchange runs({h:016x}, upstream={upstream})"
                );
                assert_eq!(
                    sort_artifacts(got.artifacts),
                    sort_artifacts(want.artifacts),
                    "{name}: exchange artifacts({h:016x}, upstream={upstream})"
                );
            }
            // The canned closure queries ride on the same fixpoint.
            assert_eq!(
                sharded.lineage_runs(h),
                sort_runs(plain.lineage_runs(h)),
                "{name}: lineage({h:016x})"
            );
            assert_eq!(
                sharded.derived_artifacts(h),
                sort_artifacts(plain.derived_artifacts(h)),
                "{name}: impact({h:016x})"
            );
        }

        // Multi-seed frontier: the whole digest pool at once.
        let got = sharded.exchange(&digests, true);
        let want = plain.expand_frontier(&digests, true);
        assert_eq!(
            sort_runs(got.runs),
            sort_runs(want.runs),
            "{name}: pooled runs"
        );
        assert_eq!(
            sort_artifacts(got.artifacts),
            sort_artifacts(want.artifacts),
            "{name}: pooled artifacts"
        );
    }
}

// ---- concurrency stress ---------------------------------------------------

/// Writers race documents into their shards while readers run
/// scatter-gather closures mid-ingest. Afterwards: zero lost writes,
/// exact per-shard generation accounting, answers identical to the
/// single-threaded reference. Mid-ingest closures must stay *monotone* —
/// a subset of the final closure — since provenance only accretes.
#[test]
fn concurrent_shard_ingest_and_scatter_gather_lose_no_writes() {
    let threads = stress_threads();
    let shards = 4usize;
    // Round-robin placement gives a known per-shard document count, so
    // generation accounting is exact, not just conserved in total.
    let docs = remapped(&corpus(), &execs_with_routes(shards, |i| i % shards, 6));

    let mut plain = GraphStore::new();
    for d in &docs {
        plain.ingest(d);
    }
    let probes = probe_digests(&docs);
    // Final closures, precomputed per (probe, direction): the bound every
    // mid-ingest answer must stay within.
    let full: Vec<(u64, bool, BTreeSet<RunRef>)> = probes
        .iter()
        .flat_map(|&h| {
            [true, false].map(|up| {
                let fr = plain.expand_frontier(&[h], up);
                (h, up, fr.runs.into_iter().collect::<BTreeSet<_>>())
            })
        })
        .collect();

    let sharded = ShardedStore::new(shards, GraphStore::new);
    let writers = (threads / 2).max(2);
    let readers = (threads - writers).max(1);
    std::thread::scope(|scope| {
        for w in 0..writers {
            let sharded = &sharded;
            let docs = &docs;
            scope.spawn(move || {
                for (i, d) in docs.iter().enumerate() {
                    if i % writers == w {
                        sharded.ingest_shared(d);
                    }
                }
            });
        }
        for r in 0..readers {
            let sharded = &sharded;
            let full = &full;
            let total = docs.len() as u64;
            scope.spawn(move || {
                let mut last_gen = 0u64;
                for k in 0..40 {
                    let gen = sharded.generation();
                    assert!(gen >= last_gen, "combined generation went backwards");
                    assert!(gen <= total, "generation overcounts the corpus");
                    last_gen = gen;
                    let (h, up, bound) = &full[(r + k) % full.len()];
                    let fr = sharded.exchange(&[*h], *up);
                    for run in &fr.runs {
                        assert!(
                            bound.contains(run),
                            "mid-ingest closure of {h:016x} reached a run \
                             outside the final closure"
                        );
                    }
                }
            });
        }
    });

    assert_eq!(sharded.generation(), docs.len() as u64, "lost write");
    assert_eq!(
        sharded.generations(),
        vec![2, 2, 1, 1],
        "exact per-shard generation accounting: six documents round-robin \
         over four shards"
    );
    assert_eq!(sharded.run_count(), plain.run_count());
    for &h in &probes {
        assert_eq!(sharded.generators(h), sort_runs(plain.generators(h)));
        assert_eq!(sharded.lineage_runs(h), sort_runs(plain.lineage_runs(h)));
        assert_eq!(
            sharded.derived_artifacts(h),
            sort_artifacts(plain.derived_artifacts(h))
        );
    }
}

/// The same discipline one level up: a [`ShardedEngine`] behind a
/// read-write lock (the server's arrangement), writers ingesting while
/// readers evaluate PQL scatter-gather. Result order follows ingest
/// order, and racing writers serialize nondeterministically — so each
/// writer logs its document *while still holding the write guard*, and
/// the reference engine replays that exact serialization. Final answers
/// must then match exactly, order included.
#[test]
fn racing_engine_ingest_and_queries_match_the_single_threaded_reference() {
    use std::sync::{Mutex, RwLock};

    let threads = stress_threads();
    let docs = remapped(&corpus(), &[9_000, 9_001, 9_002, 9_003, 9_004, 9_005]);

    let probe = probe_digests(&docs)[0];
    let queries = [
        "count runs".to_string(),
        "count runs where status = succeeded".to_string(),
        format!("lineage of artifact {probe:016x}"),
        format!("impact of artifact {probe:016x}"),
        format!("lineage of artifact {probe:016x} where status = succeeded"),
        "list runs where module contains load".to_string(),
    ];
    let total_runs: usize = docs.iter().map(|d| d.runs.len()).sum();

    let shared = RwLock::new(ShardedEngine::new(4));
    let ingest_log: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let writers = (threads / 2).max(2);
    let readers = (threads - writers).max(1);
    std::thread::scope(|scope| {
        for w in 0..writers {
            let shared = &shared;
            let ingest_log = &ingest_log;
            let docs = &docs;
            scope.spawn(move || {
                for (i, d) in docs.iter().enumerate() {
                    if i % writers == w {
                        let mut guard = shared.write().expect("engine lock");
                        guard.ingest(d);
                        // Logged under the write guard: the log order IS
                        // the engine's ingest order.
                        ingest_log.lock().expect("log lock").push(i);
                    }
                }
            });
        }
        for _ in 0..readers {
            let shared = &shared;
            let total = docs.len() as u64;
            scope.spawn(move || {
                let mut last_gen = 0u64;
                for _ in 0..40 {
                    let guard = shared.read().expect("engine lock");
                    let gen = guard.generation();
                    assert!(gen >= last_gen, "engine generation went backwards");
                    assert!(gen <= total, "engine generation overcounts");
                    last_gen = gen;
                    match guard.eval("count runs").expect("count evaluates") {
                        QueryResult::Count(n) => {
                            assert!(n <= total_runs, "mid-ingest count exceeds the final corpus")
                        }
                        other => panic!("count runs returned {other:?}"),
                    }
                }
            });
        }
    });

    let engine = shared.into_inner().expect("engine lock");
    assert_eq!(engine.generation(), docs.len() as u64, "lost write");

    // Every document was logged exactly once.
    let order = ingest_log.into_inner().expect("log lock");
    let mut seen = order.clone();
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..docs.len()).collect::<Vec<_>>(),
        "lost or doubled write"
    );

    // Replay the racing serialization single-threaded; answers must
    // match exactly, order included.
    let mut reference = PqlEngine::new();
    for &i in &order {
        reference.ingest(&docs[i]);
    }
    for q in &queries {
        assert_eq!(
            engine.eval(q).expect("sharded query evaluates"),
            reference.eval(q).expect("reference query evaluates"),
            "{q}"
        );
    }
}
