//! E8 bench: version-tree materialization with and without snapshot
//! caching, and version diffing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_evolution::scenario::evolution_history;

fn bench_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolution/materialize");
    for depth in [32usize, 256, 1024] {
        let (plain, tip_p) = evolution_history(1, depth, 0);
        let (snap, tip_s) = evolution_history(1, depth, 16);
        group.bench_with_input(
            BenchmarkId::new("replay", depth),
            &(plain, tip_p),
            |b, (t, tip)| b.iter(|| t.materialize(*tip).expect("ok").node_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot16", depth),
            &(snap, tip_s),
            |b, (t, tip)| b.iter(|| t.materialize(*tip).expect("ok").node_count()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("evolution/diff");
    let (tree, tip) = evolution_history(2, 128, 0);
    let mid = prov_evolution::VersionId(64);
    group.bench_function("diff_v64_vs_tip", |b| {
        b.iter(|| tree.diff(mid, tip).expect("diff").change_count())
    });
    group.bench_function("common_ancestor", |b| {
        b.iter(|| tree.common_ancestor(mid, tip))
    });
    group.finish();
}

criterion_group!(benches, bench_evolution);
criterion_main!(benches);
