//! The backend-neutral query surface.
//!
//! Every storage backend answers the same canned provenance queries so that
//! experiments compare storage *strategies*, not feature sets. The queries
//! are the tutorial's running examples: "who created this data product?",
//! "what was the process used to create it?", plus a flat aggregate (the
//! kind of query relational layouts are good at).

use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use wf_engine::ExecId;
use wf_model::NodeId;

/// A module run identified across executions.
pub type RunRef = (ExecId, NodeId);

/// What one shard-local closure expansion reached: every run pulled into
/// the closure and every *newly* discovered artifact (the seeds are
/// excluded). Both lists are unsorted and may repeat across successive
/// expansions — callers canonicalize with [`sort_runs`]/[`sort_artifacts`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frontier {
    /// Runs reached by the expansion.
    pub runs: Vec<RunRef>,
    /// Artifacts reached by the expansion, seeds excluded.
    pub artifacts: Vec<ArtifactHash>,
}

/// The canned query surface implemented by every backend.
pub trait ProvenanceStore {
    /// Backend name for reports.
    fn backend_name(&self) -> &'static str;

    /// The access recorder this backend bumps on its query paths (Q1–Q4).
    /// Ingest cost is deliberately not counted — the stats describe the
    /// cost of *answering* queries, not of building the store.
    fn stats(&self) -> &StoreStats;

    /// Load one execution's retrospective provenance.
    fn ingest(&mut self, retro: &RetrospectiveProvenance);

    /// Q1 — "who created this data product?": the runs that generated the
    /// artifact, across all ingested executions.
    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef>;

    /// Q2 — "what was the process used to create it?": every run in the
    /// artifact's transitive upstream closure, across executions (artifacts
    /// join on content hash).
    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef>;

    /// Q3 — downstream impact: every artifact transitively derived from
    /// this one.
    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash>;

    /// Multi-seed closure expansion, the scatter-gather primitive: from
    /// the seed artifacts, chase generating runs and their inputs
    /// (`upstream == true`) or consuming runs and their outputs
    /// (`upstream == false`) to a local fixpoint. Equivalent to
    /// [`ProvenanceStore::lineage_runs`]/[`ProvenanceStore::derived_artifacts`]
    /// generalized to a seed *set*, and additionally reporting the reached
    /// artifacts so a coordinator can re-seed sibling shards with the
    /// cross-shard joint artifacts.
    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier;

    /// Replace this store's stats recorder with a (cheaply cloned) handle
    /// onto `stats`, so several stores bump one shared counter block. The
    /// sharded store adopts one recorder into every shard, making
    /// [`ProvenanceStore::stats`] totals sum exactly across shards.
    fn adopt_stats(&mut self, stats: &StoreStats);

    /// Q4 — flat aggregate: how many runs of each module identity exist?
    /// Returns (identity, count) sorted by identity.
    fn runs_per_module(&self) -> Vec<(String, usize)>;

    /// Total module runs ingested.
    fn run_count(&self) -> usize;

    /// Switch the backend between its naive query paths (the default) and
    /// its index-accelerated paths. Both modes must produce identical
    /// results; only the access pattern (and therefore the `StoreStats`
    /// profile) may differ. Backends without an accelerated path ignore
    /// the switch.
    fn set_optimized(&self, _on: bool) {}

    /// Whether the index-accelerated paths are currently selected.
    fn optimized(&self) -> bool {
        false
    }

    /// Approximate resident size in bytes (for the storage-footprint
    /// comparison; estimates follow each backend's actual layout).
    fn approx_bytes(&self) -> usize;
}

/// Shared test/benchmark helper: canonical sort for run refs.
pub fn sort_runs(mut runs: Vec<RunRef>) -> Vec<RunRef> {
    runs.sort();
    runs.dedup();
    runs
}

/// Shared test/benchmark helper: canonical sort for artifact sets.
pub fn sort_artifacts(mut arts: Vec<ArtifactHash>) -> Vec<ArtifactHash> {
    arts.sort_unstable();
    arts.dedup();
    arts
}
