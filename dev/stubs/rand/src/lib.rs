//! Offline typecheck stub for `rand` (the slice of API this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait RngExt {
    fn random_range<T>(&mut self, range: std::ops::Range<T>) -> T {
        let _ = range;
        unimplemented!("rand stub")
    }

    fn random_bool(&mut self, _p: f64) -> bool {
        unimplemented!("rand stub")
    }
}

pub mod rngs {
    pub struct StdRng(u64);

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(state)
        }
    }

    impl super::RngExt for StdRng {}
}
