//! The server's durability layer: WAL entry codec and recovery reports.
//!
//! Every acked ingest is appended to the namespace's write-ahead log
//! (`prov_store::wal::NamespaceWal`) *before* it is applied to the
//! in-memory stores, under the same engine write lock — the ack a client
//! receives therefore certifies a durable record. On restart,
//! [`crate::ProvServer::recover`] replays each namespace directory into
//! fresh stores and restores the generation counter, so query-cache
//! staleness semantics survive the crash.
//!
//! WAL entries are JSON envelopes over the workspace's dependency-free
//! wire codec (`crate::wire`), not serde: `{"request_id": ..., "seq": N,
//! "retro": {...}}`. The request id (when the client supplied one) makes
//! ingest idempotent — retries after an ambiguous failure are answered
//! from the dedupe cache instead of double-applying — and the dedupe set
//! itself is rebuilt from the WAL on recovery. The sequence number is the
//! namespace generation the entry produced: with `shards=N` each shard
//! owns its own WAL, and recovery merges the per-shard streams back into
//! global ingest order by `seq` before replaying.

use crate::error::ServerError;
use crate::wire;
use prov_core::model::RetrospectiveProvenance;
use prov_store::wal::FsyncPolicy;
use prov_store::IoFaultPlan;
use prov_telemetry::{parse_json, JsonValue};
use std::path::PathBuf;

/// How many consecutive WAL append failures flip a namespace into
/// read-only degraded mode.
pub const READ_ONLY_AFTER: u64 = 3;

/// Durability knobs; present in [`crate::ServerConfig`] when the server
/// persists namespaces.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory; each namespace owns `data_dir/<name>/`.
    pub data_dir: PathBuf,
    /// When WAL appends are forced to disk.
    pub fsync: FsyncPolicy,
    /// Auto-checkpoint (snapshot + compaction) once a namespace's live
    /// tail holds this many records; 0 disables auto-checkpointing.
    pub checkpoint_every: u64,
    /// Deterministic I/O faults armed on every namespace WAL (tests only).
    pub fault_plan: Option<IoFaultPlan>,
}

impl DurabilityConfig {
    /// Durability rooted at `data_dir` with the batch fsync default and
    /// checkpoints every 256 records.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::batch_default(),
            checkpoint_every: 256,
            fault_plan: None,
        }
    }

    /// Set the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the auto-checkpoint threshold (0 = never).
    pub fn checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }

    /// Arm every namespace WAL with `plan`.
    pub fn fault_plan(mut self, plan: IoFaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// What recovery found in one namespace directory.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The namespace recovered.
    pub namespace: String,
    /// Records replayed from the compacted snapshot.
    pub snapshot_records: u64,
    /// Records replayed from the live WAL tail.
    pub wal_records: u64,
    /// Generation counter restored into the engine.
    pub generation: u64,
    /// Was a torn tail truncated in either file?
    pub truncated: bool,
    /// Scan errors from the WAL layer (torn/corrupt tails, reported).
    pub tail_errors: Vec<String>,
    /// Records whose bytes were valid but whose JSON envelope was not
    /// (skipped, reported — never panicked on).
    pub codec_errors: Vec<String>,
}

impl RecoveryReport {
    /// One-line human-readable summary.
    pub fn render(&self) -> String {
        let mut line = format!(
            "namespace '{}': {} snapshot + {} wal records, generation {}",
            self.namespace, self.snapshot_records, self.wal_records, self.generation
        );
        if self.truncated {
            line.push_str(" (torn tail truncated)");
        }
        for e in self.tail_errors.iter().chain(&self.codec_errors) {
            line.push_str(&format!("\n  - {e}"));
        }
        line
    }
}

/// Encode one WAL entry: the provenance document, the client's request id
/// (when supplied), and the namespace-global sequence number the entry
/// produced (the post-ingest generation).
pub fn encode_entry(
    retro: &RetrospectiveProvenance,
    request_id: Option<&str>,
    seq: u64,
) -> Vec<u8> {
    let mut fields: Vec<(String, JsonValue)> = Vec::with_capacity(3);
    if let Some(id) = request_id {
        fields.push(("request_id".to_string(), JsonValue::String(id.to_string())));
    }
    fields.push(("seq".to_string(), JsonValue::Number(seq as f64)));
    fields.push(("retro".to_string(), wire::retro_to_json(retro)));
    wire::render_json(&JsonValue::Object(fields.into_iter().collect())).into_bytes()
}

/// Decode one WAL entry back into the document, its request id, and its
/// global sequence number (`None` for records written before sequence
/// stamping; they sort before stamped records, in file order).
pub fn decode_entry(
    bytes: &[u8],
) -> Result<(RetrospectiveProvenance, Option<String>, Option<u64>), ServerError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| ServerError::Durability(format!("wal entry is not UTF-8: {e}")))?;
    let v = parse_json(text)
        .map_err(|e| ServerError::Durability(format!("wal entry is not JSON: {e}")))?;
    let retro = v
        .get("retro")
        .ok_or_else(|| ServerError::Durability("wal entry missing 'retro'".into()))?;
    let retro = wire::retro_from_json(retro)
        .map_err(|e| ServerError::Durability(format!("wal entry document: {e}")))?;
    let request_id = v
        .get("request_id")
        .and_then(|r| r.as_str())
        .map(str::to_string);
    let seq = v.get("seq").and_then(JsonValue::as_u64);
    Ok((retro, request_id, seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn retro(seed: u64) -> RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        cap.take(r.exec).unwrap()
    }

    #[test]
    fn entries_round_trip_with_and_without_request_id() {
        let doc = retro(3);
        let bytes = encode_entry(&doc, Some("req-42"), 7);
        let (back, id, seq) = decode_entry(&bytes).unwrap();
        assert_eq!(back, doc);
        assert_eq!(id.as_deref(), Some("req-42"));
        assert_eq!(seq, Some(7));

        let bytes = encode_entry(&doc, None, 1);
        let (back, id, seq) = decode_entry(&bytes).unwrap();
        assert_eq!(back, doc);
        assert_eq!(id, None);
        assert_eq!(seq, Some(1));
    }

    #[test]
    fn legacy_entries_without_seq_still_decode() {
        let doc = retro(3);
        let mut fields = std::collections::BTreeMap::new();
        fields.insert("retro".to_string(), wire::retro_to_json(&doc));
        let bytes = wire::render_json(&JsonValue::Object(fields)).into_bytes();
        let (back, id, seq) = decode_entry(&bytes).unwrap();
        assert_eq!(back, doc);
        assert_eq!(id, None);
        assert_eq!(seq, None);
    }

    #[test]
    fn malformed_entries_are_errors_not_panics() {
        for bad in [&b"\xFF\xFE"[..], b"not json", b"{}", b"{\"retro\": 3}"] {
            assert!(decode_entry(bad).is_err(), "{bad:?}");
        }
    }
}
