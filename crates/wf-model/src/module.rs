//! Module kinds: the typed, versioned vocabulary a workflow is built from.
//!
//! A *module kind* is a definition — "Histogram, version 2, takes a grid and
//! an integer bin count, produces a table" — while a [`crate::Node`] is an
//! *instance* of a kind placed in a particular workflow with particular
//! parameter bindings. Kinds are versioned because module evolution is part
//! of workflow evolution provenance: a retrospective log must record exactly
//! which revision of a module computed an artifact.

use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declaration of one input or output port on a module kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortSpec {
    /// Port name, unique among the ports on the same side of the module.
    pub name: String,
    /// Type of the values flowing through the port.
    pub dtype: DataType,
    /// For input ports: must the port be connected for the workflow to run?
    pub required: bool,
    /// Human-readable description.
    pub doc: String,
}

impl PortSpec {
    /// A required port.
    pub fn required(name: &str, dtype: DataType) -> Self {
        Self {
            name: name.to_string(),
            dtype,
            required: true,
            doc: String::new(),
        }
    }

    /// An optional port.
    pub fn optional(name: &str, dtype: DataType) -> Self {
        Self {
            required: false,
            ..Self::required(name, dtype)
        }
    }

    /// Attach documentation to the port.
    pub fn with_doc(mut self, doc: &str) -> Self {
        self.doc = doc.to_string();
        self
    }
}

/// A parameter value: the scalar knobs of a module instance.
///
/// Parameters are distinct from ports: they are bound in the *specification*
/// (prospective provenance) rather than flowing at runtime, which is why
/// parameter changes are first-class edit actions in evolution provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Boolean parameter.
    Bool(bool),
    /// Integer parameter.
    Int(i64),
    /// Float parameter.
    Float(f64),
    /// Text parameter.
    Text(String),
}

impl ParamValue {
    /// Stable display form used in hashes, logs, and diffs.
    pub fn render(&self) -> String {
        match self {
            ParamValue::Bool(b) => b.to_string(),
            ParamValue::Int(i) => i.to_string(),
            ParamValue::Float(x) => format!("{x:?}"),
            ParamValue::Text(s) => s.clone(),
        }
    }

    /// The float value, widening integers; `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(x) => Some(*x),
            ParamValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The integer value if this is an [`ParamValue::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text value if this is a [`ParamValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ParamValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value if this is a [`ParamValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Text(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Text(v)
    }
}

/// Declaration of one parameter on a module kind, with its default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name, unique within the kind.
    pub name: String,
    /// Default value, also fixing the parameter's type.
    pub default: ParamValue,
    /// Human-readable description.
    pub doc: String,
}

impl ParamSpec {
    /// A parameter with a default value.
    pub fn new(name: &str, default: impl Into<ParamValue>) -> Self {
        Self {
            name: name.to_string(),
            default: default.into(),
            doc: String::new(),
        }
    }

    /// Attach documentation to the parameter.
    pub fn with_doc(mut self, doc: &str) -> Self {
        self.doc = doc.to_string();
        self
    }
}

/// A versioned module definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleKind {
    /// Kind name (e.g. `"Histogram"`), unique together with `version`.
    pub name: String,
    /// Revision of the definition.
    pub version: u32,
    /// Grouping used by catalogs and UIs (e.g. `"visualization"`).
    pub category: String,
    /// Human-readable description.
    pub doc: String,
    /// Input ports.
    pub inputs: Vec<PortSpec>,
    /// Output ports.
    pub outputs: Vec<PortSpec>,
    /// Parameters.
    pub params: Vec<ParamSpec>,
}

impl ModuleKind {
    /// Start a new kind at version 1 with no ports or parameters.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            version: 1,
            category: "general".to_string(),
            doc: String::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Set the version.
    pub fn version(mut self, v: u32) -> Self {
        self.version = v;
        self
    }

    /// Set the category.
    pub fn category(mut self, c: &str) -> Self {
        self.category = c.to_string();
        self
    }

    /// Set the documentation string.
    pub fn doc(mut self, d: &str) -> Self {
        self.doc = d.to_string();
        self
    }

    /// Add an input port.
    pub fn input(mut self, port: PortSpec) -> Self {
        self.inputs.push(port);
        self
    }

    /// Add an output port.
    pub fn output(mut self, port: PortSpec) -> Self {
        self.outputs.push(port);
        self
    }

    /// Add a parameter.
    pub fn param(mut self, p: ParamSpec) -> Self {
        self.params.push(p);
        self
    }

    /// Look up an input port by name.
    pub fn input_port(&self, name: &str) -> Option<&PortSpec> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Look up an output port by name.
    pub fn output_port(&self, name: &str) -> Option<&PortSpec> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Look up a parameter by name.
    pub fn param_spec(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// `name@version`, the canonical identity used in provenance records.
    pub fn identity(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn histogram() -> ModuleKind {
        ModuleKind::new("Histogram")
            .version(2)
            .category("analysis")
            .doc("Bin scalar values of a grid into a frequency table")
            .input(PortSpec::required("data", DataType::Grid))
            .output(PortSpec::required("table", DataType::Table))
            .param(ParamSpec::new("bins", 64i64).with_doc("number of bins"))
    }

    #[test]
    fn builder_accumulates_ports_and_params() {
        let k = histogram();
        assert_eq!(k.identity(), "Histogram@2");
        assert_eq!(k.inputs.len(), 1);
        assert_eq!(k.outputs.len(), 1);
        assert_eq!(k.param_spec("bins").unwrap().default, ParamValue::Int(64));
        assert!(k.input_port("data").is_some());
        assert!(k.input_port("nope").is_none());
        assert!(k.output_port("table").is_some());
    }

    #[test]
    fn param_value_conversions() {
        assert_eq!(ParamValue::from(3i64).as_i64(), Some(3));
        assert_eq!(ParamValue::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(ParamValue::from(7i64).as_f64(), Some(7.0));
        assert_eq!(ParamValue::from("x").as_text(), Some("x"));
        assert_eq!(ParamValue::from(true).as_bool(), Some(true));
        assert_eq!(ParamValue::from("x").as_i64(), None);
    }

    #[test]
    fn param_render_is_stable_for_floats() {
        assert_eq!(ParamValue::Float(0.1).render(), "0.1");
        assert_eq!(ParamValue::Float(1.0).render(), "1.0");
    }

    #[test]
    fn kind_roundtrips_serde() {
        let k = histogram();
        let s = serde_json::to_string(&k).unwrap();
        let back: ModuleKind = serde_json::from_str(&s).unwrap();
        assert_eq!(back, k);
    }
}
