//! Structural diffs between workflow versions.
//!
//! §2.3: provenance lets users "compare and understand differences between
//! workflows". Within one version tree, node identifiers are stable, so
//! diffing is an id-aligned comparison; across *unrelated* workflows the
//! [`crate::analogy`] matcher supplies the alignment first.

use std::collections::BTreeSet;
use wf_model::workflow::Connection;
use wf_model::{NodeId, ParamValue, Workflow};

/// The structural difference between two workflows with shared node ids.
#[derive(Debug, Clone, Default)]
pub struct WorkflowDiff {
    /// Node ids present in both (same id; module may differ — see
    /// `module_changes`).
    pub matched: Vec<NodeId>,
    /// Nodes only in the left workflow.
    pub only_left: Vec<NodeId>,
    /// Nodes only in the right workflow.
    pub only_right: Vec<NodeId>,
    /// `(node, param, left value, right value)` for parameter differences
    /// on matched nodes (`None` = unset on that side).
    pub param_changes: Vec<(NodeId, String, Option<ParamValue>, Option<ParamValue>)>,
    /// Matched nodes whose module identity changed: `(node, left, right)`.
    pub module_changes: Vec<(NodeId, String, String)>,
    /// Connections only in the left workflow.
    pub conns_only_left: Vec<Connection>,
    /// Connections only in the right workflow.
    pub conns_only_right: Vec<Connection>,
}

impl WorkflowDiff {
    /// Are the two workflows structurally identical?
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty()
            && self.only_right.is_empty()
            && self.param_changes.is_empty()
            && self.module_changes.is_empty()
            && self.conns_only_left.is_empty()
            && self.conns_only_right.is_empty()
    }

    /// Total number of elementary differences.
    pub fn change_count(&self) -> usize {
        self.only_left.len()
            + self.only_right.len()
            + self.param_changes.len()
            + self.module_changes.len()
            + self.conns_only_left.len()
            + self.conns_only_right.len()
    }

    /// Render one change per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for n in &self.only_left {
            s.push_str(&format!("- node {n}\n"));
        }
        for n in &self.only_right {
            s.push_str(&format!("+ node {n}\n"));
        }
        for (n, l, r) in &self.module_changes {
            s.push_str(&format!("~ node {n}: {l} -> {r}\n"));
        }
        for (n, p, l, r) in &self.param_changes {
            s.push_str(&format!(
                "~ param {n}.{p}: {} -> {}\n",
                l.as_ref()
                    .map(|v| v.render())
                    .unwrap_or_else(|| "<unset>".into()),
                r.as_ref()
                    .map(|v| v.render())
                    .unwrap_or_else(|| "<unset>".into()),
            ));
        }
        for c in &self.conns_only_left {
            s.push_str(&format!(
                "- conn {}.{} -> {}.{}\n",
                c.from.node, c.from.port, c.to.node, c.to.port
            ));
        }
        for c in &self.conns_only_right {
            s.push_str(&format!(
                "+ conn {}.{} -> {}.{}\n",
                c.from.node, c.from.port, c.to.node, c.to.port
            ));
        }
        s
    }
}

/// Diff two workflows whose node ids share an identifier space (versions of
/// one evolving workflow).
pub fn diff_workflows(left: &Workflow, right: &Workflow) -> WorkflowDiff {
    let mut diff = WorkflowDiff::default();
    for (id, lnode) in &left.nodes {
        match right.nodes.get(id) {
            None => diff.only_left.push(*id),
            Some(rnode) => {
                diff.matched.push(*id);
                if lnode.kind_identity() != rnode.kind_identity() {
                    diff.module_changes
                        .push((*id, lnode.kind_identity(), rnode.kind_identity()));
                }
                let params: BTreeSet<&String> =
                    lnode.params.keys().chain(rnode.params.keys()).collect();
                for p in params {
                    let l = lnode.params.get(p);
                    let r = rnode.params.get(p);
                    if l != r {
                        diff.param_changes
                            .push((*id, p.clone(), l.cloned(), r.cloned()));
                    }
                }
            }
        }
    }
    for id in right.nodes.keys() {
        if !left.nodes.contains_key(id) {
            diff.only_right.push(*id);
        }
    }
    // Connections compared by endpoints (ids may differ across branches).
    let key = |c: &Connection| {
        (
            c.from.node,
            c.from.port.clone(),
            c.to.node,
            c.to.port.clone(),
        )
    };
    let rset: BTreeSet<_> = right.conns.values().map(key).collect();
    let lset: BTreeSet<_> = left.conns.values().map(key).collect();
    for c in left.conns.values() {
        if !rset.contains(&key(c)) {
            diff.conns_only_left.push(c.clone());
        }
    }
    for c in right.conns.values() {
        if !lset.contains(&key(c)) {
            diff.conns_only_right.push(c.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{Endpoint, WorkflowBuilder};

    fn base() -> Workflow {
        let mut b = WorkflowBuilder::new(1, "base");
        let l = b.add("LoadVolume");
        let i = b.add("Isosurface");
        let r = b.add("RenderMesh");
        b.connect(l, "grid", i, "data")
            .connect(i, "mesh", r, "mesh");
        b.param(i, "isovalue", 0.5f64);
        b.build()
    }

    #[test]
    fn identical_workflows_diff_empty() {
        let a = base();
        let d = diff_workflows(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.change_count(), 0);
        assert_eq!(d.matched.len(), 3);
    }

    #[test]
    fn added_node_and_rewiring_detected() {
        let a = base();
        let mut b = a.clone();
        // Insert SmoothMesh between Isosurface and RenderMesh.
        let iso = b
            .nodes
            .values()
            .find(|n| n.module == "Isosurface")
            .unwrap()
            .id;
        let render = b
            .nodes
            .values()
            .find(|n| n.module == "RenderMesh")
            .unwrap()
            .id;
        let old_conn = b
            .conns
            .values()
            .find(|c| c.from.node == iso && c.to.node == render)
            .unwrap()
            .id;
        b.remove_connection(old_conn).unwrap();
        let smooth = b.add_node("SmoothMesh", 1);
        b.connect(Endpoint::new(iso, "mesh"), Endpoint::new(smooth, "mesh"))
            .unwrap();
        b.connect(Endpoint::new(smooth, "mesh"), Endpoint::new(render, "mesh"))
            .unwrap();
        let d = diff_workflows(&a, &b);
        assert_eq!(d.only_right, vec![smooth]);
        assert!(d.only_left.is_empty());
        assert_eq!(d.conns_only_left.len(), 1);
        assert_eq!(d.conns_only_right.len(), 2);
        let rendered = d.render();
        assert!(rendered.contains("+ node"));
        assert!(rendered.contains("- conn"));
    }

    #[test]
    fn param_change_detected_both_directions() {
        let a = base();
        let mut b = a.clone();
        let iso = b
            .nodes
            .values()
            .find(|n| n.module == "Isosurface")
            .unwrap()
            .id;
        b.set_param(iso, "isovalue", 0.8f64.into()).unwrap();
        b.set_param(iso, "extra", 1i64.into()).unwrap();
        let d = diff_workflows(&a, &b);
        assert_eq!(d.param_changes.len(), 2);
        let iso_change = d
            .param_changes
            .iter()
            .find(|(_, p, ..)| p == "isovalue")
            .unwrap();
        assert_eq!(iso_change.2, Some(ParamValue::Float(0.5)));
        assert_eq!(iso_change.3, Some(ParamValue::Float(0.8)));
        let extra = d
            .param_changes
            .iter()
            .find(|(_, p, ..)| p == "extra")
            .unwrap();
        assert_eq!(extra.2, None);
    }

    #[test]
    fn module_revision_detected() {
        let a = base();
        let mut b = a.clone();
        let iso = b
            .nodes
            .values()
            .find(|n| n.module == "Isosurface")
            .unwrap()
            .id;
        b.nodes.get_mut(&iso).unwrap().version = 2;
        let d = diff_workflows(&a, &b);
        assert_eq!(d.module_changes.len(), 1);
        assert_eq!(d.module_changes[0].1, "Isosurface@1");
        assert_eq!(d.module_changes[0].2, "Isosurface@2");
    }

    #[test]
    fn deleted_node_detected() {
        let a = base();
        let mut b = a.clone();
        let render = b
            .nodes
            .values()
            .find(|n| n.module == "RenderMesh")
            .unwrap()
            .id;
        b.remove_node(render).unwrap();
        let d = diff_workflows(&a, &b);
        assert_eq!(d.only_left, vec![render]);
        assert_eq!(d.conns_only_left.len(), 1);
    }
}
