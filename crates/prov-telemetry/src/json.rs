//! A minimal, dependency-free JSON reader.
//!
//! Exporters in this crate hand-render their JSON; this parser closes the
//! loop so traces can be validated and span logs re-ingested without a
//! JSON library on the runtime path. It accepts standard JSON (RFC 8259):
//! objects, arrays, strings with escapes, numbers, booleans, null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved; duplicate keys keep the
    /// last value.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Element of an array, by index.
    pub fn at(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(v) => v.get(idx),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // A high surrogate is only valid as the first
                            // half of an immediately following \uDC00..DFFF
                            // low surrogate; anything else (lone high, lone
                            // low, or a second escape outside the low range)
                            // is malformed — decoding it anyway would
                            // fabricate an unrelated code point.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate in \\u escape"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(
                                        self.err("high surrogate not followed by low surrogate")
                                    );
                                }
                                char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate in \\u escape"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escape a string for embedding in hand-rendered JSON (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -3.5e2 ").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"traceEvents":[{"name":"x","ts":1.5,"args":{"ok":true}}],"n":null}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("x"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            events[0].get("args").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("é😀".into())
        );
    }

    #[test]
    fn surrogate_pairs_round_trip_across_planes() {
        // BMP edge, first astral, emoji, last valid scalar.
        for s in ["\u{FFFF}", "\u{10000}", "😀", "𝕊", "\u{10FFFF}"] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc).unwrap(), JsonValue::String(s.into()));
            // The explicit \uXXXX pair spelling decodes to the same scalar.
            let mut escaped = String::from("\"");
            for u in s.encode_utf16().collect::<Vec<u16>>() {
                escaped.push_str(&format!("\\u{u:04x}"));
            }
            escaped.push('"');
            assert_eq!(parse(&escaped).unwrap(), JsonValue::String(s.into()));
        }
    }

    #[test]
    fn lone_and_mismatched_surrogates_are_rejected() {
        for doc in [
            "\"\\ud83d\"",        // lone high at end of string
            "\"\\ud83d abc\"",    // lone high followed by plain text
            "\"\\ud83d\\n\"",     // lone high followed by another escape
            "\"\\ude00\"",        // lone low
            "\"\\ude00\\ud83d\"", // reversed pair
            "\"\\ud83d\\ud83d\"", // high followed by high
            "\"\\ud83d\\u0041\"", // high followed by non-surrogate (the
            // old decoder fabricated U+1F441 here)
            "\"\\ud800\\udbff\"", // high followed by high (range edges)
        ] {
            let e = parse(doc).unwrap_err();
            assert!(
                e.message.contains("surrogate"),
                "{doc} must fail with a surrogate error, got: {e}"
            );
        }
    }

    #[test]
    fn escape_then_parse_round_trips() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\\ é😀 \u{0001}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), JsonValue::String(nasty.into()));
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
