//! Plan/eval equivalence properties: on randomly shaped provenance
//! graphs, EXPLAIN ANALYZE must produce exactly the result of the
//! un-instrumented evaluator, its per-operator access deltas must
//! partition the engine's counted work, and row counts must be
//! internally consistent (root operator output == result cardinality,
//! closures monotone in their depth bound).

use proptest::prelude::*;
use provenance_workflows::prelude::*;
use wf_engine::synth::{layered_dag, LayeredSpec};

fn run_layered(depth: usize, width: usize, fan_in: usize, seed: u64) -> RetrospectiveProvenance {
    let (wf, _) = layered_dag(
        1,
        LayeredSpec {
            depth,
            width,
            fan_in,
            work: 1,
            seed,
        },
    );
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).expect("runs");
    cap.take(r.exec).expect("captured")
}

fn engine_over(retro: &RetrospectiveProvenance) -> PqlEngine {
    let mut e = PqlEngine::new();
    e.ingest(retro);
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn analyze_matches_eval_on_generated_graphs(
        depth in 1usize..5, width in 1usize..4, fan in 1usize..4, seed in 0u64..500
    ) {
        let retro = run_layered(depth, width, fan, seed);
        let e = engine_over(&retro);
        let anchors: Vec<u64> = retro.artifacts.keys().copied().take(3).collect();

        let mut queries = vec![
            "count runs".to_string(),
            "list runs".to_string(),
            "count runs where status = failed or status = succeeded".to_string(),
            "list artifacts".to_string(),
        ];
        for h in &anchors {
            queries.push(format!("lineage of artifact {h:016x}"));
            queries.push(format!("lineage of artifact {h:016x} depth 1"));
            queries.push(format!("impact of artifact {h:016x}"));
            queries.push(format!("impact of artifact {h:016x} where status = succeeded"));
        }
        if anchors.len() >= 2 {
            queries.push(format!(
                "paths from artifact {:016x} to artifact {:016x} max 6",
                anchors[0], anchors[1]
            ));
        }

        for q in &queries {
            let parsed = parse_pql(q).unwrap();
            let before = e.stats().snapshot();
            let analysis = analyze(&e, &parsed);
            let delta = e.stats().snapshot().delta(&before);
            let plain = e.eval_query(&parsed);
            match (analysis, plain) {
                (Ok(a), Ok(p)) => {
                    // Result sets are identical, including row order.
                    prop_assert_eq!(&a.result, &p, "result diverges on '{}'", q);
                    // Per-operator access deltas partition the counted work.
                    prop_assert_eq!(a.total_accesses(), delta, "accesses diverge on '{}'", q);
                    // Root operator output is the result cardinality, and
                    // the annotated rendering agrees.
                    prop_assert_eq!(a.ops[0].rows_out, p.len(), "root rows_out on '{}'", q);
                    prop_assert_eq!(
                        a.render().lines().count(),
                        a.ops.len() + 1,
                        "one line per operator plus the summary on '{}'", q
                    );
                }
                (Err(ea), Err(ep)) => prop_assert_eq!(ea, ep, "errors diverge on '{}'", q),
                (a, p) => prop_assert!(
                    false,
                    "one side failed on '{}': analyze={:?} eval={:?}", q, a.map(|x| x.result), p
                ),
            }
        }
    }

    #[test]
    fn closure_row_counts_are_monotone_in_the_depth_bound(
        depth in 2usize..5, width in 1usize..4, seed in 0u64..300
    ) {
        let retro = run_layered(depth, width, 2, seed);
        let e = engine_over(&retro);
        for h in retro.artifacts.keys().copied().take(3) {
            let mut prev = 0usize;
            for d in 1usize..4 {
                let q = parse_pql(&format!("lineage of artifact {h:016x} depth {d}")).unwrap();
                let a = analyze(&e, &q).unwrap();
                prop_assert_eq!(a.result.len(), e.eval_query(&q).unwrap().len());
                prop_assert!(
                    a.result.len() >= prev,
                    "closure shrank when the depth bound grew: {} < {prev}",
                    a.result.len()
                );
                prev = a.result.len();
            }
            let unbounded = parse_pql(&format!("lineage of artifact {h:016x}")).unwrap();
            prop_assert!(analyze(&e, &unbounded).unwrap().result.len() >= prev);
        }
    }
}
