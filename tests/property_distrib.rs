//! Property tests for distributed capture: the logical-clock merge must
//! be a join (commutative, associative, idempotent) — that is what makes
//! snapshot exchange order-insensitive — and stitching must be robust to
//! arbitrary shuffling, duplication, and dropping of report blobs.

use proptest::prelude::*;
use provenance_workflows::prelude::*;
use provenance_workflows::provenance::stitch::stitch_blobs;
use wf_engine::synth::figure1_workflow;

/// Strategy: a small logical clock as sparse (site, counter) pairs.
fn clock_strategy() -> impl Strategy<Value = LogicalClock> {
    proptest::collection::vec((0u32..6, 1u64..40), 0..6).prop_map(|pairs| {
        LogicalClock::from_components(pairs.into_iter().map(|(s, n)| (ProbeId(s), n)))
    })
}

proptest! {
    #[test]
    fn clock_merge_is_commutative(a in clock_strategy(), b in clock_strategy()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn clock_merge_is_associative(
        a in clock_strategy(),
        b in clock_strategy(),
        c in clock_strategy(),
    ) {
        // (a ⊔ b) ⊔ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn clock_merge_is_idempotent(a in clock_strategy(), b in clock_strategy()) {
        let mut once = a.clone();
        once.merge(&b);
        let mut twice = once.clone();
        twice.merge(&b);
        prop_assert_eq!(&once, &twice);
        // Self-merge is also a no-op.
        let mut selfed = a.clone();
        selfed.merge(&a);
        prop_assert_eq!(selfed, a);
    }

    #[test]
    fn clock_merge_dominates_both_inputs(a in clock_strategy(), b in clock_strategy()) {
        let mut m = a.clone();
        m.merge(&b);
        // The merge is an upper bound: nothing in either input happens
        // after it.
        prop_assert!(!m.happened_before(&a) || m == a);
        prop_assert!(!m.happened_before(&b) || m == b);
        prop_assert!(a == m || a.happened_before(&m));
        prop_assert!(b == m || b.happened_before(&m));
    }

    /// Stitching a real multi-worker run survives arbitrary blob
    /// shuffling and duplication: the stitched graph stays isomorphic to
    /// the single-process reference and the hb edges are stable. With
    /// blobs dropped, the result is a reported gap and a subset — never a
    /// fabricated edge.
    #[test]
    fn stitching_survives_shuffle_dup_drop(
        seed in 1u64..5,
        workers in 2usize..5,
        perm in proptest::collection::vec(0usize..64, 8..16),
        drop_one in any::<bool>(),
    ) {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());

        // Single-process reference.
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let want = graph_signature(&cap.take(r.exec).unwrap());

        let dist = exec.run_distributed(&wf, DistribOptions::new(workers)).unwrap();
        let blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();
        let full = stitch_blobs(blobs.iter().map(Vec::as_slice));
        prop_assert!(full.is_complete());
        prop_assert_eq!(graph_signature(full.retro().unwrap()), want);

        // Delivery order driven by the generated permutation indices —
        // repeats act as duplicated deliveries, the trailing 0..n chain
        // guarantees every blob is offered at least once, and (when
        // dropping) one blob is withheld from the whole sequence.
        let dropped = if drop_one { perm[0] % blobs.len() } else { blobs.len() };
        let order: Vec<&[u8]> = perm
            .iter()
            .map(|i| i % blobs.len())
            .chain(0..blobs.len())
            .filter(|&i| i != dropped)
            .map(|i| blobs[i].as_slice())
            .collect();
        let s = stitch_blobs(order);
        if dropped < blobs.len() {
            prop_assert!(!s.is_complete(), "a dropped report must be visible");
            prop_assert!(!s.gaps.is_empty());
            for e in &s.hb_edges {
                prop_assert!(
                    full.hb_edges.iter().any(|f| {
                        f.from_site == e.from_site
                            && f.to_site == e.to_site
                            && (e.from_node.is_none() || e.from_node == f.from_node)
                            && (e.to_node.is_none() || e.to_node == f.to_node)
                    }),
                    "fabricated edge {}",
                    e.render()
                );
            }
        } else {
            prop_assert!(s.is_complete(), "gaps: {:?}", s.gaps);
            prop_assert_eq!(graph_signature(s.retro().unwrap()), want);
            prop_assert_eq!(&s.hb_edges, &full.hb_edges);
        }
    }
}
