//! Offline *functional* stand-in for `proptest`.
//!
//! Unlike the other stubs (which only satisfy dependency resolution), this
//! one actually generates values, because the workspace's property tests
//! are part of the tier-1 suite and must be runnable on air-gapped
//! machines. It implements exactly the surface those tests use —
//! `proptest!`, `prop_oneof!`, `Just`, `any`, ranges, `&str` regex
//! strategies limited to `[class]{m,n}` segments, tuples, `collection::vec`,
//! `option::of`, `prop_map` / `prop_flat_map` / `prop_recursive`, and the
//! `prop_assert*` macros — with deterministic seeding per test name and
//! the case count taken from `PROPTEST_CASES` (default 64). There is no
//! shrinking: a failing case fails with the generated value in the panic
//! message via the normal assert formatting.

pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases (overridable via `PROPTEST_CASES`).
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Case count when the property declares no config.
    pub fn default_cases() -> u32 {
        env_cases().unwrap_or(64)
    }

    /// The environment knob wins over the in-source config.
    pub fn override_cases(explicit: u32) -> u32 {
        env_cases().unwrap_or(explicit)
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// A small deterministic LCG; seeding is by test name, so every
    /// property gets a distinct but reproducible stream.
    pub struct Rng(u64);

    impl Rng {
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Rng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            // The low bits of an LCG are weak; fold the high half in.
            self.0 ^ (self.0 >> 31)
        }

        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n.max(1) as u64) as usize
        }

        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;
    use std::rc::Rc;

    /// A value generator. The real crate separates strategies from value
    /// trees (for shrinking); this stub generates directly.
    pub trait Strategy {
        type Value;
        fn gen_value(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Arb<U>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            Arb::from_fn(move |rng| f(self.gen_value(rng)))
        }

        fn prop_flat_map<S, F>(self, f: F) -> Arb<S::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy + 'static,
            S::Value: 'static,
            F: Fn(Self::Value) -> S + 'static,
        {
            Arb::from_fn(move |rng| f(self.gen_value(rng)).gen_value(rng))
        }

        /// Build `depth` layers of `recurse` over the base strategy. The
        /// size-tuning parameters of the real crate are ignored.
        fn prop_recursive<S, F>(self, depth: u32, _desired: u32, _branch: u32, recurse: F) -> Arb<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(Arb<Self::Value>) -> S,
        {
            let mut cur = boxed(self);
            for _ in 0..depth {
                cur = boxed(recurse(cur));
            }
            cur
        }
    }

    /// A boxed, clonable strategy (the stub's `BoxedStrategy`).
    pub struct Arb<T> {
        gen: Rc<dyn Fn(&mut Rng) -> T>,
    }

    impl<T> Clone for Arb<T> {
        fn clone(&self) -> Self {
            Arb {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Arb<T> {
        pub fn from_fn(f: impl Fn(&mut Rng) -> T + 'static) -> Self {
            Arb { gen: Rc::new(f) }
        }
    }

    impl<T> Strategy for Arb<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut Rng) -> T {
            (self.gen)(rng)
        }
    }

    /// Erase a strategy's concrete type.
    pub fn boxed<S>(s: S) -> Arb<S::Value>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        Arb::from_fn(move |rng| s.gen_value(rng))
    }

    /// `Just(v)`: always produces a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Arb<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Arb<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn gen_value(&self, rng: &mut Rng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;
        fn gen_value(&self, rng: &mut Rng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add((rng.next_u64() % span) as i64)
        }
    }

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;
        fn gen_value(&self, rng: &mut Rng) -> i32 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end as i64 - self.start as i64) as u64;
            (self.start as i64 + (rng.next_u64() % span) as i64) as i32
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut Rng) -> f64 {
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn gen_value(&self, rng: &mut Rng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

    /// `&str` as a regex strategy. Supports concatenations of
    /// `[class]{m,n}`, `[class]{n}`, `[class]`, and literal characters —
    /// the subset this workspace's tests use. Classes support ranges
    /// (`a-z`, ` -~`) and backslash escapes.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut Rng) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0;
            while i < chars.len() {
                let (alphabet, next) = if chars[i] == '[' {
                    parse_class(&chars, i + 1, self)
                } else if chars[i] == '\\' && i + 1 < chars.len() {
                    (vec![chars[i + 1]], i + 2)
                } else {
                    (vec![chars[i]], i + 1)
                };
                i = next;
                let (lo, hi, next) = parse_repeat(&chars, i, self);
                i = next;
                let n = lo + rng.below(hi - lo + 1);
                for _ in 0..n {
                    out.push(alphabet[rng.below(alphabet.len())]);
                }
            }
            out
        }
    }

    fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
        let mut alphabet = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            // A range like `a-z` (the `-` must not be the last char).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let end = chars[i + 2];
                assert!(c <= end, "bad class range in regex strategy {pat:?}");
                alphabet.extend(c..=end);
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        assert!(
            i < chars.len(),
            "unterminated class in regex strategy {pat:?}"
        );
        (alphabet, i + 1)
    }

    fn parse_repeat(chars: &[char], i: usize, pat: &str) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .unwrap_or_else(|| panic!("unterminated repeat in regex strategy {pat:?}"))
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (
                a.parse().expect("repeat lower bound"),
                b.parse().expect("repeat upper bound"),
            ),
            None => {
                let n = body.parse().expect("repeat count");
                (n, n)
            }
        };
        (lo, hi, close + 1)
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut Rng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut Rng) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut Rng) -> u32 {
            rng.next_u64() as u32
        }
    }

    pub fn any<T: Arbitrary + 'static>() -> Arb<T> {
        Arb::from_fn(T::arbitrary)
    }
}

pub mod collection {
    use crate::strategy::{Arb, Strategy};

    /// A vector of `len` elements drawn from `element`.
    pub fn vec<S>(element: S, len: std::ops::Range<usize>) -> Arb<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        assert!(len.start < len.end, "empty length range");
        Arb::from_fn(move |rng| {
            let n = len.start + rng.below(len.end - len.start);
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }
}

pub mod option {
    use crate::strategy::{Arb, Strategy};

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> Arb<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        Arb::from_fn(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.gen_value(rng))
            }
        })
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arb, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = $crate::test_runner::override_cases(($cfg).cases); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = $crate::test_runner::default_cases(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cases = $cases:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $cases;
                let mut __rng = $crate::test_runner::Rng::from_name(stringify!($name));
                for __case in 0..cases {
                    // Strategy constructors are pure, so re-evaluating
                    // them per case is equivalent and keeps the macro
                    // hygienic without generated bindings.
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
