//! Service errors with HTTP-style status codes.
//!
//! Every rejection the server can produce is explicit and classifiable:
//! admission control and rate limiting surface as 429/503-style errors the
//! client is expected to back off from, while malformed requests and
//! unknown namespaces are the caller's fault (4xx). Nothing panics across
//! the service boundary.

use prov_query::PqlError;
use std::fmt;

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The server's bounded in-flight window is full: admission control
    /// rejected the request instead of queueing unboundedly (503-style
    /// backpressure; retry with backoff).
    Overloaded {
        /// Requests currently being served.
        inflight: usize,
        /// The admission window size.
        limit: usize,
    },
    /// The tenant exhausted its token bucket for this namespace
    /// (429-style; retry after the bucket refills).
    RateLimited {
        /// The tenant that was throttled.
        tenant: String,
        /// The namespace the request addressed.
        namespace: String,
    },
    /// The namespace does not exist (and the operation does not create
    /// namespaces implicitly).
    NoSuchNamespace(String),
    /// The request itself was malformed: bad JSON, missing fields, an
    /// unparsable provenance document.
    BadRequest(String),
    /// The PQL query failed to parse or evaluate.
    Query(String),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The server has not finished WAL replay: requests would race
    /// recovery (503-style; retry after the server reports ready).
    NotReady,
    /// The namespace degraded to read-only after persistent write-ahead
    /// log failures; ingest is refused so no ack can outrun durability.
    ReadOnly(String),
    /// A durability (WAL) write failed; the ingest was not applied and
    /// must not be considered acknowledged.
    Durability(String),
}

impl ServerError {
    /// The HTTP status code this rejection maps to.
    pub fn status_code(&self) -> u16 {
        match self {
            ServerError::Overloaded { .. } => 503,
            ServerError::RateLimited { .. } => 429,
            ServerError::NoSuchNamespace(_) => 404,
            ServerError::BadRequest(_) => 400,
            ServerError::Query(_) => 422,
            ServerError::ShuttingDown => 503,
            ServerError::NotReady => 503,
            ServerError::ReadOnly(_) => 503,
            ServerError::Durability(_) => 500,
        }
    }

    /// A stable machine-readable label (`overloaded`, `rate_limited`, …)
    /// used in metrics and in the JSON error body.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::RateLimited { .. } => "rate_limited",
            ServerError::NoSuchNamespace(_) => "no_such_namespace",
            ServerError::BadRequest(_) => "bad_request",
            ServerError::Query(_) => "query_error",
            ServerError::ShuttingDown => "shutting_down",
            ServerError::NotReady => "not_ready",
            ServerError::ReadOnly(_) => "read_only",
            ServerError::Durability(_) => "durability",
        }
    }

    /// Is this a load-shedding rejection the client should retry after a
    /// backoff (as opposed to a request it must fix)?
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            ServerError::Overloaded { .. }
                | ServerError::RateLimited { .. }
                | ServerError::NotReady
        )
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { inflight, limit } => {
                write!(f, "overloaded: {inflight}/{limit} requests in flight")
            }
            ServerError::RateLimited { tenant, namespace } => {
                write!(
                    f,
                    "tenant '{tenant}' rate-limited on namespace '{namespace}'"
                )
            }
            ServerError::NoSuchNamespace(ns) => write!(f, "no such namespace '{ns}'"),
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::Query(msg) => write!(f, "query error: {msg}"),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::NotReady => write!(f, "server is replaying its write-ahead logs"),
            ServerError::ReadOnly(ns) => {
                write!(
                    f,
                    "namespace '{ns}' is read-only (degraded after WAL failures)"
                )
            }
            ServerError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<PqlError> for ServerError {
    fn from(e: PqlError) -> Self {
        ServerError::Query(e.to_string())
    }
}
