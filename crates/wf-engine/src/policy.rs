//! Fault-tolerance policy: retries, backoff, and deadlines.
//!
//! Scientific workflows run for hours against flaky resources; discarding a
//! whole run because one module hit a transient error wastes everything
//! provenance was supposed to protect. A [`RetryPolicy`] describes how many
//! times a module body may be attempted and how long to wait between
//! attempts (exponential backoff with *deterministic, seeded* jitter — the
//! same seed replays the same schedule, so recovery behaviour is itself
//! reproducible). An [`ExecPolicy`] scopes retry policies and deadlines to
//! a whole workflow with per-node overrides.
//!
//! Every retry, backoff, and timeout decision made under these policies is
//! reported through [`crate::ExecObserver`] so that retrospective
//! provenance records the full recovery history.

use crate::error::ErrorClass;
use crate::stdlib::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};
use wf_model::NodeId;

/// How (and whether) to retry a failing module body.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds (0 = no wait).
    pub base_backoff_micros: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub multiplier: f64,
    /// Upper bound on any single backoff, in microseconds.
    pub max_backoff_micros: u64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor
    /// drawn deterministically from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Which error classes are worth retrying.
    pub retry_on: BTreeSet<ErrorClass>,
}

/// The error classes that usually denote transient faults.
fn transient_classes() -> BTreeSet<ErrorClass> {
    [ErrorClass::Failure, ErrorClass::Panic, ErrorClass::Timeout]
        .into_iter()
        .collect()
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::never()
    }
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast (the engine's historical
    /// behaviour).
    pub fn never() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_micros: 0,
            multiplier: 2.0,
            max_backoff_micros: 0,
            jitter: 0.0,
            retry_on: BTreeSet::new(),
        }
    }

    /// Up to `max_attempts` attempts for transient faults (module failure,
    /// panic, timeout), with no backoff. Chain [`RetryPolicy::backoff`] to
    /// add a delay schedule.
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_backoff_micros: 0,
            multiplier: 2.0,
            max_backoff_micros: 0,
            jitter: 0.0,
            retry_on: transient_classes(),
        }
    }

    /// Set an exponential backoff schedule: `base` microseconds before the
    /// second attempt, multiplied by `multiplier` per subsequent attempt,
    /// capped at `max` microseconds.
    pub fn backoff(mut self, base_micros: u64, multiplier: f64, max_micros: u64) -> Self {
        self.base_backoff_micros = base_micros;
        self.multiplier = if multiplier.is_finite() && multiplier >= 1.0 {
            multiplier
        } else {
            1.0
        };
        self.max_backoff_micros = max_micros.max(base_micros);
        self
    }

    /// Set the jitter fraction (clamped to `[0, 1]`).
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Also retry errors of `class` (e.g. [`ErrorClass::BadInput`] when a
    /// module is known to misreport transient faults as input errors).
    pub fn retry_also(mut self, class: ErrorClass) -> Self {
        self.retry_on.insert(class);
        self
    }

    /// Should a failure of `class` on attempt `attempt` (1-based) be
    /// retried under this policy?
    pub fn should_retry(&self, attempt: u32, class: ErrorClass) -> bool {
        attempt < self.max_attempts && self.retry_on.contains(&class)
    }

    /// The backoff before attempt `attempt + 1`, given that attempt
    /// `attempt` (1-based) just failed. Deterministic in
    /// `(seed, node, attempt)` regardless of scheduling order, so parallel
    /// runs replay the same schedule as sequential ones.
    pub fn backoff_micros(&self, seed: u64, node: NodeId, attempt: u32) -> u64 {
        if self.base_backoff_micros == 0 {
            return 0;
        }
        let exp = self
            .multiplier
            .powi(attempt.saturating_sub(1).min(62) as i32);
        let raw = (self.base_backoff_micros as f64 * exp).min(self.max_backoff_micros as f64);
        if self.jitter <= 0.0 {
            return raw as u64;
        }
        // Derive a per-(seed, node, attempt) stream so jitter does not
        // depend on the order in which nodes happen to fail.
        let stream = seed
            ^ node.0.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ u64::from(attempt).wrapping_mul(0xd1b5_4a32_d192_ed03);
        let mut rng = SplitMix64::new(stream);
        let factor = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        (raw * factor).max(0.0) as u64
    }
}

/// A wall-clock deadline for one module body, in microseconds.
///
/// Enforced by running the body on a watchdog thread: when the limit
/// passes, the attempt is abandoned (the thread is detached — module
/// bodies cannot be cancelled preemptively) and the engine reports
/// [`crate::ExecError::DeadlineExceeded`], which retry policies classify
/// as [`ErrorClass::Timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// The limit in microseconds.
    pub limit_micros: u64,
}

impl Deadline {
    /// A deadline of `limit_micros` microseconds.
    pub fn micros(limit_micros: u64) -> Self {
        Self { limit_micros }
    }

    /// A deadline of `millis` milliseconds.
    pub fn millis(millis: u64) -> Self {
        Self {
            limit_micros: millis.saturating_mul(1000),
        }
    }
}

/// Fault-tolerance policy for a whole workflow run: a default retry policy
/// and deadline, with per-node overrides, plus the seed that makes backoff
/// jitter reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecPolicy {
    /// Workflow-wide retry policy (default: no retries).
    pub retry: RetryPolicy,
    /// Per-node retry overrides.
    pub node_retry: BTreeMap<NodeId, RetryPolicy>,
    /// Workflow-wide module-body deadline (default: none).
    pub deadline: Option<Deadline>,
    /// Per-node deadline overrides.
    pub node_deadline: BTreeMap<NodeId, Deadline>,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl ExecPolicy {
    /// The engine's historical behaviour: one attempt, no deadlines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the workflow-wide retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the retry policy for one node.
    pub fn retry_for_node(mut self, node: NodeId, retry: RetryPolicy) -> Self {
        self.node_retry.insert(node, retry);
        self
    }

    /// Set the workflow-wide module-body deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Override the deadline for one node.
    pub fn deadline_for_node(mut self, node: NodeId, deadline: Deadline) -> Self {
        self.node_deadline.insert(node, deadline);
        self
    }

    /// Set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The effective retry policy for `node`.
    pub fn retry_for(&self, node: NodeId) -> &RetryPolicy {
        self.node_retry.get(&node).unwrap_or(&self.retry)
    }

    /// The effective deadline for `node`, if any.
    pub fn deadline_for(&self, node: NodeId) -> Option<Deadline> {
        self.node_deadline.get(&node).copied().or(self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_policy_never_retries() {
        let p = RetryPolicy::never();
        assert!(!p.should_retry(1, ErrorClass::Failure));
        assert_eq!(p.backoff_micros(1, NodeId(0), 1), 0);
    }

    #[test]
    fn attempts_policy_retries_transient_only() {
        let p = RetryPolicy::attempts(3);
        assert!(p.should_retry(1, ErrorClass::Failure));
        assert!(p.should_retry(2, ErrorClass::Panic));
        assert!(p.should_retry(1, ErrorClass::Timeout));
        assert!(
            !p.should_retry(3, ErrorClass::Failure),
            "attempts exhausted"
        );
        assert!(!p.should_retry(1, ErrorClass::BadInput));
        assert!(!p.should_retry(1, ErrorClass::Structural));
        assert!(p
            .retry_also(ErrorClass::BadInput)
            .should_retry(1, ErrorClass::BadInput));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::attempts(6).backoff(100, 2.0, 350);
        let n = NodeId(1);
        assert_eq!(p.backoff_micros(0, n, 1), 100);
        assert_eq!(p.backoff_micros(0, n, 2), 200);
        assert_eq!(p.backoff_micros(0, n, 3), 350, "capped");
        assert_eq!(p.backoff_micros(0, n, 4), 350);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::attempts(4)
            .backoff(1000, 2.0, 100_000)
            .jitter(0.5);
        let a = p.backoff_micros(42, NodeId(3), 1);
        let b = p.backoff_micros(42, NodeId(3), 1);
        assert_eq!(a, b, "same seed, node, attempt: same backoff");
        assert!((500..=1500).contains(&a), "within jitter bounds: {a}");
        // Different node or seed: (almost surely) a different draw.
        let c = p.backoff_micros(42, NodeId(4), 1);
        let d = p.backoff_micros(43, NodeId(3), 1);
        assert!(a != c || a != d, "jitter streams are separated");
    }

    #[test]
    fn exec_policy_resolves_overrides() {
        let policy = ExecPolicy::new()
            .with_retry(RetryPolicy::attempts(2))
            .retry_for_node(NodeId(9), RetryPolicy::attempts(5))
            .with_deadline(Deadline::millis(10))
            .deadline_for_node(NodeId(9), Deadline::micros(77));
        assert_eq!(policy.retry_for(NodeId(0)).max_attempts, 2);
        assert_eq!(policy.retry_for(NodeId(9)).max_attempts, 5);
        assert_eq!(
            policy.deadline_for(NodeId(0)),
            Some(Deadline::micros(10_000))
        );
        assert_eq!(policy.deadline_for(NodeId(9)), Some(Deadline::micros(77)));
        assert_eq!(ExecPolicy::new().deadline_for(NodeId(0)), None);
    }
}
