//! # provenance-workflows
//!
//! A complete provenance-management platform for scientific workflows — a
//! from-scratch Rust realization of the system design space surveyed in
//! *Provenance and Scientific Workflows: Challenges and Opportunities*
//! (Davidson & Freire, SIGMOD 2008).
//!
//! The platform spans the whole tutorial:
//!
//! | Area (paper §) | Crate | Re-exported as |
//! |---|---|---|
//! | workflow model (§2.1) | `wf-model` | [`model`] |
//! | dataflow engine (§2.1) | `wf-engine` | [`engine`] |
//! | provenance capture/model/causality (§2.2) | `prov-core` | [`provenance`] |
//! | storage backends (§2.2) | `prov-store` | [`store`] |
//! | querying / PQL (§2.2) | `prov-query` | [`query`] |
//! | evolution + analogy (§2.3, Fig. 2) | `prov-evolution` | [`evolution`] |
//! | interoperability / OPM / Challenge (§2.4) | `prov-interop` | [`interop`] |
//! | telemetry: spans, metrics, profiling (§2.4) | `prov-telemetry` | [`telemetry`] |
//! | social analysis / mining (§2.3–2.4) | `prov-social` | [`social`] |
//!
//! ## Quickstart
//!
//! ```
//! use provenance_workflows::prelude::*;
//!
//! // 1. Author a workflow (prospective provenance).
//! let mut b = WorkflowBuilder::new(1, "demo");
//! let load = b.add("LoadVolume");
//! let hist = b.add("Histogram");
//! b.connect(load, "grid", hist, "data");
//! b.param(hist, "bins", 16i64);
//! let wf = b.build();
//!
//! // 2. Run it with provenance capture.
//! let exec = Executor::new(standard_registry());
//! let mut capture = ProvenanceCapture::new(CaptureLevel::Fine);
//! let result = exec.run_observed(&wf, &mut capture).unwrap();
//! let retro = capture.take(result.exec).unwrap();
//!
//! // 3. Ask provenance questions.
//! let table = retro.produced(hist, "table").unwrap();
//! let graph = CausalityGraph::from_retrospective(&retro);
//! assert!(graph.derived_from(
//!     table.hash,
//!     retro.produced(load, "grid").unwrap().hash,
//! ));
//! ```

/// Workflow specification model (`wf-model`).
pub mod model {
    pub use wf_model::*;
}

/// Dataflow execution engine (`wf-engine`).
pub mod engine {
    pub use wf_engine::*;
}

/// Provenance capture, models, causality, OPM, views (`prov-core`).
pub mod provenance {
    pub use prov_core::*;
}

/// Storage backends (`prov-store`).
pub mod store {
    pub use prov_store::*;
}

/// PQL and query-by-example (`prov-query`).
pub mod query {
    pub use prov_query::*;
}

/// Version trees, diff, analogy (`prov-evolution`).
pub mod evolution {
    pub use prov_evolution::*;
}

/// Dialects, OPM integration, the Provenance Challenge (`prov-interop`).
pub mod interop {
    pub use prov_interop::*;
}

/// Collaboratory, mining, recommendations (`prov-social`).
pub mod social {
    pub use prov_social::*;
}

/// Spans, metrics, profiling, trace export (`prov-telemetry`).
pub mod telemetry {
    pub use prov_telemetry::*;
}

/// Distributed capture probes, logical clocks, report stitching
/// (`prov-probe`).
pub mod probe {
    pub use prov_probe::*;
}

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use prov_core::{check_resume, ResumeCheck};
    pub use prov_core::{graph_signature, stitch_provenance, stitch_reports, StitchedProvenance};
    pub use prov_core::{
        Annotation, AnnotationStore, CaptureLevel, CausalityGraph, OpmGraph, ProspectiveProvenance,
        ProvNodeRef, ProvenanceBundle, ProvenanceCapture, RetrospectiveProvenance, Subject,
        UserView, ViewedGraph,
    };
    pub use prov_evolution::{apply_by_analogy, diff_workflows, Action, VersionId, VersionTree};
    pub use prov_interop::{integrate, run_challenge};
    pub use prov_probe::{Collector, LogicalClock, Probe, ProbeId};
    pub use prov_query::{
        analyze, analyze_optimized, analyze_store, eval_cached, eval_optimized,
        optimize as optimize_pql, parse as parse_pql, Optimization, Plan, PqlEngine, QueryCache,
        QueryObserver, QueryResult, ShardedEngine, SlowQueryLog,
    };
    pub use prov_social::{Collaboratory, FragmentMiner};
    pub use prov_store::{
        GraphStore, LogStore, ProvenanceStore, RelStore, SpanStore, StatsSnapshot, StoreStats,
        TripleStore,
    };
    pub use prov_telemetry::{
        profile_result, profile_retro, MetricsObserver, RunProfile, SpanCollector, Telemetry, Trace,
    };
    pub use wf_engine::{
        standard_registry, Deadline, DistribOptions, DistributedRun, ErrorClass, ExecId,
        ExecPolicy, Executor, FanoutObserver, FaultAction, FaultPlan, RetryPolicy, RunStatus,
        Value,
    };
    pub use wf_model::{
        validate, DataType, ModuleCatalog, ModuleKind, NodeId, ParamValue, Workflow,
        WorkflowBuilder, WorkflowId,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let (wf, nodes) = wf_engine::synth::figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut store = GraphStore::new();
        store.ingest(&retro);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(store.generators(grid).len(), 1);
        let mut pql = PqlEngine::new();
        pql.ingest(&retro);
        assert_eq!(pql.eval("count runs").unwrap(), QueryResult::Count(8));
    }
}
