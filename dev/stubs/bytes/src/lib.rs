//! Offline typecheck stub for `bytes` (immutable `Bytes` only).
use std::ops::Deref;

#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(bytes.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self(v.into_bytes())
    }
}
