//! The module catalog: the registry of module kinds available to workflows.
//!
//! A workflow node references its kind by `(name, version)`; the catalog
//! resolves that reference during validation and execution. Catalogs are
//! also the unit of sharing in the collaboratory: publishing a module makes
//! it available to everyone's workflows.

use crate::error::ModelError;
use crate::module::ModuleKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A registry of [`ModuleKind`]s keyed by `(name, version)`.
///
/// Serialized as a flat list of kinds (JSON object keys must be strings,
/// and a list is also the natural interchange form for catalogs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<ModuleKind>", into = "Vec<ModuleKind>")]
pub struct ModuleCatalog {
    kinds: BTreeMap<(String, u32), ModuleKind>,
}

impl From<Vec<ModuleKind>> for ModuleCatalog {
    fn from(v: Vec<ModuleKind>) -> Self {
        let mut c = ModuleCatalog::new();
        for k in v {
            c.register(k);
        }
        c
    }
}

impl From<ModuleCatalog> for Vec<ModuleKind> {
    fn from(c: ModuleCatalog) -> Self {
        c.kinds.into_values().collect()
    }
}

impl ModuleCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a kind. Re-registering the same `(name, version)` replaces
    /// the previous definition (used by tests; real deployments bump the
    /// version instead).
    pub fn register(&mut self, kind: ModuleKind) {
        self.kinds.insert((kind.name.clone(), kind.version), kind);
    }

    /// Resolve an exact `(name, version)` reference.
    pub fn get(&self, name: &str, version: u32) -> Result<&ModuleKind, ModelError> {
        self.kinds
            .get(&(name.to_string(), version))
            .ok_or_else(|| ModelError::UnknownModuleKind {
                name: name.to_string(),
                version,
            })
    }

    /// The newest registered version of `name`, if any.
    pub fn latest(&self, name: &str) -> Option<&ModuleKind> {
        self.kinds
            .range((name.to_string(), 0)..=(name.to_string(), u32::MAX))
            .next_back()
            .map(|(_, k)| k)
    }

    /// Iterate over all registered kinds in `(name, version)` order.
    pub fn iter(&self) -> impl Iterator<Item = &ModuleKind> {
        self.kinds.values()
    }

    /// Number of registered kinds.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Merge another catalog into this one (other wins on conflicts).
    pub fn merge(&mut self, other: &ModuleCatalog) {
        for k in other.iter() {
            self.register(k.clone());
        }
    }

    /// All kinds in a category, in name order.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a ModuleKind> {
        self.iter().filter(move |k| k.category == category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ModuleKind, PortSpec};
    use crate::types::DataType;

    fn catalog() -> ModuleCatalog {
        let mut c = ModuleCatalog::new();
        c.register(ModuleKind::new("Load").version(1).category("io"));
        c.register(ModuleKind::new("Load").version(3).category("io"));
        c.register(
            ModuleKind::new("Render")
                .version(2)
                .category("visualization")
                .input(PortSpec::required("mesh", DataType::Mesh)),
        );
        c
    }

    #[test]
    fn exact_lookup_and_missing() {
        let c = catalog();
        assert!(c.get("Load", 1).is_ok());
        assert!(matches!(
            c.get("Load", 2),
            Err(ModelError::UnknownModuleKind { .. })
        ));
    }

    #[test]
    fn latest_picks_highest_version() {
        let c = catalog();
        assert_eq!(c.latest("Load").unwrap().version, 3);
        assert!(c.latest("Nope").is_none());
    }

    #[test]
    fn category_filter() {
        let c = catalog();
        let io: Vec<_> = c.by_category("io").map(|k| k.identity()).collect();
        assert_eq!(io, vec!["Load@1", "Load@3"]);
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = ModuleCatalog::new();
        a.register(ModuleKind::new("X").doc("old"));
        let mut b = ModuleCatalog::new();
        b.register(ModuleKind::new("X").doc("new"));
        a.merge(&b);
        assert_eq!(a.get("X", 1).unwrap().doc, "new");
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn catalog_roundtrips_serde() {
        let c = catalog();
        let s = serde_json::to_string(&c).unwrap();
        let back: ModuleCatalog = serde_json::from_str(&s).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.latest("Load").unwrap().version, 3);
    }
}
