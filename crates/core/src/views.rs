//! User views over provenance — ZOOM-style abstraction (§2.4 "information
//! overload"; Biton et al., ICDE'08).
//!
//! A [`UserView`] partitions the module runs of an execution into named
//! *composite* groups. The induced [`ViewedGraph`] shows one node per group
//! and hides every artifact that is strictly internal to a group, shrinking
//! the provenance a user must read while **preserving reachability between
//! all visible nodes** (checked by `soundness` tests here and by property
//! tests in the integration suite).

use crate::causality::{CausalityGraph, ProvNodeRef};
use crate::model::ArtifactHash;
use std::collections::{BTreeMap, BTreeSet};
use wf_model::NodeId;

/// A partition of module runs into named composite groups.
#[derive(Debug, Clone, Default)]
pub struct UserView {
    /// View name.
    pub name: String,
    groups: BTreeMap<String, BTreeSet<NodeId>>,
}

impl UserView {
    /// An empty view.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            groups: BTreeMap::new(),
        }
    }

    /// Assign nodes to a named group. Extends the group if it exists.
    /// Returns `self` for chaining.
    pub fn group(mut self, name: &str, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.groups
            .entry(name.to_string())
            .or_default()
            .extend(nodes);
        self
    }

    /// The groups of the view.
    pub fn groups(&self) -> &BTreeMap<String, BTreeSet<NodeId>> {
        &self.groups
    }

    /// Check the partition is disjoint; returns offending nodes.
    pub fn overlapping_nodes(&self) -> Vec<NodeId> {
        let mut seen = BTreeSet::new();
        let mut bad = Vec::new();
        for nodes in self.groups.values() {
            for &n in nodes {
                if !seen.insert(n) {
                    bad.push(n);
                }
            }
        }
        bad
    }

    /// The group containing a node, if assigned.
    pub fn group_of(&self, node: NodeId) -> Option<&str> {
        self.groups
            .iter()
            .find(|(_, nodes)| nodes.contains(&node))
            .map(|(name, _)| name.as_str())
    }
}

/// A node of the abstracted provenance graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViewNode {
    /// A composite group of module runs.
    Group(String),
    /// A visible data artifact.
    Artifact(ArtifactHash),
}

/// The provenance graph induced by a user view.
#[derive(Debug, Clone)]
pub struct ViewedGraph {
    /// Nodes of the abstracted graph.
    pub nodes: BTreeSet<ViewNode>,
    /// Edges in dataflow direction (cause → effect).
    pub edges: BTreeSet<(ViewNode, ViewNode)>,
    /// Artifacts hidden by the abstraction.
    pub hidden_artifacts: BTreeSet<ArtifactHash>,
    base_nodes: usize,
    base_edges: usize,
}

impl ViewedGraph {
    /// Apply `view` to a causality graph. Runs not assigned to any group
    /// become singleton groups named `"<node>"`.
    pub fn apply(base: &CausalityGraph, view: &UserView) -> Self {
        // Group assignment for every run in the base graph.
        let mut group_of: BTreeMap<NodeId, String> = BTreeMap::new();
        for (gname, members) in view.groups() {
            for &n in members {
                group_of.insert(n, gname.clone());
            }
        }
        for n in base.nodes() {
            if let ProvNodeRef::Run(id) = n {
                group_of.entry(*id).or_insert_with(|| format!("{id}"));
            }
        }

        // Classify artifacts: the set of groups touching each artifact.
        let mut touching: BTreeMap<ArtifactHash, BTreeSet<String>> = BTreeMap::new();
        let mut has_generator: BTreeSet<ArtifactHash> = BTreeSet::new();
        let mut has_user: BTreeSet<ArtifactHash> = BTreeSet::new();
        for n in base.nodes() {
            if let ProvNodeRef::Artifact(h) = n {
                let entry = touching.entry(*h).or_default();
                for c in base.causes(*n) {
                    if let ProvNodeRef::Run(r) = c {
                        entry.insert(group_of[&r].clone());
                        has_generator.insert(*h);
                    }
                }
                for e in base.effects(*n) {
                    if let ProvNodeRef::Run(r) = e {
                        entry.insert(group_of[&r].clone());
                        has_user.insert(*h);
                    }
                }
            }
        }

        let mut nodes: BTreeSet<ViewNode> = BTreeSet::new();
        let mut edges: BTreeSet<(ViewNode, ViewNode)> = BTreeSet::new();
        let mut hidden: BTreeSet<ArtifactHash> = BTreeSet::new();

        for g in group_of.values() {
            nodes.insert(ViewNode::Group(g.clone()));
        }

        for (h, groups) in &touching {
            let internal = groups.len() <= 1 && has_generator.contains(h) && has_user.contains(h);
            if internal {
                hidden.insert(*h);
                continue;
            }
            nodes.insert(ViewNode::Artifact(*h));
        }

        // Edges between visible nodes.
        for n in base.nodes() {
            if let ProvNodeRef::Artifact(h) = n {
                if hidden.contains(h) {
                    continue;
                }
                for c in base.causes(*n) {
                    if let ProvNodeRef::Run(r) = c {
                        edges.insert((
                            ViewNode::Group(group_of[&r].clone()),
                            ViewNode::Artifact(*h),
                        ));
                    }
                }
                for e in base.effects(*n) {
                    if let ProvNodeRef::Run(r) = e {
                        edges.insert((
                            ViewNode::Artifact(*h),
                            ViewNode::Group(group_of[&r].clone()),
                        ));
                    }
                }
            }
        }

        Self {
            nodes,
            edges,
            hidden_artifacts: hidden,
            base_nodes: base.node_count(),
            base_edges: base.edge_count(),
        }
    }

    /// Abstracted node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Abstracted edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Size reduction: abstracted nodes / base nodes (smaller is better).
    pub fn reduction_ratio(&self) -> f64 {
        if self.base_nodes == 0 {
            1.0
        } else {
            self.node_count() as f64 / self.base_nodes as f64
        }
    }

    /// Base graph size the view was computed from: (nodes, edges).
    pub fn base_size(&self) -> (usize, usize) {
        (self.base_nodes, self.base_edges)
    }

    /// Is `to` reachable from `from` in the abstracted graph?
    pub fn reachable(&self, from: &ViewNode, to: &ViewNode) -> bool {
        if from == to {
            return true;
        }
        let mut adj: BTreeMap<&ViewNode, Vec<&ViewNode>> = BTreeMap::new();
        for (a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
        }
        let mut seen: BTreeSet<&ViewNode> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if let Some(next) = adj.get(x) {
                for &n in next {
                    if seen.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureLevel, ProvenanceCapture};
    use crate::model::RetrospectiveProvenance;
    use wf_engine::synth::{figure1_workflow, Figure1Nodes};
    use wf_engine::{standard_registry, Executor};

    fn fig1() -> (RetrospectiveProvenance, Figure1Nodes) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        (cap.take(r.exec).unwrap(), nodes)
    }

    fn branch_view(nodes: &Figure1Nodes) -> UserView {
        UserView::new("branches")
            .group(
                "histogram-branch",
                [nodes.hist, nodes.plot, nodes.save_hist],
            )
            .group(
                "iso-branch",
                [nodes.iso, nodes.smooth, nodes.render, nodes.save_iso],
            )
    }

    #[test]
    fn view_shrinks_the_graph() {
        let (retro, nodes) = fig1();
        let base = CausalityGraph::from_retrospective(&retro);
        let viewed = ViewedGraph::apply(&base, &branch_view(&nodes));
        assert!(viewed.node_count() < base.node_count());
        assert!(viewed.reduction_ratio() < 1.0);
        assert!(!viewed.hidden_artifacts.is_empty());
    }

    #[test]
    fn internal_artifacts_hidden_boundary_kept() {
        let (retro, nodes) = fig1();
        let base = CausalityGraph::from_retrospective(&retro);
        let viewed = ViewedGraph::apply(&base, &branch_view(&nodes));
        // The CT grid crosses from the load singleton into both branches:
        // must stay visible.
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert!(viewed.nodes.contains(&ViewNode::Artifact(grid)));
        // The histogram table is internal to the histogram branch: hidden.
        let table = retro.produced(nodes.hist, "table").unwrap().hash;
        assert!(viewed.hidden_artifacts.contains(&table));
        // Final products are sinks (no user): visible.
        let product = retro.produced(nodes.save_iso, "file").unwrap().hash;
        assert!(viewed.nodes.contains(&ViewNode::Artifact(product)));
    }

    #[test]
    fn soundness_reachability_preserved_between_visible_artifacts() {
        let (retro, nodes) = fig1();
        let base = CausalityGraph::from_retrospective(&retro);
        let viewed = ViewedGraph::apply(&base, &branch_view(&nodes));
        let visible: Vec<ArtifactHash> = viewed
            .nodes
            .iter()
            .filter_map(|n| match n {
                ViewNode::Artifact(h) => Some(*h),
                _ => None,
            })
            .collect();
        for &a in &visible {
            let down = base.downstream(ProvNodeRef::Artifact(a), None);
            for &b in &visible {
                if a == b {
                    continue;
                }
                let base_reach = down.contains(&ProvNodeRef::Artifact(b));
                let view_reach = viewed.reachable(&ViewNode::Artifact(a), &ViewNode::Artifact(b));
                assert_eq!(
                    base_reach, view_reach,
                    "reachability {a:x} -> {b:x} must be preserved"
                );
                let _ = nodes;
            }
        }
    }

    #[test]
    fn trivial_view_keeps_everything_visible() {
        let (retro, _) = fig1();
        let base = CausalityGraph::from_retrospective(&retro);
        let viewed = ViewedGraph::apply(&base, &UserView::new("identity"));
        // Singleton groups: every artifact still has its endpoints in
        // different groups or is terminal, except artifacts both produced
        // and consumed by... singletons differ, so nothing is hidden.
        assert!(viewed.hidden_artifacts.is_empty());
        assert_eq!(viewed.node_count(), base.node_count());
    }

    #[test]
    fn whole_workflow_view_collapses_to_sources_and_sinks() {
        let (retro, nodes) = fig1();
        let base = CausalityGraph::from_retrospective(&retro);
        let all = UserView::new("all").group(
            "everything",
            [
                nodes.load,
                nodes.hist,
                nodes.plot,
                nodes.save_hist,
                nodes.iso,
                nodes.smooth,
                nodes.render,
                nodes.save_iso,
            ],
        );
        let viewed = ViewedGraph::apply(&base, &all);
        let groups = viewed
            .nodes
            .iter()
            .filter(|n| matches!(n, ViewNode::Group(_)))
            .count();
        assert_eq!(groups, 1);
        // Only terminal artifacts (the two saved files) stay visible.
        let artifacts = viewed
            .nodes
            .iter()
            .filter(|n| matches!(n, ViewNode::Artifact(_)))
            .count();
        assert_eq!(artifacts, 2);
    }

    #[test]
    fn overlapping_groups_detected() {
        let v = UserView::new("bad")
            .group("g1", [NodeId(1), NodeId(2)])
            .group("g2", [NodeId(2), NodeId(3)]);
        assert_eq!(v.overlapping_nodes(), vec![NodeId(2)]);
        assert_eq!(v.group_of(NodeId(3)), Some("g2"));
        assert_eq!(v.group_of(NodeId(9)), None);
    }
}
