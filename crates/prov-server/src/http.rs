//! A minimal dependency-free HTTP/1.1 front end over [`ProvServer`].
//!
//! Pure `std::net`: a listener thread accepts connections and hands them
//! to a **bounded** worker pool over a rendezvous-ish channel. When every
//! worker is busy and the handoff queue is full, the connection is
//! answered `503` immediately — the accept loop never queues unboundedly,
//! mirroring the in-process admission window.
//!
//! Routes (all bodies JSON, see `crate::wire` for the codec):
//!
//! | method | path               | body                                    |
//! |--------|--------------------|-----------------------------------------|
//! | GET    | `/healthz`         | — (readiness + per-namespace detail)    |
//! | GET    | `/metrics`         | — (Prometheus text)                     |
//! | GET    | `/v1/metrics`      | — (alias of `/metrics`)                 |
//! | GET    | `/v1/trace/{id}`   | — (assembled span tree for a trace id)  |
//! | POST   | `/v1/trace/{id}`   | span JSONL (ingest stitched spans)      |
//! | GET    | `/v1/slowlog/{ns}` | — (slow-query log as JSONL)             |
//! | POST   | `/v1/create`       | `{tenant, namespace}`                   |
//! | POST   | `/v1/ingest`       | `{tenant, namespace, retro}`            |
//! | POST   | `/v1/query`        | `{tenant, namespace, pql}`              |
//! | POST   | `/v1/stats`        | `{tenant, namespace}`                   |
//! | POST   | `/v1/shutdown`     | `{}` (drains, then stops the listener)  |
//!
//! Errors come back as `{"error": kind, "message": ...}` with the status
//! code from [`ServerError::status_code`].
//!
//! `/v1/*` API requests honour a W3C-style `traceparent` header (with a
//! companion `tracestate: prov=attempt:N` for retry linking): the server
//! records its request/query/operator spans under the caller's trace id,
//! retrievable afterwards via `GET /v1/trace/{trace_id}`. A malformed
//! `traceparent` never fails the request — the server mints a fresh root
//! instead, exactly as the W3C spec prescribes (restart the trace).

use crate::error::ServerError;
use crate::server::{ProvServer, Request, RequestBody, ResponseBody, TraceMeta};
use crate::wire;
use prov_telemetry::{
    parse_json, parse_tracestate_attempt, render_tracestate_attempt, JsonValue, Span, SpanId,
    TraceContext,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on request body size (16 MiB) — a malformed Content-Length cannot
/// make a worker allocate without bound.
const MAX_BODY: usize = 16 * 1024 * 1024;

/// Per-connection socket timeout so a stalled client cannot pin a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running HTTP front end; dropping it (or calling
/// [`HttpServer::shutdown`]) stops the listener and joins every thread.
pub struct HttpServer {
    server: Arc<ProvServer>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `server`
    /// with `workers` handler threads.
    pub fn bind(
        server: Arc<ProvServer>,
        addr: &str,
        workers: usize,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = workers.max(1);
        // Small handoff buffer: accepted connections wait here only while
        // a worker finishes its current request; overflow is shed as 503.
        let (tx, rx) = sync_channel::<TcpStream>(workers);
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let server = Arc::clone(&server);
                std::thread::spawn(move || worker_loop(&server, &rx, local))
            })
            .collect();
        let accept_server = Arc::clone(&server);
        let accept_thread = std::thread::spawn(move || accept_loop(&accept_server, &listener, &tx));
        Ok(HttpServer {
            server,
            addr: local,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this front end.
    pub fn server(&self) -> &Arc<ProvServer> {
        &self.server
    }

    /// Drain: reject new requests, stop the listener, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the server is shut down *remotely* (a client POSTs
    /// `/v1/shutdown`), then join every thread. This is what
    /// `provctl serve` sits in.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn stop(&mut self) {
        self.server.begin_shutdown();
        // Unblock the accept loop: it re-checks the shutdown flag per
        // connection, so one self-connect is enough.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(server: &ProvServer, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if server.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Every worker busy and the handoff buffer full: shed load
                // at the door exactly like the admission window would.
                let err = ServerError::Overloaded {
                    inflight: server.server_stats().inflight,
                    limit: server.config().max_inflight,
                };
                let _ = write_response(
                    &mut stream,
                    err.status_code(),
                    "application/json",
                    &wire::render_json(&wire::error_to_json(&err)),
                );
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping tx disconnects the channel; workers drain and exit.
}

fn worker_loop(server: &ProvServer, rx: &Arc<Mutex<Receiver<TcpStream>>>, addr: SocketAddr) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(mut stream) => {
                let _ = handle_connection(server, &mut stream);
                if server.is_shutting_down() {
                    // A request (e.g. POST /v1/shutdown) flipped the drain
                    // flag: poke the accept loop so it re-checks and exits
                    // instead of blocking on the next connection.
                    let _ = TcpStream::connect(addr);
                }
            }
            Err(_) => break, // listener gone
        }
    }
}

/// One parsed HTTP request line + headers + body.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
    /// Raw `traceparent` header value, if the client sent one.
    traceparent: Option<String>,
    /// Raw `tracestate` header value, if the client sent one.
    tracestate: Option<String>,
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<HttpRequest>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None); // peer closed without sending anything
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let mut content_length = 0usize;
    let mut traceparent = None;
    let mut tracestate = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("traceparent") {
                traceparent = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("tracestate") {
                tracestate = Some(value.trim().to_string());
            }
        }
    }
    if content_length > MAX_BODY {
        return Ok(Some(HttpRequest {
            method,
            path,
            body: String::new(),
            traceparent,
            tracestate,
        }));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(HttpRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
        traceparent,
        tracestate,
    }))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        500 => "Internal Server Error",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn handle_connection(server: &ProvServer, stream: &mut TcpStream) -> std::io::Result<()> {
    let Some(req) = read_request(stream)? else {
        return Ok(());
    };
    let (status, content_type, body) = route(server, &req);
    write_response(stream, status, content_type, &body)
}

/// Build the request's trace metadata from its propagation headers.
///
/// No header → untraced (`None`). A malformed or wrong-version header must
/// never fail the request: per the W3C spec the receiver *restarts* the
/// trace, so the server mints a fresh sampled root instead.
fn trace_meta(req: &HttpRequest) -> Option<TraceMeta> {
    let header = req.traceparent.as_deref()?;
    let context = TraceContext::parse(header).unwrap_or_else(|_| {
        TraceContext::root(
            wf_engine::event::now_micros(),
            u64::from(std::process::id()),
        )
    });
    let attempt = req
        .tracestate
        .as_deref()
        .and_then(parse_tracestate_attempt)
        .unwrap_or(1);
    Some(TraceMeta { context, attempt })
}

/// Render one namespace's health detail for `/healthz`.
fn namespace_health(server: &ProvServer, name: &str) -> Option<JsonValue> {
    let ns = server.namespace(name)?;
    let mut fields = vec![
        ("name".to_string(), JsonValue::String(name.to_string())),
        ("durable".to_string(), JsonValue::Bool(ns.is_durable())),
        ("read_only".to_string(), JsonValue::Bool(ns.is_read_only())),
        (
            "ingests".to_string(),
            JsonValue::Number(ns.ingest_count() as f64),
        ),
        (
            "queries".to_string(),
            JsonValue::Number(ns.query_count() as f64),
        ),
    ];
    if let Some(records) = ns.wal_records() {
        fields.push(("wal_records".to_string(), JsonValue::Number(records as f64)));
    }
    Some(JsonValue::Object(fields.into_iter().collect()))
}

/// `GET /v1/trace/{id}` — the assembled span tree for one trace.
fn trace_route(server: &ProvServer, id_hex: &str) -> (u16, &'static str, String) {
    let Ok(trace_id) = TraceContext::parse_trace_id(id_hex) else {
        let err = ServerError::BadRequest(format!("malformed trace id '{id_hex}'"));
        return (
            err.status_code(),
            "application/json",
            wire::render_json(&wire::error_to_json(&err)),
        );
    };
    let Some(stored) = server.stored_trace(trace_id) else {
        let body = wire::render_json(&JsonValue::Object(
            [
                (
                    "error".to_string(),
                    JsonValue::String("no_such_trace".to_string()),
                ),
                (
                    "message".to_string(),
                    JsonValue::String(format!("no recorded trace {id_hex}")),
                ),
            ]
            .into_iter()
            .collect(),
        ));
        return (404, "application/json", body);
    };
    let body = wire::render_json(&JsonValue::Object(
        [
            (
                "trace_id".to_string(),
                JsonValue::String(format!("{trace_id:032x}")),
            ),
            (
                "spans".to_string(),
                JsonValue::Number(stored.spans.len() as f64),
            ),
            (
                "dropped".to_string(),
                JsonValue::Number(stored.dropped as f64),
            ),
            ("roots".to_string(), span_tree_json(&stored.spans)),
        ]
        .into_iter()
        .collect(),
    ));
    (200, "application/json", body)
}

/// Nest a flat span list into root-first JSON trees. Spans arrive sorted
/// by `(start_micros, id)`; a span whose parent was never recorded (e.g.
/// the client's remote root) becomes a root itself.
fn span_tree_json(spans: &[Span]) -> JsonValue {
    fn node(span: &Span, by_parent: &std::collections::HashMap<SpanId, Vec<&Span>>) -> JsonValue {
        let children = by_parent
            .get(&span.id)
            .map(|kids| kids.iter().map(|k| node(k, by_parent)).collect())
            .unwrap_or_default();
        JsonValue::Object(
            [
                (
                    "span_id".to_string(),
                    JsonValue::String(format!("{:016x}", span.id.0)),
                ),
                (
                    "kind".to_string(),
                    JsonValue::String(span.kind.label().to_string()),
                ),
                ("name".to_string(), JsonValue::String(span.name.clone())),
                (
                    "start_micros".to_string(),
                    JsonValue::Number(span.start_micros as f64),
                ),
                (
                    "duration_micros".to_string(),
                    JsonValue::Number(span.duration_micros() as f64),
                ),
                (
                    "attrs".to_string(),
                    JsonValue::Object(
                        span.attrs
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::String(v.clone())))
                            .collect(),
                    ),
                ),
                ("children".to_string(), JsonValue::Array(children)),
            ]
            .into_iter()
            .collect(),
        )
    }
    let recorded: std::collections::HashSet<SpanId> = spans.iter().map(|s| s.id).collect();
    let mut by_parent: std::collections::HashMap<SpanId, Vec<&Span>> =
        std::collections::HashMap::new();
    let mut roots = Vec::new();
    for span in spans {
        match span.parent.filter(|p| recorded.contains(p)) {
            Some(parent) => by_parent.entry(parent).or_default().push(span),
            None => roots.push(span),
        }
    }
    JsonValue::Array(roots.iter().map(|s| node(s, &by_parent)).collect())
}

/// `POST /v1/trace/{id}` — ingest externally-assembled spans (span JSONL,
/// as produced by `prov_telemetry::spans_jsonl`) under a trace id. This is
/// how a stitched distributed capture lands in the same store the server's
/// own request spans live in, so `GET /v1/trace/{id}` shows both.
fn trace_ingest_route(
    server: &ProvServer,
    id_hex: &str,
    body: &str,
) -> (u16, &'static str, String) {
    let Ok(trace_id) = TraceContext::parse_trace_id(id_hex) else {
        let err = ServerError::BadRequest(format!("malformed trace id '{id_hex}'"));
        return (
            err.status_code(),
            "application/json",
            wire::render_json(&wire::error_to_json(&err)),
        );
    };
    match prov_telemetry::spans_from_jsonl(body) {
        Ok(trace) => {
            let accepted = server.ingest_trace_spans(trace_id, trace.spans);
            let body = wire::render_json(&JsonValue::Object(
                [
                    (
                        "trace_id".to_string(),
                        JsonValue::String(format!("{trace_id:032x}")),
                    ),
                    ("accepted".to_string(), JsonValue::Number(accepted as f64)),
                ]
                .into_iter()
                .collect(),
            ));
            (200, "application/json", body)
        }
        Err(e) => {
            let err = ServerError::BadRequest(format!("bad span JSONL: {e}"));
            (
                err.status_code(),
                "application/json",
                wire::render_json(&wire::error_to_json(&err)),
            )
        }
    }
}

/// `GET /v1/slowlog/{ns}` — the namespace's slow-query log as JSONL.
fn slowlog_route(server: &ProvServer, namespace: &str) -> (u16, &'static str, String) {
    match server.slowlog_jsonl(namespace, prov_query::DEFAULT_JSONL_CAP) {
        Some(jsonl) => (200, "application/x-ndjson", jsonl),
        None => {
            let err = ServerError::NoSuchNamespace(namespace.to_string());
            (
                err.status_code(),
                "application/json",
                wire::render_json(&wire::error_to_json(&err)),
            )
        }
    }
}

fn route(server: &ProvServer, req: &HttpRequest) -> (u16, &'static str, String) {
    if req.method == "GET" {
        if let Some(id_hex) = req.path.strip_prefix("/v1/trace/") {
            return trace_route(server, id_hex);
        }
        if let Some(ns) = req.path.strip_prefix("/v1/slowlog/") {
            return slowlog_route(server, ns);
        }
    }
    if req.method == "POST" {
        if let Some(id_hex) = req.path.strip_prefix("/v1/trace/") {
            return trace_ingest_route(server, id_hex, &req.body);
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Liveness + readiness in one JSON body: `alive` is true
            // whenever we can answer at all; `ready` is false during WAL
            // replay and while any namespace is degraded read-only.
            let draining = server.is_shutting_down();
            let degraded = server.degraded_namespaces();
            let ready = server.is_ready() && !draining && degraded.is_empty();
            let namespaces = server
                .namespace_names()
                .iter()
                .filter_map(|name| namespace_health(server, name))
                .collect();
            let body = wire::render_json(&prov_telemetry::JsonValue::Object(
                [
                    ("alive".to_string(), prov_telemetry::JsonValue::Bool(true)),
                    ("ready".to_string(), prov_telemetry::JsonValue::Bool(ready)),
                    (
                        "draining".to_string(),
                        prov_telemetry::JsonValue::Bool(draining),
                    ),
                    (
                        "degraded".to_string(),
                        prov_telemetry::JsonValue::Array(
                            degraded
                                .into_iter()
                                .map(prov_telemetry::JsonValue::String)
                                .collect(),
                        ),
                    ),
                    (
                        "namespaces".to_string(),
                        prov_telemetry::JsonValue::Array(namespaces),
                    ),
                ]
                .into_iter()
                .collect(),
            ));
            (if ready { 200 } else { 503 }, "application/json", body)
        }
        ("GET", "/metrics" | "/v1/metrics") => {
            (200, "text/plain; version=0.0.4", server.render_metrics())
        }
        ("POST", "/v1/shutdown") => {
            server.begin_shutdown();
            (200, "application/json", "{\"draining\":true}".to_string())
        }
        ("POST", "/v1/create" | "/v1/ingest" | "/v1/query" | "/v1/stats") => {
            match api_request(&req.path, &req.body) {
                Ok(request) => match server.handle_traced(&request, trace_meta(req)) {
                    Ok(response) => (200, "application/json", render_response(&response)),
                    Err(err) => (
                        err.status_code(),
                        "application/json",
                        wire::render_json(&wire::error_to_json(&err)),
                    ),
                },
                Err(err) => (
                    err.status_code(),
                    "application/json",
                    wire::render_json(&wire::error_to_json(&err)),
                ),
            }
        }
        ("POST" | "GET", _) => (
            404,
            "application/json",
            wire::render_json(&wire::error_to_json(&ServerError::BadRequest(format!(
                "no such route {} {}",
                req.method, req.path
            )))),
        ),
        _ => (
            405,
            "application/json",
            wire::render_json(&wire::error_to_json(&ServerError::BadRequest(format!(
                "method {} not allowed",
                req.method
            )))),
        ),
    }
}

/// Decode one `/v1/*` body into a service [`Request`].
fn api_request(path: &str, body: &str) -> Result<Request, ServerError> {
    let v =
        parse_json(body).map_err(|e| ServerError::BadRequest(format!("invalid JSON body: {e}")))?;
    let tenant = v
        .get("tenant")
        .and_then(|t| t.as_str())
        .ok_or_else(|| ServerError::BadRequest("missing field 'tenant'".into()))?
        .to_string();
    let namespace = v
        .get("namespace")
        .and_then(|t| t.as_str())
        .ok_or_else(|| ServerError::BadRequest("missing field 'namespace'".into()))?
        .to_string();
    let body = match path {
        "/v1/create" => RequestBody::CreateNamespace,
        "/v1/ingest" => {
            let retro = v
                .get("retro")
                .ok_or_else(|| ServerError::BadRequest("missing field 'retro'".into()))?;
            RequestBody::Ingest {
                retro: Box::new(wire::retro_from_json(retro)?),
                request_id: v
                    .get("request_id")
                    .and_then(|r| r.as_str())
                    .map(str::to_string),
            }
        }
        "/v1/query" => RequestBody::Query {
            pql: v
                .get("pql")
                .and_then(|p| p.as_str())
                .ok_or_else(|| ServerError::BadRequest("missing field 'pql'".into()))?
                .to_string(),
        },
        "/v1/stats" => RequestBody::Stats,
        _ => unreachable!("route() only forwards known /v1 paths"),
    };
    Ok(Request {
        tenant,
        namespace,
        body,
    })
}

fn render_response(response: &ResponseBody) -> String {
    match response {
        ResponseBody::Created(ns) => wire::render_json(&prov_telemetry::JsonValue::Object(
            [(
                "created".to_string(),
                prov_telemetry::JsonValue::String(ns.clone()),
            )]
            .into_iter()
            .collect(),
        )),
        ResponseBody::Ingested(ack) => wire::render_json(&wire::ack_to_json(ack)),
        ResponseBody::Query(reply) => wire::render_json(&wire::reply_to_json(reply)),
        ResponseBody::Stats(stats) => wire::render_json(&wire::stats_to_json(stats)),
    }
}

// ---------------------------------------------------------------------------
// A tiny blocking client (shared by tests, provctl, and the load generator)
// ---------------------------------------------------------------------------

/// A minimal blocking HTTP/1.1 client for the routes above.
///
/// With [`HttpClient::with_retry`], connection-level failures and 5xx
/// responses are retried under a bounded, seeded backoff schedule — but
/// *only* for idempotent requests. An ingest is idempotent only when it
/// carries a request id (the server dedupes on it); without one, a failed
/// ingest is returned to the caller rather than risked twice.
#[derive(Debug, Clone)]
pub struct HttpClient {
    addr: SocketAddr,
    tenant: String,
    retry: Option<crate::retry::HttpRetry>,
    tracer: Option<Arc<ClientTracer>>,
}

/// Deterministic trace-id mint shared by every clone of a traced client:
/// one root context per *logical* request, sibling span ids per attempt.
#[derive(Debug)]
struct ClientTracer {
    seed: u64,
    counter: std::sync::atomic::AtomicU64,
}

/// A decoded HTTP response: status code + body text.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Raw response body.
    pub body: String,
    /// The trace id (32 hex chars) this request was issued under, when the
    /// client has tracing enabled — feed it to `GET /v1/trace/{id}`.
    pub trace_id: Option<String>,
}

impl HttpClient {
    /// A client for the server at `addr`, authenticating as `tenant`.
    pub fn new(addr: SocketAddr, tenant: &str) -> Self {
        HttpClient {
            addr,
            tenant: tenant.to_string(),
            retry: None,
            tracer: None,
        }
    }

    /// Enable bounded retries for idempotent requests.
    pub fn with_retry(mut self, retry: crate::retry::HttpRetry) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Propagate a W3C-style `traceparent` on every request, minting
    /// deterministic trace ids from `seed` (0 picks a time-derived seed).
    /// Retried attempts share the logical request's trace id and carry
    /// `tracestate: prov=attempt:N`, so the server links them as siblings.
    pub fn with_tracing(mut self, seed: u64) -> Self {
        let seed = if seed == 0 {
            wf_engine::event::now_micros() | 1
        } else {
            seed
        };
        self.tracer = Some(Arc::new(ClientTracer {
            seed,
            counter: std::sync::atomic::AtomicU64::new(0),
        }));
        self
    }

    /// The tenant this client sends as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Mint the root context for one logical request, if tracing is on.
    fn mint_context(&self) -> Option<TraceContext> {
        self.tracer.as_ref().map(|t| {
            let sequence = t.counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            TraceContext::root(t.seed, sequence)
        })
    }

    /// The propagation headers for one attempt of a traced request.
    fn trace_headers(context: Option<&TraceContext>, attempt: u32) -> Vec<(String, String)> {
        match context {
            Some(ctx) => vec![
                ("traceparent".to_string(), ctx.for_attempt(attempt).render()),
                ("tracestate".to_string(), render_tracestate_attempt(attempt)),
            ],
            None => Vec::new(),
        }
    }

    /// Issue `method path`, retrying per policy when `idempotent` — on
    /// connection-level errors and 5xx responses only; 4xx responses are
    /// the request's fault and return immediately.
    fn send(
        &self,
        method: &str,
        path: &str,
        body: &str,
        idempotent: bool,
    ) -> std::io::Result<HttpReply> {
        let context = self.mint_context();
        let trace_id = context.as_ref().map(TraceContext::trace_id_hex);
        let stamp = |outcome: std::io::Result<HttpReply>| {
            outcome.map(|mut reply| {
                reply.trace_id = trace_id.clone();
                reply
            })
        };
        let retry = self.retry.as_ref().filter(|_| idempotent);
        let mut attempt = 1u32;
        loop {
            let headers = Self::trace_headers(context.as_ref(), attempt);
            let outcome = self.request_once(method, path, body, &headers);
            let retryable = match &outcome {
                Ok(reply) => crate::retry::HttpRetry::should_retry_status(reply.status),
                Err(_) => true,
            };
            let Some(retry) = retry else {
                return stamp(outcome);
            };
            if !retryable || attempt >= retry.max_attempts {
                return stamp(outcome);
            }
            let backoff = retry.backoff_micros(attempt);
            if backoff > 0 {
                std::thread::sleep(Duration::from_micros(backoff));
            }
            attempt += 1;
        }
    }

    /// Raw single-shot request against any path (no retries, no trace).
    pub fn request(&self, method: &str, path: &str, body: &str) -> std::io::Result<HttpReply> {
        self.request_once(method, path, body, &[])
    }

    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: &str,
        extra_headers: &[(String, String)],
    ) -> std::io::Result<HttpReply> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut extras = String::new();
        for (name, value) in extra_headers {
            extras.push_str(name);
            extras.push_str(": ");
            extras.push_str(value);
            extras.push_str("\r\n");
        }
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: prov-server\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extras}Connection: close\r\n\r\n{body}",
            body.len()
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                break;
            }
            if header.trim_end().is_empty() {
                break;
            }
            if let Some((name, value)) = header.trim_end().split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length.min(MAX_BODY)];
        reader.read_exact(&mut body)?;
        Ok(HttpReply {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
            trace_id: None,
        })
    }

    fn post(
        &self,
        path: &str,
        mut fields: Vec<(&str, prov_telemetry::JsonValue)>,
        namespace: &str,
        idempotent: bool,
    ) -> std::io::Result<HttpReply> {
        fields.push((
            "tenant",
            prov_telemetry::JsonValue::String(self.tenant.clone()),
        ));
        fields.push((
            "namespace",
            prov_telemetry::JsonValue::String(namespace.to_string()),
        ));
        let body = wire::render_json(&prov_telemetry::JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ));
        self.send("POST", path, &body, idempotent)
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> std::io::Result<HttpReply> {
        self.request("GET", "/healthz", "")
    }

    /// `GET /metrics`.
    pub fn metrics(&self) -> std::io::Result<HttpReply> {
        self.send("GET", "/metrics", "", true)
    }

    /// `GET /v1/trace/{trace_id}` — the recorded span tree for a trace.
    pub fn trace(&self, trace_id: &str) -> std::io::Result<HttpReply> {
        self.request("GET", &format!("/v1/trace/{trace_id}"), "")
    }

    /// `GET /v1/slowlog/{namespace}` — the slow-query log as JSONL.
    pub fn slowlog(&self, namespace: &str) -> std::io::Result<HttpReply> {
        self.request("GET", &format!("/v1/slowlog/{namespace}"), "")
    }

    /// `POST /v1/create` (idempotent, retried under policy).
    pub fn create(&self, namespace: &str) -> std::io::Result<HttpReply> {
        self.post("/v1/create", Vec::new(), namespace, true)
    }

    /// `POST /v1/ingest` with no request id — **never retried**, because
    /// without an idempotency key a retry could apply the document twice.
    pub fn ingest(
        &self,
        namespace: &str,
        retro: &prov_core::model::RetrospectiveProvenance,
    ) -> std::io::Result<HttpReply> {
        self.post(
            "/v1/ingest",
            vec![("retro", wire::retro_to_json(retro))],
            namespace,
            false,
        )
    }

    /// `POST /v1/ingest` with a request id: the server dedupes on the id,
    /// so retries under policy are safe.
    pub fn ingest_with_id(
        &self,
        namespace: &str,
        retro: &prov_core::model::RetrospectiveProvenance,
        request_id: &str,
    ) -> std::io::Result<HttpReply> {
        self.post(
            "/v1/ingest",
            vec![
                ("retro", wire::retro_to_json(retro)),
                (
                    "request_id",
                    prov_telemetry::JsonValue::String(request_id.to_string()),
                ),
            ],
            namespace,
            true,
        )
    }

    /// `POST /v1/query` (idempotent, retried under policy).
    pub fn query(&self, namespace: &str, pql: &str) -> std::io::Result<HttpReply> {
        self.post(
            "/v1/query",
            vec![("pql", prov_telemetry::JsonValue::String(pql.to_string()))],
            namespace,
            true,
        )
    }

    /// `POST /v1/stats` (idempotent, retried under policy).
    pub fn stats(&self, namespace: &str) -> std::io::Result<HttpReply> {
        self.post("/v1/stats", Vec::new(), namespace, true)
    }

    /// `POST /v1/trace/{trace_id}` — ingest externally-assembled spans
    /// (span JSONL) under a trace id.
    pub fn ingest_trace(&self, trace_id: u128, span_jsonl: &str) -> std::io::Result<HttpReply> {
        self.request("POST", &format!("/v1/trace/{trace_id:032x}"), span_jsonl)
    }

    /// `POST /v1/shutdown`.
    pub fn shutdown(&self) -> std::io::Result<HttpReply> {
        self.request("POST", "/v1/shutdown", "{}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn retro(seed: u64) -> prov_core::model::RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        cap.take(r.exec).unwrap()
    }

    fn start() -> HttpServer {
        let server = Arc::new(ProvServer::new(ServerConfig::default()));
        HttpServer::bind(server, "127.0.0.1:0", 4).expect("bind ephemeral")
    }

    #[test]
    fn health_ingest_query_stats_over_http() {
        let http = start();
        let client = HttpClient::new(http.addr(), "alice");
        assert_eq!(client.healthz().unwrap().status, 200);

        let reply = client.ingest("lab", &retro(1)).unwrap();
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        let ack = wire::ack_from_json(&parse_json(&reply.body).unwrap()).unwrap();
        assert_eq!((ack.generation, ack.total_runs), (1, 8));

        let reply = client.query("lab", "count runs").unwrap();
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        let q = wire::reply_from_json(&parse_json(&reply.body).unwrap()).unwrap();
        assert_eq!(q.result, prov_query::QueryResult::Count(8));

        let reply = client.stats("lab").unwrap();
        assert_eq!(reply.status, 200);
        let stats = wire::stats_from_json(&parse_json(&reply.body).unwrap()).unwrap();
        assert_eq!(stats.runs, 8);
        assert_eq!(stats.store_runs, 8);

        let metrics = client.metrics().unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("prov_server_requests_total"));
        http.shutdown();
    }

    #[test]
    fn http_errors_carry_json_bodies_and_status_codes() {
        let http = start();
        let client = HttpClient::new(http.addr(), "alice");
        // Unknown namespace -> 404.
        let reply = client.query("ghost", "count runs").unwrap();
        assert_eq!(reply.status, 404);
        assert!(reply.body.contains("no_such_namespace"));
        // Bad PQL -> 422.
        client.ingest("lab", &retro(1)).unwrap();
        let reply = client.query("lab", "gibberish query").unwrap();
        assert_eq!(reply.status, 422);
        assert!(reply.body.contains("query_error"));
        // Invalid JSON -> 400.
        let reply = client.request("POST", "/v1/query", "{not json").unwrap();
        assert_eq!(reply.status, 400);
        // Unknown route -> 404.
        let reply = client.request("GET", "/nope", "").unwrap();
        assert_eq!(reply.status, 404);
        http.shutdown();
    }

    #[test]
    fn shutdown_endpoint_drains_the_server() {
        let http = start();
        let addr = http.addr();
        let client = HttpClient::new(addr, "alice");
        client.ingest("lab", &retro(1)).unwrap();
        let reply = client.shutdown().unwrap();
        assert_eq!(reply.status, 200);
        // After the drain flag, requests that still get through are 503s
        // until the listener closes; eventually connections are refused.
        http.shutdown();
        let still_healthy = HttpClient::new(addr, "alice")
            .healthz()
            .map(|r| r.status == 200)
            .unwrap_or(false);
        assert!(!still_healthy, "listener must be gone or draining");
    }

    #[test]
    fn healthz_reports_readiness_and_degradation() {
        use prov_store::{IoFault, IoFaultPlan};
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "prov-http-healthz-{}-{}",
            std::process::id(),
            wf_engine::event::now_millis()
        ));
        // Arm the WAL so the disk "fills up" after recovery: three
        // consecutive ENOSPC faults degrade the namespace to read-only.
        let config = ServerConfig {
            durability: Some(
                crate::durability::DurabilityConfig::new(&dir)
                    .fsync(prov_store::wal::FsyncPolicy::Never)
                    .fault_plan(
                        IoFaultPlan::new()
                            .at(10, IoFault::NoSpace)
                            .at(11, IoFault::NoSpace)
                            .at(12, IoFault::NoSpace),
                    ),
            ),
            ..ServerConfig::default()
        };
        let server = Arc::new(ProvServer::new(config));
        let http = HttpServer::bind(Arc::clone(&server), "127.0.0.1:0", 2).unwrap();
        let client = HttpClient::new(http.addr(), "alice");

        // Before recovery: alive but not ready, and the API refuses work.
        let reply = client.healthz().unwrap();
        assert_eq!(reply.status, 503, "body: {}", reply.body);
        let v = parse_json(&reply.body).unwrap();
        assert_eq!(v.get("alive").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("ready").and_then(|b| b.as_bool()), Some(false));
        let reply = client.ingest("lab", &retro(1)).unwrap();
        assert_eq!(reply.status, 503);
        assert!(reply.body.contains("not_ready"), "body: {}", reply.body);

        // After recovery: ready.
        server.recover().unwrap();
        let reply = client.healthz().unwrap();
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        let v = parse_json(&reply.body).unwrap();
        assert_eq!(v.get("ready").and_then(|b| b.as_bool()), Some(true));

        // Fill the "disk": three failed ingests degrade the namespace,
        // and readiness flips back off with the namespace named.
        for seed in 1..=3 {
            let reply = client.ingest("lab", &retro(seed)).unwrap();
            assert_eq!(reply.status, 500, "body: {}", reply.body);
        }
        let reply = client.healthz().unwrap();
        assert_eq!(reply.status, 503, "body: {}", reply.body);
        let v = parse_json(&reply.body).unwrap();
        assert_eq!(v.get("ready").and_then(|b| b.as_bool()), Some(false));
        let degraded = v.get("degraded").unwrap();
        assert_eq!(
            degraded.as_array().unwrap()[0].as_str(),
            Some("lab"),
            "body: {}",
            reply.body
        );
        http.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retries_are_bounded_and_skip_unidentified_ingest() {
        // A stub that answers every request 503: idempotent requests
        // should burn their full retry budget against it, while an ingest
        // without a request id must not be retried at all.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counted = Arc::clone(&hits);
        let stub = std::thread::spawn(move || {
            // 3 (query) + 1 (bare ingest) + 3 (ingest with id) = 7.
            for _ in 0..7 {
                let (mut stream, _) = listener.accept().unwrap();
                let _ = read_request(&mut stream);
                counted.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let _ = write_response(&mut stream, 503, "application/json", "{}");
            }
        });

        let client =
            HttpClient::new(addr, "alice").with_retry(crate::retry::HttpRetry::attempts(3));
        let reply = client.query("lab", "count runs").unwrap();
        assert_eq!(reply.status, 503, "budget exhausted, final reply surfaces");
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 3);

        // No request id: ambiguous failures could double-apply, so the
        // client refuses to retry — exactly one attempt.
        let reply = client.ingest("lab", &retro(1)).unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 4);

        // With a request id the server dedupes, so retrying is safe.
        let reply = client.ingest_with_id("lab", &retro(1), "req-1").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 7);
        stub.join().unwrap();
    }

    #[test]
    fn concurrent_http_clients_share_the_store() {
        let http = start();
        let addr = http.addr();
        let base = retro(1);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let base = base.clone();
                scope.spawn(move || {
                    let client = HttpClient::new(addr, &format!("tenant-{t}"));
                    let mut doc = base.clone();
                    doc.exec = wf_engine::ExecId(1000 + t);
                    let reply = client.ingest("shared", &doc).unwrap();
                    assert_eq!(reply.status, 200, "body: {}", reply.body);
                });
            }
        });
        let client = HttpClient::new(addr, "checker");
        let reply = client.stats("shared").unwrap();
        let stats = wire::stats_from_json(&parse_json(&reply.body).unwrap()).unwrap();
        assert_eq!(stats.executions, 4, "all four concurrent ingests landed");
        assert_eq!(stats.generation, 4);
        http.shutdown();
    }

    #[test]
    fn stitched_distributed_spans_ingest_and_read_back() {
        let trace_id: u128 = 0xabcd_0000_1234;
        // Capture a distributed run, stitch it, assemble the cross-worker
        // span tree — then push it to the server over HTTP.
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let dist = exec
            .run_distributed(
                &wf,
                wf_engine::DistribOptions::new(3).with_trace_id(trace_id),
            )
            .unwrap();
        let mut collector = prov_probe::Collector::new();
        for r in dist.reports {
            collector.ingest(r);
        }
        let trace = prov_telemetry::assemble_distributed(&collector.stitch());
        let jsonl = prov_telemetry::spans_jsonl(&trace);
        let n_spans = trace.spans.len();
        assert!(n_spans > 8, "run span + one per module");

        let http = start();
        let client = HttpClient::new(http.addr(), "alice");
        let reply = client.ingest_trace(trace_id, &jsonl).unwrap();
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        assert!(reply.body.contains(&format!("\"accepted\":{n_spans}")));

        let reply = client.trace(&format!("{trace_id:032x}")).unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"site\""), "spans keep site attrs");

        let reply = client.request("GET", "/v1/metrics", "").unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply
            .body
            .contains("prov_server_trace_spans_ingested_total"));
        assert!(reply.body.contains("prov_server_trace_evictions_total 0"));
        assert!(reply.body.contains("prov_server_trace_span_drops_total 0"));
        assert!(reply.body.contains("prov_server_traces_retained 1"));

        // Garbage bodies are rejected, malformed ids are rejected.
        let reply = client
            .ingest_trace(trace_id, "{\"span\":notjson}\n")
            .unwrap();
        assert_eq!(reply.status, 400);
        let reply = client.request("POST", "/v1/trace/zzz", &jsonl).unwrap();
        assert_eq!(reply.status, 400);
        http.shutdown();
    }
}
