//! Dependency-free binary codec for [`EngineEvent`].
//!
//! The distributed driver records engine events into per-worker probes as
//! opaque byte payloads; the stitcher decodes them back on the collector
//! side. The format is a compact hand-rolled little-endian encoding
//! (tagged by variant), so event streams cross process boundaries without
//! any serialization library in the loop.

use crate::event::{EngineEvent, ValueMeta};
use crate::exec::{ExecId, RunStatus};
use wf_model::{NodeId, ParamValue, WorkflowId};

/// Decoding failure for an event payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated,
    /// An unknown event or value tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated event payload"),
            WireError::BadTag(t) => write!(f, "unknown event tag {t}"),
            WireError::BadUtf8 => write!(f, "event string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn s(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v.as_bytes());
    }
    fn opt_s(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.s(s);
            }
        }
    }
    fn status(&mut self, v: RunStatus) {
        self.u8(match v {
            RunStatus::Succeeded => 0,
            RunStatus::Failed => 1,
            RunStatus::Skipped => 2,
        });
    }
    fn meta(&mut self, m: &ValueMeta) {
        self.s(&m.dtype);
        self.u64(m.hash);
        self.u64(m.size as u64);
        self.opt_s(m.preview.as_deref());
    }
    fn param(&mut self, p: &ParamValue) {
        match p {
            ParamValue::Bool(b) => {
                self.u8(0);
                self.u8(u8::from(*b));
            }
            ParamValue::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            ParamValue::Float(x) => {
                self.u8(2);
                self.f64(*x);
            }
            ParamValue::Text(s) => {
                self.u8(3);
                self.s(s);
            }
        }
    }
}

struct R<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn s(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| WireError::BadUtf8)
    }
    fn opt_s(&mut self) -> Result<Option<String>, WireError> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.s()?),
        })
    }
    fn status(&mut self) -> Result<RunStatus, WireError> {
        match self.u8()? {
            0 => Ok(RunStatus::Succeeded),
            1 => Ok(RunStatus::Failed),
            2 => Ok(RunStatus::Skipped),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn meta(&mut self) -> Result<ValueMeta, WireError> {
        Ok(ValueMeta {
            dtype: self.s()?,
            hash: self.u64()?,
            size: self.u64()? as usize,
            preview: self.opt_s()?,
        })
    }
    fn param(&mut self) -> Result<ParamValue, WireError> {
        match self.u8()? {
            0 => Ok(ParamValue::Bool(self.u8()? != 0)),
            1 => Ok(ParamValue::Int(self.i64()?)),
            2 => Ok(ParamValue::Float(self.f64()?)),
            3 => Ok(ParamValue::Text(self.s()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Encode one event as a self-contained binary payload.
pub fn encode_event(event: &EngineEvent) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(48));
    match event {
        EngineEvent::WorkflowStarted {
            exec,
            workflow,
            name,
            at_millis,
        } => {
            w.u8(0);
            w.u64(exec.0);
            w.u64(workflow.0);
            w.s(name);
            w.u64(*at_millis);
        }
        EngineEvent::ModuleStarted {
            exec,
            node,
            identity,
            params,
            at_millis,
        } => {
            w.u8(1);
            w.u64(exec.0);
            w.u64(node.0);
            w.s(identity);
            w.u32(params.len() as u32);
            for (k, v) in params {
                w.s(k);
                w.param(v);
            }
            w.u64(*at_millis);
        }
        EngineEvent::InputBound {
            exec,
            node,
            port,
            meta,
        } => {
            w.u8(2);
            w.u64(exec.0);
            w.u64(node.0);
            w.s(port);
            w.meta(meta);
        }
        EngineEvent::OutputProduced {
            exec,
            node,
            port,
            meta,
        } => {
            w.u8(3);
            w.u64(exec.0);
            w.u64(node.0);
            w.s(port);
            w.meta(meta);
        }
        EngineEvent::CacheChecked {
            exec,
            node,
            hit,
            elapsed_micros,
        } => {
            w.u8(4);
            w.u64(exec.0);
            w.u64(node.0);
            w.u8(u8::from(*hit));
            w.u64(*elapsed_micros);
        }
        EngineEvent::ModuleFinished {
            exec,
            node,
            status,
            elapsed_micros,
            from_cache,
            error,
        } => {
            w.u8(5);
            w.u64(exec.0);
            w.u64(node.0);
            w.status(*status);
            w.u64(*elapsed_micros);
            w.u8(u8::from(*from_cache));
            w.opt_s(error.as_deref());
        }
        EngineEvent::WorkflowFinished {
            exec,
            status,
            at_millis,
        } => {
            w.u8(6);
            w.u64(exec.0);
            w.status(*status);
            w.u64(*at_millis);
        }
        EngineEvent::AttemptStarted {
            exec,
            node,
            attempt,
        } => {
            w.u8(7);
            w.u64(exec.0);
            w.u64(node.0);
            w.u32(*attempt);
        }
        EngineEvent::AttemptFailed {
            exec,
            node,
            attempt,
            error,
            will_retry,
        } => {
            w.u8(8);
            w.u64(exec.0);
            w.u64(node.0);
            w.u32(*attempt);
            w.s(error);
            w.u8(u8::from(*will_retry));
        }
        EngineEvent::BackoffStarted {
            exec,
            node,
            next_attempt,
            delay_micros,
        } => {
            w.u8(9);
            w.u64(exec.0);
            w.u64(node.0);
            w.u32(*next_attempt);
            w.u64(*delay_micros);
        }
        EngineEvent::ModuleTimedOut {
            exec,
            node,
            attempt,
            limit_micros,
        } => {
            w.u8(10);
            w.u64(exec.0);
            w.u64(node.0);
            w.u32(*attempt);
            w.u64(*limit_micros);
        }
        EngineEvent::RunResumed {
            exec,
            resumed_from,
            reused,
        } => {
            w.u8(11);
            w.u64(exec.0);
            w.u64(resumed_from.0);
            w.u64(*reused as u64);
        }
    }
    w.0
}

/// Decode a payload produced by [`encode_event`].
pub fn decode_event(bytes: &[u8]) -> Result<EngineEvent, WireError> {
    let mut r = R { bytes, pos: 0 };
    let tag = r.u8()?;
    let event = match tag {
        0 => EngineEvent::WorkflowStarted {
            exec: ExecId(r.u64()?),
            workflow: WorkflowId(r.u64()?),
            name: r.s()?,
            at_millis: r.u64()?,
        },
        1 => {
            let exec = ExecId(r.u64()?);
            let node = NodeId(r.u64()?);
            let identity = r.s()?;
            let n = r.u32()? as usize;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.s()?;
                let v = r.param()?;
                params.push((k, v));
            }
            EngineEvent::ModuleStarted {
                exec,
                node,
                identity,
                params,
                at_millis: r.u64()?,
            }
        }
        2 => EngineEvent::InputBound {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            port: r.s()?,
            meta: r.meta()?,
        },
        3 => EngineEvent::OutputProduced {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            port: r.s()?,
            meta: r.meta()?,
        },
        4 => EngineEvent::CacheChecked {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            hit: r.u8()? != 0,
            elapsed_micros: r.u64()?,
        },
        5 => EngineEvent::ModuleFinished {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            status: r.status()?,
            elapsed_micros: r.u64()?,
            from_cache: r.u8()? != 0,
            error: r.opt_s()?,
        },
        6 => EngineEvent::WorkflowFinished {
            exec: ExecId(r.u64()?),
            status: r.status()?,
            at_millis: r.u64()?,
        },
        7 => EngineEvent::AttemptStarted {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            attempt: r.u32()?,
        },
        8 => EngineEvent::AttemptFailed {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            attempt: r.u32()?,
            error: r.s()?,
            will_retry: r.u8()? != 0,
        },
        9 => EngineEvent::BackoffStarted {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            next_attempt: r.u32()?,
            delay_micros: r.u64()?,
        },
        10 => EngineEvent::ModuleTimedOut {
            exec: ExecId(r.u64()?),
            node: NodeId(r.u64()?),
            attempt: r.u32()?,
            limit_micros: r.u64()?,
        },
        11 => EngineEvent::RunResumed {
            exec: ExecId(r.u64()?),
            resumed_from: ExecId(r.u64()?),
            reused: r.u64()? as usize,
        },
        t => return Err(WireError::BadTag(t)),
    };
    if r.pos != bytes.len() {
        return Err(WireError::Truncated);
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<EngineEvent> {
        vec![
            EngineEvent::WorkflowStarted {
                exec: ExecId(3),
                workflow: WorkflowId(9),
                name: "fig1".into(),
                at_millis: 1234,
            },
            EngineEvent::ModuleStarted {
                exec: ExecId(3),
                node: NodeId(1),
                identity: "Histogram@1".into(),
                params: vec![
                    ("bins".into(), ParamValue::Int(64)),
                    ("norm".into(), ParamValue::Bool(true)),
                    ("scale".into(), ParamValue::Float(0.5)),
                    ("label".into(), ParamValue::Text("hüst".into())),
                ],
                at_millis: 1235,
            },
            EngineEvent::InputBound {
                exec: ExecId(3),
                node: NodeId(1),
                port: "in".into(),
                meta: ValueMeta {
                    dtype: "grid".into(),
                    hash: 0xdead_beef,
                    size: 4096,
                    preview: None,
                },
            },
            EngineEvent::OutputProduced {
                exec: ExecId(3),
                node: NodeId(1),
                port: "out".into(),
                meta: ValueMeta {
                    dtype: "int".into(),
                    hash: 7,
                    size: 8,
                    preview: Some("7".into()),
                },
            },
            EngineEvent::CacheChecked {
                exec: ExecId(3),
                node: NodeId(1),
                hit: true,
                elapsed_micros: 12,
            },
            EngineEvent::ModuleFinished {
                exec: ExecId(3),
                node: NodeId(1),
                status: RunStatus::Failed,
                elapsed_micros: 99,
                from_cache: false,
                error: Some("boom".into()),
            },
            EngineEvent::WorkflowFinished {
                exec: ExecId(3),
                status: RunStatus::Succeeded,
                at_millis: 2000,
            },
            EngineEvent::AttemptStarted {
                exec: ExecId(3),
                node: NodeId(2),
                attempt: 2,
            },
            EngineEvent::AttemptFailed {
                exec: ExecId(3),
                node: NodeId(2),
                attempt: 2,
                error: "transient".into(),
                will_retry: true,
            },
            EngineEvent::BackoffStarted {
                exec: ExecId(3),
                node: NodeId(2),
                next_attempt: 3,
                delay_micros: 500,
            },
            EngineEvent::ModuleTimedOut {
                exec: ExecId(3),
                node: NodeId(2),
                attempt: 3,
                limit_micros: 1_000_000,
            },
            EngineEvent::RunResumed {
                exec: ExecId(4),
                resumed_from: ExecId(3),
                reused: 5,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for ev in samples() {
            let blob = encode_event(&ev);
            let back = decode_event(&blob).expect("decodes");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn truncation_and_bad_tags_are_rejected() {
        assert_eq!(decode_event(&[]).unwrap_err(), WireError::Truncated);
        assert_eq!(decode_event(&[200]).unwrap_err(), WireError::BadTag(200));
        for ev in samples() {
            let blob = encode_event(&ev);
            for cut in 0..blob.len() {
                assert!(decode_event(&blob[..cut]).is_err(), "prefix must fail");
            }
            let mut extended = blob.clone();
            extended.push(0);
            assert_eq!(
                decode_event(&extended).unwrap_err(),
                WireError::Truncated,
                "trailing bytes rejected"
            );
        }
    }
}
