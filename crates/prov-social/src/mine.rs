//! Provenance analytics: mining the corpus for knowledge re-use.
//!
//! §2.4: "The problem of mining and extracting knowledge from provenance
//! data has been largely unexplored. … Mining this data may also lead to
//! the discovery of patterns that can potentially simplify the notoriously
//! hard, time-consuming process of designing and refining scientific
//! workflows." The concrete application here is *completion
//! recommendation* ("users who connected X usually follow with Y"), with a
//! held-out accuracy evaluation — experiment E9.

use std::collections::BTreeMap;
use wf_model::Workflow;

/// Frequencies of module-level fragments mined from a corpus.
#[derive(Debug, Clone, Default)]
pub struct FragmentMiner {
    /// Directed pair counts: (from module, to module) → occurrences.
    pairs: BTreeMap<(String, String), usize>,
    /// Directed path-of-3 counts.
    triples: BTreeMap<(String, String, String), usize>,
    /// Workflows mined.
    pub corpus_size: usize,
}

impl FragmentMiner {
    /// Mine a corpus.
    pub fn mine(corpus: &[Workflow]) -> Self {
        let mut m = FragmentMiner {
            corpus_size: corpus.len(),
            ..Default::default()
        };
        for wf in corpus {
            m.add(wf);
        }
        m
    }

    /// Add one workflow to the statistics.
    pub fn add(&mut self, wf: &Workflow) {
        for c in wf.conns.values() {
            let (Ok(from), Ok(to)) = (wf.node(c.from.node), wf.node(c.to.node)) else {
                continue;
            };
            *self
                .pairs
                .entry((from.module.clone(), to.module.clone()))
                .or_default() += 1;
            // Extend to triples through `to`'s outgoing connections.
            for c2 in wf.outputs_of(c.to.node) {
                if let Ok(third) = wf.node(c2.to.node) {
                    *self
                        .triples
                        .entry((from.module.clone(), to.module.clone(), third.module.clone()))
                        .or_default() += 1;
                }
            }
        }
    }

    /// Ranked successor recommendations for a module: "after `module`,
    /// users usually add …". Ties broken alphabetically for determinism.
    pub fn recommend_successor(&self, module: &str) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .pairs
            .iter()
            .filter(|((from, _), _)| from == module)
            .map(|((_, to), n)| (to.clone(), *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Ranked recommendations conditioned on the *two* preceding modules
    /// (uses triple statistics, falling back to pairs).
    pub fn recommend_after(&self, prev: Option<&str>, module: &str) -> Vec<(String, usize)> {
        if let Some(p) = prev {
            let mut v: Vec<(String, usize)> = self
                .triples
                .iter()
                .filter(|((a, b, _), _)| a == p && b == module)
                .map(|((_, _, c), n)| (c.clone(), *n))
                .collect();
            if !v.is_empty() {
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                return v;
            }
        }
        self.recommend_successor(module)
    }

    /// All pairs with support ≥ `min_support`, most frequent first.
    pub fn frequent_pairs(&self, min_support: usize) -> Vec<((String, String), usize)> {
        let mut v: Vec<_> = self
            .pairs
            .iter()
            .filter(|(_, &n)| n >= min_support)
            .map(|(k, &n)| (k.clone(), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// All triples with support ≥ `min_support`, most frequent first.
    pub fn frequent_triples(&self, min_support: usize) -> Vec<((String, String, String), usize)> {
        let mut v: Vec<_> = self
            .triples
            .iter()
            .filter(|(_, &n)| n >= min_support)
            .map(|(k, &n)| (k.clone(), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of distinct mined pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }
}

/// Result of the held-out recommendation evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecommendationEval {
    /// Prediction trials performed.
    pub trials: usize,
    /// Trials where the true module was in the top-k recommendations.
    pub hits: usize,
    /// The k used.
    pub k: usize,
}

impl RecommendationEval {
    /// hit@k rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.hits as f64 / self.trials as f64
        }
    }
}

/// Leave-one-out evaluation: for every workflow, hide it from the miner,
/// then for each of its sink modules ask the miner to predict it from its
/// predecessor. Counts a hit when the true module appears in the top-`k`.
pub fn evaluate_recommender(corpus: &[Workflow], k: usize) -> RecommendationEval {
    let mut eval = RecommendationEval {
        k,
        ..Default::default()
    };
    for (i, held_out) in corpus.iter().enumerate() {
        let rest: Vec<Workflow> = corpus
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, w)| w.clone())
            .collect();
        let miner = FragmentMiner::mine(&rest);
        for sink in held_out.sink_nodes() {
            let Some(conn) = held_out.inputs_of(sink).next() else {
                continue;
            };
            let (Ok(pred), Ok(truth)) = (held_out.node(conn.from.node), held_out.node(sink)) else {
                continue;
            };
            let grand = held_out
                .inputs_of(pred.id)
                .next()
                .and_then(|c| held_out.node(c.from.node).ok())
                .map(|n| n.module.clone());
            let recs = miner.recommend_after(grand.as_deref(), &pred.module);
            eval.trials += 1;
            if recs.iter().take(k).any(|(m, _)| *m == truth.module) {
                eval.hits += 1;
            }
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;

    #[test]
    fn mining_counts_pairs_and_triples() {
        let corpus = build_corpus(1, 30);
        let miner = FragmentMiner::mine(&corpus);
        assert!(miner.pair_count() > 3);
        // LoadVolume is in every template; it must have successors.
        let recs = miner.recommend_successor("LoadVolume");
        assert!(!recs.is_empty());
        // Recommendations are sorted by support.
        assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(!miner.frequent_pairs(2).is_empty());
        assert!(!miner.frequent_triples(1).is_empty());
    }

    #[test]
    fn histogram_is_followed_by_plot() {
        let corpus = build_corpus(2, 50);
        let miner = FragmentMiner::mine(&corpus);
        let recs = miner.recommend_successor("Histogram");
        assert_eq!(
            recs[0].0, "PlotTable",
            "the corpus wires Histogram->PlotTable"
        );
    }

    #[test]
    fn triple_conditioning_beats_or_equals_pairs() {
        let corpus = build_corpus(3, 50);
        let miner = FragmentMiner::mine(&corpus);
        // After (Isosurface -> RenderMesh), SaveFile dominates.
        let recs = miner.recommend_after(Some("Isosurface"), "RenderMesh");
        assert!(!recs.is_empty());
        assert_eq!(recs[0].0, "SaveFile");
        // Unknown context falls back to pair statistics.
        let fallback = miner.recommend_after(Some("Nonexistent"), "RenderMesh");
        assert_eq!(fallback, miner.recommend_successor("RenderMesh"));
    }

    #[test]
    fn recommender_beats_chance_on_heldout_corpus() {
        let corpus = build_corpus(4, 40);
        let eval = evaluate_recommender(&corpus, 2);
        assert!(eval.trials > 10);
        assert!(
            eval.hit_rate() > 0.5,
            "hit@2 = {:.2} over {} trials",
            eval.hit_rate(),
            eval.trials
        );
    }

    #[test]
    fn more_data_does_not_hurt_much() {
        let small = evaluate_recommender(&build_corpus(5, 10), 3);
        let large = evaluate_recommender(&build_corpus(5, 60), 3);
        assert!(large.hit_rate() + 0.15 >= small.hit_rate());
    }

    #[test]
    fn empty_corpus_evaluates_to_zero() {
        let eval = evaluate_recommender(&[], 3);
        assert_eq!(eval.trials, 0);
        assert_eq!(eval.hit_rate(), 0.0);
    }
}
