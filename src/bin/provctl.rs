//! `provctl` — the command-line face of the platform.
//!
//! §2.4: "Information management systems are notoriously hard to use … As
//! the need for these systems grows … usability is of paramount
//! importance." This tool makes every capability reachable from a shell
//! over plain JSON files:
//!
//! ```text
//! provctl demo fig1 wf.json            # write a demo workflow spec
//! provctl validate wf.json             # check the spec against the catalog
//! provctl recipe wf.json               # render prospective provenance
//! provctl run wf.json prov.json        # execute, capture retrospective provenance
//! provctl run wf.json prov.json retries=2 timeout_ms=500   # with fault tolerance
//! provctl resumecheck old.json new.json # validate recovery lineage
//! provctl log prov.json                # render the execution log
//! provctl query prov.json "count runs" # PQL over captured provenance
//! provctl explain prov.json "lineage of artifact <digest>" analyze   # EXPLAIN / ANALYZE
//! provctl explain prov.json "count runs" analyze --optimized   # cost-based rewrites + indexes
//! provctl slowlog prov.json threshold_us=100   # slow-query log over a canned workload
//! provctl lineage prov.json <digest>   # lineage of an artifact
//! provctl dot prov.json                # causality graph as Graphviz DOT
//! provctl profile prov.json            # self time, critical path, utilization
//! provctl verify wf.json prov.json     # repeatability check
//! provctl trace wf.json trace.json     # run with telemetry, export Chrome trace
//! provctl tracecheck trace.json        # validate a Chrome trace file
//! provctl metrics wf.json              # run and print Prometheus metrics
//! provctl serve 127.0.0.1:7077         # long-running multi-tenant provenance server
//! provctl client 127.0.0.1:7077 ingest lab prov.json   # ship provenance to a server
//! provctl client 127.0.0.1:7077 query lab "count runs" # PQL against a server
//! ```

use provenance_workflows::prelude::*;
use provenance_workflows::telemetry;
use std::io::Write;
use std::process::ExitCode;

/// Print to stdout, exiting quietly on a broken pipe (e.g. `provctl … | head`).
fn out(text: &str) {
    let mut stdout = std::io::stdout().lock();
    let wrote = stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.flush());
    if let Err(e) = wrote {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: provctl <command> [args]\n\
         commands:\n\
         \x20 demo <fig1|fig2|challenge|db> <out.json>   write a demo workflow\n\
         \x20 validate <wf.json>                         validate against the standard catalog\n\
         \x20 recipe   <wf.json>                         render prospective provenance\n\
         \x20 run      <wf.json> <prov.json> [fine|coarse]\n\
         \x20          [retries=N] [timeout_ms=N]          execute and capture\n\
         \x20 resumecheck <original.json> <resumed.json>   validate recovery lineage\n\
         \x20 log      <prov.json>                       render the execution log\n\
         \x20 query    <prov.json...> [shards=N] <pql>   evaluate a PQL query (sharded when\n\
         \x20                                             shards=N, result-identical)\n\
         \x20 explain  <prov.json...> <pql> [analyze] [--optimized] [shards=N]\n\
         \x20          [backend=graph|triple|relational|log]  show the logical plan; with\n\
         \x20                                             'analyze', execute and annotate each\n\
         \x20                                             operator with rows/time/store accesses;\n\
         \x20                                             with '--optimized', apply cost-based\n\
         \x20                                             rewrites / the backend's index paths\n\
         \x20 slowlog  <prov.json...> [threshold_us=N] [out=<file.jsonl>]\n\
         \x20                                             run the canned query workload on every\n\
         \x20                                             backend, dump the slow-query log\n\
         \x20 lineage  <prov.json> <artifact-digest>     lineage of an artifact\n\
         \x20 dot      <prov.json>                       causality graph as DOT\n\
         \x20 wfdot    <wf.json>                         workflow spec as DOT\n\
         \x20 profile  <prov.json> [top=N]               self time, critical path, utilization\n\
         \x20 verify   <wf.json> <prov.json>             repeatability check\n\
         \x20 trace    <wf.json> <trace.json>\n\
         \x20          [spans=<file>] [threads=N]          run with telemetry, export Chrome trace\n\
         \x20 tracecheck <trace.json>                    validate a Chrome trace file\n\
         \x20 capture  <wf.json> <blob_dir> [workers=N] [ring=N]\n\
         \x20          [trace=<32hex|auto>] [unprobed]     run across simulated sites; each site's\n\
         \x20                                             probe log lands in <blob_dir>/site<i>.prb\n\
         \x20 stitch   <blob_dir|blob.prb...> [out=<prov.json>]\n\
         \x20                                             reassemble site reports (any order) into\n\
         \x20                                             one provenance record; prints gaps and\n\
         \x20                                             cross-site happens-before edges\n\
         \x20 metrics  <wf.json> [threads=N]             run and print Prometheus metrics\n\
         \x20 serve    <addr> [workers=N] [max_inflight=N]\n\
         \x20          [rate_per_sec=F] [burst=N]          serve ingest + PQL over HTTP/JSON\n\
         \x20          [shards=N]                          partition each namespace N ways and\n\
         \x20                                             answer queries by scatter-gather\n\
         \x20          [data_dir=DIR] [fsync=always|batch[:N[:US]]|never]\n\
         \x20          [checkpoint_every=N]                with data_dir, every acked ingest is\n\
         \x20                                             WAL-durable and replayed on restart\n\
         \x20                                             (blocks; stop with 'client ... shutdown')\n\
         \x20          [slowlog_capacity=N] [slowlog_threshold_us=N]\n\
         \x20          [trace_capacity=N] [shed_first=N]    observability knobs: slow-query ring\n\
         \x20                                             size/threshold, bounded trace store,\n\
         \x20                                             deterministic 503s for retry drills\n\
         \x20 recover  <data_dir>                        replay namespace WALs offline and report\n\
         \x20 client   <addr> <op> [args] [tenant=NAME] [traced]\n\
         \x20          [retries=N] [seed=N] [request_id=ID] talk to a running server; ops:\n\
         \x20          create <namespace>                  create a namespace\n\
         \x20          ingest <namespace> <prov.json...>   ship provenance documents\n\
         \x20          query  <namespace> <pql>            evaluate PQL remotely\n\
         \x20          stats  <namespace>                  namespace statistics\n\
         \x20          trace  <trace_id>                   fetch a recorded span tree\n\
         \x20          slowlog <namespace>                 fetch the slow-query log (JSONL)\n\
         \x20          health | metrics | shutdown         server-level operations\n\
         \x20          ('traced' propagates a W3C traceparent and prints the trace id)"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_workflow(path: &str) -> Result<Workflow, String> {
    Workflow::from_json(&read(path)?).map_err(|e| format!("bad workflow in {path}: {e}"))
}

fn load_prov(path: &str) -> Result<RetrospectiveProvenance, String> {
    let text = read(path)?;
    // Try the serde-free wire format first (written by `stitch out=` and
    // spoken by the server), then the serde at-rest format from `run`.
    if let Ok(v) = telemetry::parse_json(&text) {
        if let Ok(retro) = prov_server::wire::retro_from_json(&v) {
            return Ok(retro);
        }
    }
    RetrospectiveProvenance::from_json(&text).map_err(|e| format!("bad provenance in {path}: {e}"))
}

/// An empty store backend by name (the log backend is ephemeral — the
/// CLI workload exercises its scan profile, not its on-disk framing).
fn make_store(name: &str) -> Result<Box<dyn ProvenanceStore>, String> {
    Ok(match name {
        "graph" => Box::new(GraphStore::new()),
        "triple" => Box::new(TripleStore::new()),
        "relational" | "rel" => Box::new(RelStore::new()),
        "log" => Box::new(LogStore::ephemeral()),
        other => {
            return Err(format!(
                "unknown backend '{other}' (expected graph|triple|relational|log)"
            ))
        }
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["demo", which, out] => {
            let wf = match *which {
                "fig1" => wf_engine::synth::figure1_workflow(1).0,
                "fig2" => provenance_workflows::evolution::scenario::figure2_triple().2,
                "challenge" => wf_engine::synth::challenge_workflow(1, 4, 3),
                "db" => {
                    let mut b = WorkflowBuilder::new(1, "db-demo");
                    let a = b.add("TableSource");
                    b.param(a, "rows", 16i64);
                    let f = b.add("TableFilter");
                    b.param(f, "min", 40.0f64);
                    let g = b.add("TableAggregate");
                    b.connect(a, "out", f, "in").connect(f, "out", g, "in");
                    b.build()
                }
                other => return Err(format!("unknown demo '{other}'")),
            };
            std::fs::write(out, wf.to_json().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: '{}' ({} modules, {} connections)",
                wf.name,
                wf.node_count(),
                wf.conn_count()
            );
            Ok(())
        }
        ["validate", path] => {
            let wf = load_workflow(path)?;
            let registry = standard_registry();
            let report = validate(&wf, registry.catalog());
            if report.is_valid() {
                println!("{path}: valid ({} modules)", wf.node_count());
                Ok(())
            } else {
                Err(format!("{path}: INVALID\n{}", report.render()))
            }
        }
        ["recipe", path] => {
            let wf = load_workflow(path)?;
            out(&provenance_workflows::provenance::ProspectiveProvenance::of(&wf).render_recipe());
            Ok(())
        }
        ["run", wf_path, prov_path, rest @ ..] => {
            // Parse options before touching the filesystem so bad
            // arguments fail fast with a usage error.
            let mut level = CaptureLevel::Fine;
            let mut policy = ExecPolicy::new();
            for opt in rest {
                match *opt {
                    "fine" => level = CaptureLevel::Fine,
                    "coarse" => level = CaptureLevel::Coarse,
                    _ => {
                        let (key, value) = opt
                            .split_once('=')
                            .ok_or_else(|| format!("unknown run option '{opt}'"))?;
                        let n: u64 = value
                            .parse()
                            .map_err(|_| format!("{key} needs an integer, got '{value}'"))?;
                        policy = match key {
                            "retries" => {
                                // Bound the value so `attempts` (retries + 1)
                                // cannot overflow or sit in a pathological loop.
                                if n > 1_000 {
                                    return Err(format!("retries must be 0-1000, got {n}"));
                                }
                                policy.with_retry(
                                    RetryPolicy::attempts(n as u32 + 1)
                                        .backoff(10_000, 2.0, 1_000_000),
                                )
                            }
                            "timeout_ms" => policy.with_deadline(Deadline::millis(n)),
                            other => return Err(format!("unknown run option '{other}'")),
                        };
                    }
                }
            }
            let wf = load_workflow(wf_path)?;
            let exec = Executor::new(standard_registry()).with_policy(policy);
            let mut cap = ProvenanceCapture::new(level);
            let result = exec
                .run_observed(&wf, &mut cap)
                .map_err(|e| e.to_string())?;
            let retro = cap
                .take(result.exec)
                .ok_or_else(|| "capture produced no record".to_string())?;
            std::fs::write(prov_path, retro.to_json().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            println!(
                "{}: {} ({} module runs, {} artifacts) -> {prov_path}",
                wf.name,
                retro.status,
                retro.run_count(),
                retro.artifacts.len()
            );
            if retro.status != RunStatus::Succeeded {
                return Err("workflow failed (provenance captured)".into());
            }
            Ok(())
        }
        ["resumecheck", original_path, resumed_path] => {
            let original = load_prov(original_path)?;
            let resumed = load_prov(resumed_path)?;
            let check = check_resume(&original, &resumed);
            println!(
                "links back: {}\nreused outputs consistent: {}\nrecovered nodes: {}",
                check.links_back,
                check.reused_consistent,
                if check.recovered.is_empty() {
                    "none".to_string()
                } else {
                    check
                        .recovered
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            );
            if check.is_valid() {
                Ok(())
            } else {
                Err("resumed record is not a valid recovery of the original".into())
            }
        }
        ["log", path] => {
            out(&load_prov(path)?.render_log());
            Ok(())
        }
        ["query", middle @ .., pql] if !middle.is_empty() => {
            let mut shards = 1usize;
            let mut files: Vec<&str> = Vec::new();
            for a in middle {
                if let Some(v) = a.strip_prefix("shards=") {
                    shards = v
                        .parse()
                        .map_err(|_| format!("shards needs an integer, got '{v}'"))?;
                } else {
                    files.push(a);
                }
            }
            let result = if shards > 1 {
                let mut engine = ShardedEngine::new(shards);
                for p in &files {
                    engine.ingest(&load_prov(p)?);
                }
                engine.eval(pql).map_err(|e| e.to_string())?
            } else {
                let mut engine = PqlEngine::new();
                for p in &files {
                    engine.ingest(&load_prov(p)?);
                }
                engine.eval(pql).map_err(|e| e.to_string())?
            };
            out(&format!("{}\n", result.render()));
            Ok(())
        }
        ["explain", rest @ ..] => {
            // Positional args: provenance files then the query; options
            // ('analyze', '--optimized', 'backend=...') may follow the query.
            let mut analyze_mode = false;
            let mut optimized = false;
            let mut backend: Option<&str> = None;
            let mut shards = 1usize;
            let mut positional: Vec<&str> = Vec::new();
            for a in rest {
                match *a {
                    "analyze" => analyze_mode = true,
                    "--optimized" | "optimized" => optimized = true,
                    _ if a.starts_with("backend=") => backend = Some(&a["backend=".len()..]),
                    _ if a.starts_with("shards=") => {
                        shards = a["shards=".len()..]
                            .parse()
                            .map_err(|_| format!("shards needs an integer, got '{a}'"))?
                    }
                    _ => positional.push(a),
                }
            }
            let (pql, files) = positional.split_last().ok_or(
                "usage: explain <prov.json...> <pql> [analyze] [--optimized] [backend=...] [shards=N]",
            )?;
            if shards > 1 && backend.is_some() {
                return Err("shards= applies to the native engine (drop backend=)".into());
            }
            let query = parse_pql(pql).map_err(|e| e.to_string())?;
            match backend {
                None if !analyze_mode => {
                    if shards > 1 {
                        let mut engine = ShardedEngine::new(shards);
                        for p in files {
                            engine.ingest(&load_prov(p)?);
                        }
                        if optimized {
                            out(&engine.optimize(&query).render());
                        } else {
                            out(&engine.plan(&query).render());
                        }
                    } else if optimized {
                        // Cost decisions read the engine's statistics, so
                        // ingest whatever provenance was given (none is
                        // fine: structural rewrites still show).
                        let mut engine = PqlEngine::new();
                        for p in files {
                            engine.ingest(&load_prov(p)?);
                        }
                        out(&optimize_pql(&engine, &query).render());
                    } else {
                        out(&Plan::of(&query).render());
                    }
                }
                None => {
                    if files.is_empty() {
                        return Err("explain analyze needs at least one prov.json".into());
                    }
                    let analysis = if shards > 1 {
                        let mut engine = ShardedEngine::new(shards);
                        for p in files {
                            engine.ingest(&load_prov(p)?);
                        }
                        if optimized {
                            engine.analyze_optimized(&query)
                        } else {
                            engine.analyze(&query)
                        }
                    } else {
                        let mut engine = PqlEngine::new();
                        for p in files {
                            engine.ingest(&load_prov(p)?);
                        }
                        if optimized {
                            analyze_optimized(&engine, &query)
                        } else {
                            analyze(&engine, &query)
                        }
                    };
                    out(&analysis.map_err(|e| e.to_string())?.render());
                }
                Some(name) => {
                    if files.is_empty() {
                        return Err("explain backend=... needs at least one prov.json".into());
                    }
                    let mut store = make_store(name)?;
                    for p in files {
                        store.ingest(&load_prov(p)?);
                    }
                    store.set_optimized(optimized);
                    out(&analyze_store(store.as_ref(), &query)
                        .map_err(|e| e.to_string())?
                        .render());
                }
            }
            Ok(())
        }
        ["slowlog", rest @ ..] => {
            let mut threshold_us = 0u64;
            let mut out_path: Option<&str> = None;
            let mut files: Vec<&str> = Vec::new();
            for a in rest {
                if let Some(v) = a.strip_prefix("threshold_us=") {
                    threshold_us = v
                        .parse()
                        .map_err(|_| format!("threshold_us needs an integer, got '{v}'"))?;
                } else if let Some(v) = a.strip_prefix("out=") {
                    out_path = Some(v);
                } else {
                    files.push(a);
                }
            }
            if files.is_empty() {
                return Err("usage: slowlog <prov.json...> [threshold_us=N] [out=<file>]".into());
            }
            let mut engine = PqlEngine::new();
            let mut retros = Vec::new();
            for p in &files {
                let retro = load_prov(p)?;
                engine.ingest(&retro);
                retros.push(retro);
            }
            let mut obs = QueryObserver::new().with_slowlog(threshold_us, 256);
            // The canned workload: the Provenance Challenge question shapes
            // over the first few artifacts, on the engine and every backend.
            let digests: Vec<String> = retros
                .iter()
                .flat_map(|r| r.artifacts.values())
                .take(4)
                .map(|a| a.digest())
                .collect();
            let mut engine_queries = vec!["count runs".to_string(), "list runs".to_string()];
            for d in &digests {
                engine_queries.push(format!("lineage of artifact {d}"));
                engine_queries.push(format!("impact of artifact {d}"));
            }
            for q in &engine_queries {
                let parsed = parse_pql(q).map_err(|e| e.to_string())?;
                obs.eval_observed(&engine, &parsed)
                    .map_err(|e| e.to_string())?;
            }
            for name in ["graph", "triple", "relational", "log"] {
                let mut store = make_store(name)?;
                for r in &retros {
                    store.ingest(r);
                }
                let mut store_queries = vec!["count runs".to_string()];
                for d in &digests {
                    store_queries.push(format!("lineage of artifact {d}"));
                    store_queries.push(format!("lineage of artifact {d} depth 1"));
                    store_queries.push(format!("impact of artifact {d}"));
                }
                for q in &store_queries {
                    let parsed = parse_pql(q).map_err(|e| e.to_string())?;
                    obs.eval_store_observed(store.as_ref(), name, &parsed)
                        .map_err(|e| e.to_string())?;
                }
            }
            out(&obs.slowlog.render());
            if let Some(p) = out_path {
                // Cap the dump so a huge ring never writes an unbounded
                // file; newest entries win within the byte budget.
                let jsonl = obs.slowlog.to_jsonl_capped(prov_query::DEFAULT_JSONL_CAP);
                std::fs::write(p, jsonl).map_err(|e| e.to_string())?;
                println!("slow-query log (JSONL) -> {p}");
            }
            Ok(())
        }
        ["lineage", path, digest] => {
            let retro = load_prov(path)?;
            let mut engine = PqlEngine::new();
            engine.ingest(&retro);
            let result = engine
                .eval(&format!("lineage of artifact {digest}"))
                .map_err(|e| e.to_string())?;
            out(&format!("{}\n", result.render()));
            Ok(())
        }
        ["wfdot", path] => {
            let wf = load_workflow(path)?;
            out(&wf.render_dot());
            Ok(())
        }
        ["dot", path] => {
            let retro = load_prov(path)?;
            out(&CausalityGraph::from_retrospective(&retro).render_dot());
            Ok(())
        }
        ["profile", path, rest @ ..] => {
            let mut top = 5usize;
            for opt in rest {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("unknown profile option '{opt}'"))?;
                match key {
                    "top" => {
                        top = value
                            .parse()
                            .map_err(|_| format!("top needs an integer, got '{value}'"))?
                    }
                    other => return Err(format!("unknown profile option '{other}'")),
                }
            }
            let retro = load_prov(path)?;
            out(&profile_retro(&retro).render(top));
            Ok(())
        }
        ["trace", wf_path, trace_path, rest @ ..] => {
            let wf = load_workflow(wf_path)?;
            let mut threads = 1usize;
            let mut spans_path: Option<&str> = None;
            for opt in rest {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("unknown trace option '{opt}'"))?;
                match key {
                    "threads" => {
                        threads = value
                            .parse()
                            .map_err(|_| format!("threads needs an integer, got '{value}'"))?
                    }
                    "spans" => spans_path = Some(value),
                    other => return Err(format!("unknown trace option '{other}'")),
                }
            }
            // Telemetry rides alongside provenance capture on one fan-out:
            // the run is observed once, consumed twice.
            let exec = Executor::new(standard_registry());
            let mut tel = Telemetry::new();
            let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse).with_threads(threads);
            let result = {
                let mut fan = FanoutObserver::new().with(&mut tel).with(&mut cap);
                if threads > 1 {
                    exec.run_parallel(&wf, threads, &mut fan)
                } else {
                    exec.run_observed(&wf, &mut fan)
                }
                .map_err(|e| e.to_string())?
            };
            let trace = tel.take_trace();
            let json = telemetry::chrome_trace_json(&trace);
            let events = telemetry::validate_chrome_trace(&json)?;
            std::fs::write(trace_path, &json).map_err(|e| e.to_string())?;
            if let Some(p) = spans_path {
                std::fs::write(p, telemetry::spans_jsonl(&trace)).map_err(|e| e.to_string())?;
            }
            let profile = profile_result(&result, &wf, threads);
            println!(
                "{}: {} ({} spans -> {trace_path}{})",
                wf.name,
                result.status,
                events,
                spans_path
                    .map(|p| format!(", span log -> {p}"))
                    .unwrap_or_default(),
            );
            println!(
                "wall {} us, work {} us, critical {} us, speedup {:.2}x, utilization {:.0}%",
                profile.wall_micros,
                profile.total_work_micros,
                profile.critical_micros,
                profile.speedup(),
                profile.utilization() * 100.0,
            );
            Ok(())
        }
        ["tracecheck", path] => {
            let events = telemetry::validate_chrome_trace(&read(path)?)?;
            println!("{path}: valid Chrome trace ({events} events)");
            Ok(())
        }
        ["capture", wf_path, blob_dir, rest @ ..] => {
            let mut workers = 4usize;
            let mut ring = provenance_workflows::probe::DEFAULT_RING_CAPACITY;
            let mut trace_id: u128 = 0;
            let mut probed = true;
            for opt in rest {
                if *opt == "unprobed" {
                    probed = false;
                    continue;
                }
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("unknown capture option '{opt}'"))?;
                match key {
                    "workers" => {
                        workers = value
                            .parse()
                            .map_err(|_| format!("workers needs an integer, got '{value}'"))?
                    }
                    "ring" => {
                        ring = value
                            .parse()
                            .map_err(|_| format!("ring needs an integer, got '{value}'"))?
                    }
                    "trace" => {
                        trace_id = if value == "auto" {
                            telemetry::TraceContext::root(workers as u64, 1).trace_id
                        } else {
                            telemetry::TraceContext::parse_trace_id(value)
                                .map_err(|e| e.to_string())?
                        }
                    }
                    other => return Err(format!("unknown capture option '{other}'")),
                }
            }
            // Built-in names keep the distributed smoke path free of the
            // JSON workflow loader; any other argument is a file path.
            let wf = match *wf_path {
                "fig1" => provenance_workflows::engine::synth::figure1_workflow(1).0,
                "challenge" => provenance_workflows::engine::synth::challenge_workflow(1, 3, 2),
                path => load_workflow(path)?,
            };
            let exec = Executor::new(standard_registry());
            let mut opts = DistribOptions::new(workers)
                .with_ring_capacity(ring)
                .with_trace_id(trace_id);
            if !probed {
                opts = opts.unprobed();
            }
            let dist = exec.run_distributed(&wf, opts).map_err(|e| e.to_string())?;
            std::fs::create_dir_all(blob_dir).map_err(|e| e.to_string())?;
            for r in &dist.reports {
                let path = format!("{blob_dir}/site{}.prb", r.probe.0);
                std::fs::write(&path, r.encode()).map_err(|e| e.to_string())?;
            }
            println!(
                "{}: {} ({} modules across {} sites, {} report blobs) -> {blob_dir}",
                wf.name,
                dist.result.status,
                wf.node_count(),
                workers,
                dist.reports.len()
            );
            if trace_id != 0 {
                println!("trace {trace_id:032x}");
            }
            if dist.result.status != RunStatus::Succeeded {
                return Err("workflow failed (reports captured)".into());
            }
            Ok(())
        }
        ["stitch", rest @ ..] if !rest.is_empty() => {
            let mut blob_paths: Vec<String> = Vec::new();
            let mut out_path: Option<&str> = None;
            for opt in rest {
                if let Some(v) = opt.strip_prefix("out=") {
                    out_path = Some(v);
                    continue;
                }
                let meta = std::fs::metadata(opt).map_err(|e| format!("cannot stat {opt}: {e}"))?;
                if meta.is_dir() {
                    let mut found = Vec::new();
                    for entry in
                        std::fs::read_dir(opt).map_err(|e| format!("cannot list {opt}: {e}"))?
                    {
                        let p = entry.map_err(|e| e.to_string())?.path();
                        if p.extension().and_then(|e| e.to_str()) == Some("prb") {
                            found.push(p.to_string_lossy().into_owned());
                        }
                    }
                    found.sort();
                    if found.is_empty() {
                        return Err(format!("{opt}: no .prb report blobs"));
                    }
                    blob_paths.extend(found);
                } else {
                    blob_paths.push((*opt).to_string());
                }
            }
            if blob_paths.is_empty() {
                return Err("usage: stitch <blob_dir|blob.prb...> [out=<prov.json>]".into());
            }
            let mut collector = provenance_workflows::probe::Collector::new();
            for p in &blob_paths {
                let bytes = std::fs::read(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                if let Err(e) = collector.ingest_blob(&bytes) {
                    eprintln!("{p}: {e} (ignored)");
                }
            }
            let stitched = collector.stitch();
            let sp = provenance_workflows::provenance::stitch_provenance(&stitched);
            println!(
                "stitched {} sites, {} log entries, {} duplicates, {} conflicts",
                collector.probe_count(),
                collector.entry_count(),
                sp.duplicates,
                sp.conflicts
            );
            for gap in &sp.gaps {
                println!("gap: {gap}");
            }
            out(&sp.render_hb());
            if let Some(t) = sp.trace_id {
                println!("trace {t:032x}");
            }
            let Some(retro) = sp.retro() else {
                return Err("stitch recovered no complete run record".into());
            };
            println!(
                "{}: {} ({} module runs, {} artifacts)",
                retro.workflow_name,
                retro.status,
                retro.run_count(),
                retro.artifacts.len()
            );
            if let Some(out_path) = out_path {
                let json = prov_server::wire::render_json(&prov_server::wire::retro_to_json(retro));
                std::fs::write(out_path, json).map_err(|e| e.to_string())?;
                println!("stitched provenance -> {out_path}");
            }
            Ok(())
        }
        ["metrics", wf_path, rest @ ..] => {
            let wf = load_workflow(wf_path)?;
            let mut threads = 1usize;
            for opt in rest {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("unknown metrics option '{opt}'"))?;
                match key {
                    "threads" => {
                        threads = value
                            .parse()
                            .map_err(|_| format!("threads needs an integer, got '{value}'"))?
                    }
                    other => return Err(format!("unknown metrics option '{other}'")),
                }
            }
            let exec = Executor::new(standard_registry()).with_cache(256);
            let mut m = MetricsObserver::new();
            if threads > 1 {
                exec.run_parallel(&wf, threads, &mut m)
            } else {
                exec.run_observed(&wf, &mut m)
            }
            .map_err(|e| e.to_string())?;
            out(&m.render_prometheus());
            Ok(())
        }
        ["verify", wf_path, prov_path] => {
            let wf = load_workflow(wf_path)?;
            let retro = load_prov(prov_path)?;
            let exec = Executor::new(standard_registry());
            let report =
                provenance_workflows::provenance::repro::verify_reproduction(&exec, &wf, &retro)
                    .map_err(|e| e.to_string())?;
            println!("{report}");
            if report.is_exact() {
                Ok(())
            } else {
                for m in report.mismatches() {
                    eprintln!(
                        "  mismatch at {}.{}: recorded {:016x}, got {}",
                        m.node,
                        m.port,
                        m.expected,
                        m.actual
                            .map(|h| format!("{h:016x}"))
                            .unwrap_or_else(|| "<missing>".into())
                    );
                }
                Err("reproduction failed".into())
            }
        }
        ["serve", addr, rest @ ..] => {
            let mut config = prov_server::ServerConfig::default();
            let mut workers = 8usize;
            for opt in rest {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| format!("unknown serve option '{opt}'"))?;
                match key {
                    "workers" => {
                        workers = value
                            .parse()
                            .map_err(|_| format!("workers needs an integer, got '{value}'"))?
                    }
                    "max_inflight" => {
                        config.max_inflight = value
                            .parse()
                            .map_err(|_| format!("max_inflight needs an integer, got '{value}'"))?
                    }
                    "rate_per_sec" => {
                        config.tenant_rate_per_sec = value
                            .parse()
                            .map_err(|_| format!("rate_per_sec needs a number, got '{value}'"))?
                    }
                    "burst" => {
                        config.tenant_burst = value
                            .parse()
                            .map_err(|_| format!("burst needs an integer, got '{value}'"))?
                    }
                    "shards" => {
                        config.shards = value
                            .parse()
                            .map_err(|_| format!("shards needs an integer, got '{value}'"))?
                    }
                    "data_dir" => {
                        let dur = config
                            .durability
                            .take()
                            .unwrap_or_else(|| prov_server::DurabilityConfig::new(value));
                        config.durability = Some(prov_server::DurabilityConfig {
                            data_dir: value.into(),
                            ..dur
                        });
                    }
                    "fsync" => {
                        let policy = prov_store::wal::FsyncPolicy::parse(value)
                            .map_err(|e| format!("bad fsync policy '{value}': {e}"))?;
                        let dur = config.durability.ok_or_else(|| {
                            "fsync= requires data_dir= (give data_dir first)".to_string()
                        })?;
                        config.durability = Some(dur.fsync(policy));
                    }
                    "checkpoint_every" => {
                        let every: u64 = value.parse().map_err(|_| {
                            format!("checkpoint_every needs an integer, got '{value}'")
                        })?;
                        let dur = config.durability.ok_or_else(|| {
                            "checkpoint_every= requires data_dir= (give data_dir first)".to_string()
                        })?;
                        config.durability = Some(dur.checkpoint_every(every));
                    }
                    "slowlog_capacity" => {
                        config.slowlog_capacity = value.parse().map_err(|_| {
                            format!("slowlog_capacity needs an integer, got '{value}'")
                        })?
                    }
                    "slowlog_threshold_us" => {
                        config.slowlog_threshold_micros = value.parse().map_err(|_| {
                            format!("slowlog_threshold_us needs an integer, got '{value}'")
                        })?
                    }
                    "trace_capacity" => {
                        config.trace_capacity = value.parse().map_err(|_| {
                            format!("trace_capacity needs an integer, got '{value}'")
                        })?
                    }
                    "shed_first" => {
                        // Deterministic fault hook: shed the first N API
                        // requests with 503, so retry/trace behaviour can
                        // be exercised without a real overload.
                        config.shed_first = value
                            .parse()
                            .map_err(|_| format!("shed_first needs an integer, got '{value}'"))?
                    }
                    other => return Err(format!("unknown serve option '{other}'")),
                }
            }
            let durable = config.durability.is_some();
            let server = std::sync::Arc::new(prov_server::ProvServer::new(config));
            if durable {
                // Replay WALs before accepting traffic; until this
                // finishes the server answers 503 not_ready.
                let reports = server
                    .recover()
                    .map_err(|e| format!("recovery failed: {e}"))?;
                for r in &reports {
                    out(&format!("recovered {}\n", r.render()));
                }
            }
            let http = prov_server::HttpServer::bind(server, addr, workers)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            out(&format!("prov-server listening on {}\n", http.addr()));
            http.join();
            out("prov-server stopped\n");
            Ok(())
        }
        ["recover", data_dir] => {
            // Offline inspection: replay every namespace WAL under
            // `data_dir` into fresh stores and report what survived,
            // without serving anything.
            let config = prov_server::ServerConfig {
                durability: Some(prov_server::DurabilityConfig::new(*data_dir)),
                ..prov_server::ServerConfig::default()
            };
            let server = std::sync::Arc::new(prov_server::ProvServer::new(config));
            let reports = server
                .recover()
                .map_err(|e| format!("recovery failed: {e}"))?;
            if reports.is_empty() {
                out(&format!("no namespaces under {data_dir}\n"));
                return Ok(());
            }
            for r in &reports {
                out(&format!("{}\n", r.render()));
            }
            Ok(())
        }
        ["client", addr, rest @ ..] => {
            let mut tenant = "cli";
            let mut retries = 0u32;
            let mut seed = 0u64;
            let mut traced = false;
            let mut request_id: Option<&str> = None;
            let mut args: Vec<&str> = Vec::new();
            for a in rest {
                if let Some(v) = a.strip_prefix("tenant=") {
                    tenant = v;
                } else if let Some(v) = a.strip_prefix("retries=") {
                    retries = v
                        .parse()
                        .map_err(|_| format!("retries needs an integer, got '{v}'"))?;
                } else if let Some(v) = a.strip_prefix("seed=") {
                    seed = v
                        .parse()
                        .map_err(|_| format!("seed needs an integer, got '{v}'"))?;
                } else if let Some(v) = a.strip_prefix("request_id=") {
                    request_id = Some(v);
                } else if *a == "traced" {
                    traced = true;
                } else {
                    args.push(a);
                }
            }
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|_| format!("bad server address '{addr}' (expected host:port)"))?;
            let mut client = prov_server::HttpClient::new(addr, tenant);
            if retries > 0 {
                // Bounded, seeded backoff; only idempotent requests are
                // retried (ingest needs request_id= to qualify).
                client = client.with_retry(
                    prov_server::HttpRetry::attempts(1 + retries)
                        .backoff(50_000, 2.0, 2_000_000)
                        .jitter(0.25)
                        .seeded(seed),
                );
            }
            if traced {
                // Propagate traceparent so the server records this
                // request's spans; the trace id is printed afterwards and
                // feeds `client <addr> trace <id>`.
                client = client.with_tracing(seed);
            }
            let reply = match args.as_slice() {
                ["health"] => client.healthz(),
                ["metrics"] => client.metrics(),
                ["shutdown"] => client.shutdown(),
                ["trace", trace_id] => client.trace(trace_id),
                ["slowlog", namespace] => client.slowlog(namespace),
                ["create", namespace] => client.create(namespace),
                ["stats", namespace] => client.stats(namespace),
                ["query", namespace, pql] => client.query(namespace, pql),
                ["ingest", namespace, files @ ..] if !files.is_empty() => {
                    let mut last = None;
                    for (i, p) in files.iter().enumerate() {
                        let retro = load_prov(p)?;
                        let reply = match request_id {
                            // A request id makes the ingest
                            // idempotent (and thus safely retried);
                            // multiple files get distinct ids.
                            Some(id) => {
                                client.ingest_with_id(namespace, &retro, &format!("{id}-{i}"))
                            }
                            None => client.ingest(namespace, &retro),
                        }
                        .map_err(|e| format!("cannot reach server: {e}"))?;
                        if reply.status != 200 {
                            return Err(format!(
                                "server rejected {p} (HTTP {}): {}",
                                reply.status, reply.body
                            ));
                        }
                        last = Some(reply);
                    }
                    Ok(last.expect("files is non-empty"))
                }
                _ => {
                    return Err(
                        "usage: client <addr> <create|ingest|query|stats|health|metrics|trace|\
                         slowlog|shutdown> [args] [tenant=NAME] [traced]"
                            .into(),
                    )
                }
            }
            .map_err(|e| format!("cannot reach server: {e}"))?;
            out(&format!("{}\n", reply.body.trim_end()));
            if let Some(id) = &reply.trace_id {
                eprintln!("trace_id: {id}");
            }
            if reply.status == 200 {
                Ok(())
            } else {
                Err(format!("server returned HTTP {}", reply.status))
            }
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("provctl: {msg}");
            }
            ExitCode::FAILURE
        }
    }
}
