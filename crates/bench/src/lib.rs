//! # bench — experiment harnesses
//!
//! One function per experiment of DESIGN.md §3 (E1–E12, plus the E2b and
//! E4b ablations). Each returns
//! structured rows so that (a) the `report` binary can print the tables
//! recorded in EXPERIMENTS.md and (b) the Criterion benches can reuse the
//! same workload constructors.
//!
//! The source paper is a tutorial without numeric tables; these experiments
//! quantify each *claim* the tutorial makes about the design space (see
//! DESIGN.md §3 for the mapping and the expected qualitative shapes).

pub mod distrib;
pub mod experiments;
pub mod faults;
pub mod optimizer;
pub mod queryobs;
pub mod shardbench;
pub mod telemetry;

pub use distrib::*;
pub use experiments::*;
pub use faults::*;
pub use optimizer::*;
pub use queryobs::*;
pub use shardbench::*;
pub use telemetry::*;

/// Median wall-clock time of `f` over `reps` runs, in microseconds.
/// The first (warm-up) run is discarded.
pub fn time_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    let _ = f(); // warm-up
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(out);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Render a table: header + rows of equal arity, columns padded.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_us_returns_positive_median() {
        let t = time_us(3, || (0..1000u64).sum::<u64>());
        assert!(t > 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }
}
