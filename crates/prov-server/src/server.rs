//! The concurrent multi-tenant provenance service.
//!
//! [`ProvServer`] owns the stores. Clients — in-process [`Session`]s or
//! the HTTP front end (`crate::http`) — send [`Request`]s; the server
//! applies admission control, per-tenant rate limits, and namespace
//! isolation, then serves ingest and PQL against shared state:
//!
//! * each [`Namespace`] owns one `RwLock`ed PQL engine (ingest = write
//!   lock, queries = read lock, generation bumps under the write lock) —
//!   a single [`PqlEngine`] by default, or a scatter-gather
//!   [`ShardedEngine`] when the server runs with
//!   [`ServerConfig::shards`]` > 1` — and one [`SharedStore<GraphStore>`]
//!   answering the canned store queries;
//! * a bounded admission window ([`crate::admission::Admission`]) sheds
//!   load with explicit 503-style rejections instead of queueing;
//! * a token-bucket [`crate::admission::RateLimiter`] isolates tenants;
//! * every query lands one request-scoped span in the namespace's
//!   [`QueryObserver`], all feeding one server-wide [`MetricsRegistry`].
//!
//! Store counters are relaxed atomics (see `prov_store::stats`), so the
//! *totals* stay exact under any interleaving of concurrent readers;
//! per-operator ANALYZE attribution is exact whenever a query runs without
//! overlapping readers on the same namespace.

use crate::admission::{Admission, RateLimiter};
use crate::durability::{self, DurabilityConfig, RecoveryReport, READ_ONLY_AFTER};
use crate::error::ServerError;
use crate::trace::{StoredTrace, TraceStore, DEFAULT_TRACE_CAPACITY};
use prov_core::model::RetrospectiveProvenance;
use prov_query::{
    analyze_optimized, parse, Analysis, PqlEngine, PqlError, Query, QueryCache, QueryObserver,
    QueryResult, ShardedEngine,
};
use prov_store::wal::NamespaceWal;
use prov_store::{GraphStore, ProvenanceStore, SharedStore};
use prov_telemetry::{
    Counter, Gauge, Histogram, MetricsRegistry, Span, SpanId, SpanKind, Trace, TraceContext,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use wf_engine::event::now_micros;
use wf_engine::ExecId;

/// Tuning knobs for a [`ProvServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum requests served concurrently before 503-style rejection.
    pub max_inflight: usize,
    /// Token-bucket burst per `(tenant, namespace)`.
    pub tenant_burst: u32,
    /// Steady-state requests/second per `(tenant, namespace)`;
    /// `0.0` disables rate limiting (the single-user default).
    pub tenant_rate_per_sec: f64,
    /// Bounded LRU query-result cache entries per namespace.
    pub cache_capacity: usize,
    /// Slow-query log admission threshold in microseconds.
    pub slowlog_threshold_micros: u64,
    /// Slow-query log ring-buffer entries retained per namespace.
    pub slowlog_capacity: usize,
    /// Distinct distributed traces retained for `/v1/trace/{id}` (oldest
    /// evicted first).
    pub trace_capacity: usize,
    /// Publish per-`(tenant, namespace)` labeled request/cache/shed
    /// metrics. Off turns the whole tenant-label plane into no-ops (the
    /// global `prov_server_requests_total` family still updates).
    pub per_tenant_metrics: bool,
    /// Deterministically shed the first N admitted requests with an
    /// `Overloaded` rejection — a fault hook (like
    /// `DurabilityConfig::fault_plan`) that lets tests and CI force a
    /// client retry without racing real overload.
    pub shed_first: u64,
    /// Create namespaces on first ingest (`true`) or require explicit
    /// [`RequestBody::CreateNamespace`] (`false`).
    pub auto_create_namespaces: bool,
    /// Persist namespaces through per-namespace write-ahead logs. `None`
    /// (the default) keeps every namespace in volatile memory. When set,
    /// the server starts *not ready* and [`ProvServer::recover`] must run
    /// before requests are served.
    pub durability: Option<DurabilityConfig>,
    /// Partitions per namespace engine. `1` (the default) keeps the
    /// single [`PqlEngine`]; `N > 1` backs every namespace with a
    /// [`ShardedEngine`] — executions are routed to shards by seeded
    /// hash, queries evaluate by parallel scatter-gather, and (under
    /// durability) each shard owns its own WAL directory. A durable
    /// namespace pins its shard layout on first open; on restart the
    /// on-disk layout wins over this knob.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_inflight: 64,
            tenant_burst: 64,
            tenant_rate_per_sec: 0.0,
            cache_capacity: 128,
            slowlog_threshold_micros: 1_000,
            slowlog_capacity: 128,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            per_tenant_metrics: true,
            shed_first: 0,
            auto_create_namespaces: true,
            durability: None,
            shards: 1,
        }
    }
}

/// Bounded request-id → ack memory for idempotent ingest: a retried
/// request replays its original acknowledgement instead of double-applying.
#[derive(Debug, Default)]
struct AckCache {
    map: HashMap<String, IngestAck>,
    order: VecDeque<String>,
}

impl AckCache {
    /// Remembered acks before the oldest is evicted.
    const CAPACITY: usize = 4096;

    fn get(&self, request_id: &str) -> Option<IngestAck> {
        self.map.get(request_id).cloned()
    }

    fn put(&mut self, request_id: &str, ack: IngestAck) {
        if self.map.insert(request_id.to_string(), ack).is_none() {
            self.order.push_back(request_id.to_string());
            if self.order.len() > Self::CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
}

/// Latency-histogram bucket bounds in microseconds (1us .. 1s), matching
/// the query observer's `pql_query_latency_micros`.
const LATENCY_BOUNDS: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Trace metadata accompanying one request: the caller's propagated
/// context (which becomes the request span's parent) plus which client
/// attempt this is, so retries of one logical request read as linked
/// siblings under one trace id.
#[derive(Debug, Clone, Copy)]
pub struct TraceMeta {
    /// The propagated W3C-style context.
    pub context: TraceContext,
    /// 1-based client attempt number (from `tracestate`, default 1).
    pub attempt: u32,
}

impl TraceMeta {
    /// Wrap a context as attempt 1.
    pub fn new(context: TraceContext) -> TraceMeta {
        TraceMeta {
            context,
            attempt: 1,
        }
    }
}

/// Cached per-`(tenant, namespace)` instrument handles.
///
/// `MetricsRegistry::counter_with` resolves a labeled instrument with a
/// registry-wide lock and a linear scan — fine once, hostile on a hot
/// path. Resolving each handle once per pair and recording through the
/// returned `Arc`s keeps the per-request cost at a few lock-free atomics,
/// which is what holds the observability plane inside its ≤5% overhead
/// budget.
#[derive(Debug)]
struct TenantMetrics {
    requests_ok: Arc<Counter>,
    requests_err: Arc<Counter>,
    /// Request latency histograms indexed by [`op_index`].
    latency: [Arc<Histogram>; 4],
    rows_read: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    shed_overloaded: Arc<Counter>,
    shed_rate_limited: Arc<Counter>,
    bucket_tokens: Arc<Gauge>,
}

/// Index into [`TenantMetrics::latency`] for an operation label.
fn op_index(op: &str) -> usize {
    match op {
        "create" => 0,
        "ingest" => 1,
        "query" => 2,
        _ => 3,
    }
}

impl TenantMetrics {
    fn new(registry: &MetricsRegistry, tenant: &str, namespace: &str) -> TenantMetrics {
        let base = [("tenant", tenant), ("namespace", namespace)];
        fn with<'a>(
            base: &[(&'a str, &'a str); 2],
            extra: (&'a str, &'a str),
        ) -> [(&'a str, &'a str); 3] {
            [base[0], base[1], extra]
        }
        let latency = ["create", "ingest", "query", "stats"].map(|op| {
            registry.histogram_with(
                "prov_tenant_request_latency_micros",
                "request latency by tenant, namespace, and operation",
                LATENCY_BOUNDS,
                &with(&base, ("op", op)),
            )
        });
        TenantMetrics {
            requests_ok: registry.counter_with(
                "prov_tenant_requests_total",
                "requests by tenant, namespace, and outcome",
                &with(&base, ("outcome", "ok")),
            ),
            requests_err: registry.counter_with(
                "prov_tenant_requests_total",
                "requests by tenant, namespace, and outcome",
                &with(&base, ("outcome", "error")),
            ),
            latency,
            rows_read: registry.counter_with(
                "prov_tenant_rows_read_total",
                "store elements read answering queries",
                &base,
            ),
            cache_hits: registry.counter_with(
                "prov_tenant_cache_hits_total",
                "result-cache hits",
                &base,
            ),
            cache_misses: registry.counter_with(
                "prov_tenant_cache_misses_total",
                "result-cache misses",
                &base,
            ),
            shed_overloaded: registry.counter_with(
                "prov_tenant_sheds_total",
                "requests shed, by kind",
                &with(&base, ("kind", "overloaded")),
            ),
            shed_rate_limited: registry.counter_with(
                "prov_tenant_sheds_total",
                "requests shed, by kind",
                &with(&base, ("kind", "rate_limited")),
            ),
            bucket_tokens: registry.gauge_with(
                "prov_tenant_bucket_tokens",
                "token-bucket level after the last metered request",
                &base,
            ),
        }
    }
}

/// Cached per-namespace WAL instrument handles (durable namespaces only).
#[derive(Debug)]
struct WalMetrics {
    appends: Arc<Counter>,
    failures: Arc<Counter>,
    append_micros: Arc<Histogram>,
    fsync_micros: Arc<Histogram>,
    checkpoint_micros: Arc<Histogram>,
    degraded: Arc<Gauge>,
    /// WAL sync/checkpoint counters observed so far, for delta detection
    /// (the WAL itself only exposes cumulative counts).
    seen_syncs: AtomicU64,
    seen_checkpoints: AtomicU64,
}

impl WalMetrics {
    fn new(registry: &MetricsRegistry, namespace: &str) -> WalMetrics {
        let labels = [("namespace", namespace)];
        WalMetrics {
            appends: registry.counter_with("prov_wal_appends_total", "WAL appends", &labels),
            failures: registry.counter_with(
                "prov_wal_append_failures_total",
                "failed WAL appends",
                &labels,
            ),
            append_micros: registry.histogram_with(
                "prov_wal_append_micros",
                "WAL append latency (including policy-driven fsync)",
                LATENCY_BOUNDS,
                &labels,
            ),
            fsync_micros: registry.histogram_with(
                "prov_wal_fsync_micros",
                "WAL fsync latency",
                LATENCY_BOUNDS,
                &labels,
            ),
            checkpoint_micros: registry.histogram_with(
                "prov_wal_checkpoint_micros",
                "WAL checkpoint duration",
                LATENCY_BOUNDS,
                &labels,
            ),
            degraded: registry.gauge_with(
                "prov_wal_degraded",
                "1 when the namespace is read-only after WAL failures",
                &labels,
            ),
            seen_syncs: AtomicU64::new(0),
            seen_checkpoints: AtomicU64::new(0),
        }
    }

    /// Observe any fsyncs/checkpoints the namespace's WALs (one per
    /// shard) completed since last asked.
    fn absorb(&self, wals: &[NamespaceWal]) {
        let syncs: u64 = wals.iter().map(NamespaceWal::syncs).sum();
        let prev = self.seen_syncs.swap(syncs, Ordering::Relaxed);
        if syncs > prev {
            if let Some(micros) = wals.iter().map(NamespaceWal::last_sync_micros).max() {
                self.fsync_micros.observe(micros);
            }
        }
        let checkpoints: u64 = wals.iter().map(NamespaceWal::checkpoints).sum();
        let prev = self.seen_checkpoints.swap(checkpoints, Ordering::Relaxed);
        if checkpoints > prev {
            if let Some(micros) = wals.iter().map(NamespaceWal::last_checkpoint_micros).max() {
                self.checkpoint_micros.observe(micros);
            }
        }
    }
}

/// The PQL engine behind one namespace: a single [`PqlEngine`], or — when
/// the server runs with [`ServerConfig::shards`]` > 1` — a
/// [`ShardedEngine`] that partitions the corpus by seeded execution hash
/// and answers queries by parallel scatter-gather (`prov_query::sharded`).
/// Both variants are result-identical; the sharded engine's generation
/// counter sums the per-shard counters, so an ingest into *any* shard
/// invalidates cached results.
#[derive(Debug)]
enum NsEngine {
    /// The default single-partition engine.
    Single(PqlEngine),
    /// A seeded-hash sharded engine evaluating by scatter-gather.
    Sharded(ShardedEngine),
}

impl NsEngine {
    fn new(shards: usize) -> NsEngine {
        if shards <= 1 {
            NsEngine::Single(PqlEngine::new())
        } else {
            NsEngine::Sharded(ShardedEngine::new(shards))
        }
    }

    /// Partitions behind this engine (1 for the single engine).
    fn shard_count(&self) -> usize {
        match self {
            NsEngine::Single(_) => 1,
            NsEngine::Sharded(s) => s.shard_count(),
        }
    }

    /// Which shard's WAL an execution's entries belong to.
    fn route(&self, exec: ExecId) -> usize {
        match self {
            NsEngine::Single(_) => 0,
            NsEngine::Sharded(s) => s.route(exec),
        }
    }

    /// Result-cache backend key. Distinct per shard layout, so a sharded
    /// result can never serve a single-engine cache entry or vice versa.
    fn backend_key(&self) -> &str {
        match self {
            NsEngine::Single(_) => "engine",
            NsEngine::Sharded(s) => s.backend_key(),
        }
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        match self {
            NsEngine::Single(e) => e.ingest(retro),
            NsEngine::Sharded(s) => s.ingest(retro),
        }
    }

    fn generation(&self) -> u64 {
        match self {
            NsEngine::Single(e) => e.generation(),
            NsEngine::Sharded(s) => s.generation(),
        }
    }

    fn restore_generation(&mut self, watermark: u64) {
        match self {
            NsEngine::Single(e) => e.restore_generation(watermark),
            NsEngine::Sharded(s) => s.restore_generation(watermark),
        }
    }

    fn run_count(&self) -> usize {
        match self {
            NsEngine::Single(e) => e.run_count(),
            NsEngine::Sharded(s) => s.run_count(),
        }
    }

    fn artifact_count(&self) -> usize {
        match self {
            NsEngine::Single(e) => e.artifact_count(),
            NsEngine::Sharded(s) => s.artifact_count(),
        }
    }

    fn exec_count(&self) -> usize {
        match self {
            NsEngine::Single(e) => e.exec_count(),
            NsEngine::Sharded(s) => s.exec_count(),
        }
    }

    /// Cost-based optimized EXPLAIN ANALYZE — the query path both
    /// variants serve with identical results.
    fn analyze_optimized(&self, query: &Query) -> Result<Analysis, PqlError> {
        match self {
            NsEngine::Single(e) => analyze_optimized(e, query),
            NsEngine::Sharded(s) => s.analyze_optimized(query),
        }
    }
}

/// One tenant-visible, isolated provenance domain.
///
/// All state a request can touch lives here; requests for namespace A can
/// never observe (or block behind the write lock of) namespace B.
#[derive(Debug)]
pub struct Namespace {
    name: String,
    engine: RwLock<NsEngine>,
    graph: SharedStore<GraphStore>,
    cache: Mutex<QueryCache>,
    observer: Mutex<QueryObserver>,
    ingests: AtomicU64,
    queries: AtomicU64,
    /// The write-ahead logs, one per shard (durable servers only; a
    /// single-engine namespace has exactly one). Locked *inside* the
    /// engine write lock during ingest, so WAL order equals apply order
    /// and the stamped sequence numbers are gap-free across shards.
    wal: Option<Mutex<Vec<NamespaceWal>>>,
    /// Request-id → ack dedupe memory (rebuilt from the WAL on recovery).
    acks: Mutex<AckCache>,
    /// Consecutive WAL append failures; at [`READ_ONLY_AFTER`] the
    /// namespace degrades to read-only.
    wal_failures: AtomicU64,
    read_only: AtomicBool,
    /// Cached WAL instrument handles (durable namespaces only).
    wal_metrics: Option<WalMetrics>,
}

impl Namespace {
    /// Create a namespace; when `config.durability` is set this opens (or
    /// creates) its WAL directory, replays any existing records into the
    /// fresh stores, restores the generation counter, and reports what it
    /// found.
    fn new(
        name: &str,
        config: &ServerConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<(Self, Option<RecoveryReport>), ServerError> {
        let configured = config.shards.max(1);
        // A durable namespace pins its shard layout on first open: the
        // on-disk marker wins over the config, so a restart with a
        // different `shards=` still replays the layout that was written.
        let (wal_dir, shards) = match &config.durability {
            Some(dconf) => {
                let dir = dconf.data_dir.join(name);
                let persisted = read_shard_marker(&dir);
                (Some(dir), persisted.unwrap_or(configured))
            }
            None => (None, configured),
        };
        let mut ns = Namespace {
            name: name.to_string(),
            engine: RwLock::new(NsEngine::new(shards)),
            graph: SharedStore::new(GraphStore::new()),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            observer: Mutex::new(
                QueryObserver::with_registry(Arc::clone(&registry))
                    .with_slowlog(config.slowlog_threshold_micros, config.slowlog_capacity),
            ),
            ingests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            wal: None,
            acks: Mutex::new(AckCache::default()),
            wal_failures: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            wal_metrics: None,
        };
        let Some(dconf) = &config.durability else {
            return Ok((ns, None));
        };
        let dir = wal_dir.expect("durable namespace computed its wal dir");
        if shards > 1 {
            std::fs::create_dir_all(&dir)
                .map_err(|e| ServerError::Durability(format!("create '{name}' dir: {e}")))?;
            std::fs::write(dir.join("SHARDS"), format!("{shards}\n")).map_err(|e| {
                ServerError::Durability(format!("write '{name}' shard marker: {e}"))
            })?;
        }
        // One WAL per shard: shard 0 of a single-engine namespace keeps
        // the legacy flat layout, sharded namespaces use `shard-<i>/`.
        let mut wals = Vec::with_capacity(shards);
        let mut recoveries = Vec::with_capacity(shards);
        for s in 0..shards {
            let sdir = if shards == 1 {
                dir.clone()
            } else {
                dir.join(format!("shard-{s}"))
            };
            let (mut wal, recovery) =
                NamespaceWal::open_with_plan(&sdir, dconf.fsync, dconf.fault_plan.clone())
                    .map_err(|e| {
                        ServerError::Durability(if shards == 1 {
                            format!("open wal for '{name}': {e}")
                        } else {
                            format!("open wal for '{name}' shard {s}: {e}")
                        })
                    })?;
            wal.checkpoint_every = dconf.checkpoint_every;
            wals.push(wal);
            recoveries.push(recovery);
        }

        // Decode every surviving record, then merge the per-shard streams
        // back into global ingest order by the stamped sequence number —
        // the coordinator side of a sharded engine mirrors artifacts in
        // ingest order, so replay order must equal the original order.
        // Codec failures are reported and skipped — corruption in one
        // record must not lose the rest.
        let mut codec_errors = Vec::new();
        let mut entries = Vec::new();
        for (s, recovery) in recoveries.iter().enumerate() {
            for (i, (_, payload)) in recovery.entries.iter().enumerate() {
                match durability::decode_entry(payload) {
                    Ok((retro, request_id, seq)) => {
                        entries.push((seq.unwrap_or(0), s, i, retro, request_id));
                    }
                    Err(e) => codec_errors.push(if shards == 1 {
                        format!("record {i}: {e}")
                    } else {
                        format!("shard {s} record {i}: {e}")
                    }),
                }
            }
        }
        entries.sort_by_key(|&(seq, s, i, ..)| (seq, s, i));
        // The consistent watermark: each shard's WAL restores its own
        // durable generation; the namespace generation is their sum.
        let watermark: u64 = recoveries.iter().map(|r| r.generation).sum();
        let total = entries.len() as u64;
        {
            let engine = ns.engine.get_mut().unwrap_or_else(|e| e.into_inner());
            let acks = ns.acks.get_mut().unwrap_or_else(|e| e.into_inner());
            for (i, (_, _, _, retro, request_id)) in entries.iter().enumerate() {
                engine.ingest(retro);
                ns.graph.ingest_shared(retro);
                if let Some(id) = request_id {
                    // The logical generation of replayed entry i counts
                    // back from the restored watermark.
                    let generation = watermark - (total - 1 - i as u64).min(watermark);
                    acks.put(
                        id,
                        IngestAck {
                            namespace: name.to_string(),
                            generation,
                            runs_ingested: retro.run_count(),
                            total_runs: engine.run_count(),
                        },
                    );
                }
            }
            engine.restore_generation(watermark);
        }
        let report = RecoveryReport {
            namespace: name.to_string(),
            snapshot_records: recoveries.iter().map(|r| r.snapshot_records).sum(),
            wal_records: recoveries.iter().map(|r| r.wal_records).sum(),
            generation: watermark,
            truncated: recoveries.iter().any(|r| r.truncated),
            tail_errors: recoveries
                .iter()
                .flat_map(|r| r.tail_errors.iter().cloned())
                .collect(),
            codec_errors,
        };
        // Recovery series: what replay found, labeled by namespace, so a
        // scrape right after startup shows how the process came back.
        let labels = [("namespace", name)];
        registry
            .counter_with(
                "prov_recovery_frames_total",
                "WAL frames replayed at recovery",
                &labels,
            )
            .add(report.snapshot_records + report.wal_records);
        if report.truncated {
            registry
                .counter_with(
                    "prov_recovery_torn_tails_total",
                    "torn WAL tails truncated at recovery",
                    &labels,
                )
                .inc();
        }
        registry
            .counter_with(
                "prov_recovery_codec_errors_total",
                "undecodable WAL records skipped at recovery",
                &labels,
            )
            .add(report.codec_errors.len() as u64);
        ns.wal_metrics = Some(WalMetrics::new(&registry, name));
        ns.wal = Some(Mutex::new(wals));
        Ok((ns, Some(report)))
    }

    /// Partitions behind this namespace's engine (1 unless the server
    /// runs sharded).
    pub fn shard_count(&self) -> usize {
        self.read_engine().shard_count()
    }

    /// The namespace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared canned-query store for this namespace.
    pub fn store(&self) -> &SharedStore<GraphStore> {
        &self.graph
    }

    /// Is this namespace backed by a write-ahead log?
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Has this namespace degraded to read-only after WAL failures?
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Ingest requests served since the namespace opened.
    pub fn ingest_count(&self) -> u64 {
        self.ingests.load(Ordering::Relaxed)
    }

    /// Query requests served since the namespace opened.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Records in the live WAL tails, summed across shards (`None` for
    /// volatile namespaces).
    pub fn wal_records(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| {
            w.lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(NamespaceWal::wal_records)
                .sum()
        })
    }

    /// Force every shard WAL of the namespace to disk regardless of
    /// fsync policy.
    pub fn sync_wal(&self) -> Result<(), ServerError> {
        if let Some(wal) = &self.wal {
            for shard in wal.lock().unwrap_or_else(|e| e.into_inner()).iter_mut() {
                shard
                    .sync()
                    .map_err(|e| ServerError::Durability(format!("sync wal: {e}")))?;
            }
        }
        Ok(())
    }

    fn read_engine(&self) -> std::sync::RwLockReadGuard<'_, NsEngine> {
        self.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine(&self) -> std::sync::RwLockWriteGuard<'_, NsEngine> {
        self.engine.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// The persisted shard count of a durable namespace directory (`None`
/// when the namespace has never been opened sharded).
fn read_shard_marker(dir: &std::path::Path) -> Option<usize> {
    std::fs::read_to_string(dir.join("SHARDS"))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 1)
}

/// What a request asks for.
#[derive(Debug, Clone)]
pub enum RequestBody {
    /// Create the namespace (idempotent).
    CreateNamespace,
    /// Ingest one execution's retrospective provenance. A `request_id`
    /// makes the ingest idempotent: the same id replays the original ack
    /// instead of applying twice, so clients may safely retry after
    /// ambiguous failures.
    Ingest {
        /// The provenance document.
        retro: Box<RetrospectiveProvenance>,
        /// Client-chosen idempotency key.
        request_id: Option<String>,
    },
    /// Evaluate a PQL query.
    Query {
        /// The query text.
        pql: String,
    },
    /// Per-namespace statistics.
    Stats,
}

impl RequestBody {
    /// Stable label for metrics.
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::CreateNamespace => "create",
            RequestBody::Ingest { .. } => "ingest",
            RequestBody::Query { .. } => "query",
            RequestBody::Stats => "stats",
        }
    }
}

/// One client request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Who is asking (rate-limit key).
    pub tenant: String,
    /// Which isolated domain the request addresses.
    pub namespace: String,
    /// The operation.
    pub body: RequestBody,
}

/// Acknowledgement of one ingested execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestAck {
    /// The namespace written to.
    pub namespace: String,
    /// Engine generation after the ingest (monotone per namespace).
    pub generation: u64,
    /// Module runs in the ingested execution.
    pub runs_ingested: usize,
    /// Total runs resident in the namespace afterwards.
    pub total_runs: usize,
}

/// A served query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The result rows/count/paths.
    pub result: QueryResult,
    /// The engine generation the result was computed against.
    pub generation: u64,
    /// Server-side evaluation time (0 for cache hits).
    pub micros: u64,
    /// Served from the namespace's result cache?
    pub cached: bool,
}

/// Point-in-time numbers for one namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceStats {
    /// Namespace name.
    pub namespace: String,
    /// Module runs in the engine.
    pub runs: usize,
    /// Artifacts in the engine.
    pub artifacts: usize,
    /// Executions in the engine.
    pub executions: usize,
    /// Ingest generation.
    pub generation: u64,
    /// Ingest requests served.
    pub ingests: u64,
    /// Query requests served.
    pub queries: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Runs resident in the shared graph store (must equal `runs`).
    pub store_runs: usize,
    /// Partitions behind the namespace engine (1 unless sharded).
    pub shards: usize,
}

/// Server-wide admission numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests currently in flight.
    pub inflight: usize,
    /// Requests admitted since start.
    pub admitted: u64,
    /// Requests shed by the admission window.
    pub rejected: u64,
    /// Requests shed by tenant rate limits.
    pub throttled: u64,
    /// Namespaces resident.
    pub namespaces: usize,
}

/// What a request returns.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Namespace exists now.
    Created(String),
    /// Ingest acknowledged.
    Ingested(IngestAck),
    /// Query answered.
    Query(QueryReply),
    /// Namespace statistics.
    Stats(NamespaceStats),
}

/// The long-running concurrent provenance service.
///
/// Construct once, wrap in an [`Arc`], and serve from as many threads as
/// you like: every entry point takes `&self`.
#[derive(Debug)]
pub struct ProvServer {
    config: ServerConfig,
    registry: Arc<MetricsRegistry>,
    admission: Admission,
    limiter: RateLimiter,
    namespaces: RwLock<BTreeMap<String, Arc<Namespace>>>,
    shutdown: AtomicBool,
    /// False while WAL replay is pending (durable servers start not
    /// ready; [`ProvServer::recover`] flips this).
    ready: AtomicBool,
    /// Completed spans of sampled requests, keyed by distributed trace id.
    traces: TraceStore,
    /// Server-wide span-id allocator for request/operator spans (starts at
    /// 1; `traceparent` forbids zero span ids).
    span_seq: AtomicU64,
    /// Remaining forced sheds (see [`ServerConfig::shed_first`]).
    shed_remaining: AtomicU64,
    /// Cached per-`(tenant, namespace)` instrument handles.
    tenant_metrics: RwLock<HashMap<(String, String), Arc<TenantMetrics>>>,
    /// Pre-resolved global instruments for the request hot path.
    admission_wait: Arc<Histogram>,
    inflight_gauge: Arc<Gauge>,
    degraded_gauge: Arc<Gauge>,
}

/// Validate a tenant or namespace name: 1–64 chars of `[A-Za-z0-9._-]`.
fn validate_name(kind: &str, name: &str) -> Result<(), ServerError> {
    if name.is_empty() || name.len() > 64 {
        return Err(ServerError::BadRequest(format!(
            "{kind} must be 1-64 characters, got {}",
            name.len()
        )));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(ServerError::BadRequest(format!(
            "{kind} contains invalid character {c:?} (allowed: [A-Za-z0-9._-])"
        )));
    }
    Ok(())
}

impl ProvServer {
    /// A server with the given configuration and a fresh metrics registry.
    pub fn new(config: ServerConfig) -> Self {
        let ready = config.durability.is_none();
        let registry = Arc::new(MetricsRegistry::new());
        let admission_wait = registry.histogram(
            "prov_server_admission_wait_micros",
            "time from request arrival to admission permit",
            LATENCY_BOUNDS,
        );
        let inflight_gauge = registry.gauge(
            "prov_server_inflight",
            "requests currently holding a permit",
        );
        let degraded_gauge = registry.gauge(
            "prov_server_degraded_namespaces",
            "namespaces degraded to read-only",
        );
        ProvServer {
            admission: Admission::new(config.max_inflight),
            limiter: RateLimiter::new(config.tenant_burst, config.tenant_rate_per_sec),
            traces: TraceStore::new(config.trace_capacity),
            span_seq: AtomicU64::new(1),
            shed_remaining: AtomicU64::new(config.shed_first),
            config,
            registry,
            namespaces: RwLock::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(ready),
            tenant_metrics: RwLock::new(HashMap::new()),
            admission_wait,
            inflight_gauge,
            degraded_gauge,
        }
    }

    /// Replay every namespace directory under the configured data dir into
    /// fresh stores, then mark the server ready. Volatile servers (no
    /// durability config) are ready from construction and return no
    /// reports. Until this runs, a durable server answers every request
    /// with [`ServerError::NotReady`].
    pub fn recover(&self) -> Result<Vec<RecoveryReport>, ServerError> {
        let Some(dconf) = &self.config.durability else {
            self.ready.store(true, Ordering::SeqCst);
            return Ok(Vec::new());
        };
        std::fs::create_dir_all(&dconf.data_dir)
            .map_err(|e| ServerError::Durability(format!("create data dir: {e}")))?;
        let mut reports = Vec::new();
        let entries = std::fs::read_dir(&dconf.data_dir)
            .map_err(|e| ServerError::Durability(format!("scan data dir: {e}")))?;
        for entry in entries.flatten() {
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if validate_name("namespace", &name).is_err() {
                continue;
            }
            let (ns, report) = Namespace::new(&name, &self.config, Arc::clone(&self.registry))?;
            self.namespaces
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name, Arc::new(ns));
            reports.extend(report);
        }
        reports.sort_by(|a, b| a.namespace.cmp(&b.namespace));
        self.ready.store(true, Ordering::SeqCst);
        Ok(reports)
    }

    /// Has the server finished WAL replay (always true for volatile
    /// servers)?
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
    }

    /// Namespaces currently degraded to read-only, sorted.
    pub fn degraded_namespaces(&self) -> Vec<String> {
        self.namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|ns| ns.is_read_only())
            .map(|ns| ns.name().to_string())
            .collect()
    }

    /// The server-wide metrics registry (Prometheus-renderable).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Flag the server as draining: every subsequent request is rejected
    /// with [`ServerError::ShuttingDown`].
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Is the server draining?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Serve one request end to end: admission window, tenant rate limit,
    /// namespace resolution, dispatch. This is the single entry point both
    /// the in-process [`Session`] API and the HTTP front end go through;
    /// it is [`ProvServer::handle_traced`] without trace propagation.
    pub fn handle(&self, req: &Request) -> Result<ResponseBody, ServerError> {
        self.handle_traced(req, None)
    }

    /// [`ProvServer::handle`] carrying the caller's distributed trace
    /// context. A sampled context makes the whole server-side execution —
    /// the request span, the query/cache span beneath it, per-operator and
    /// WAL child spans — retrievable from the [`TraceStore`] under the
    /// caller's trace id, with the caller's span as parent.
    pub fn handle_traced(
        &self,
        req: &Request,
        meta: Option<TraceMeta>,
    ) -> Result<ResponseBody, ServerError> {
        let began = now_micros();
        if self.is_shutting_down() {
            return Err(ServerError::ShuttingDown);
        }
        if !self.is_ready() {
            return Err(ServerError::NotReady);
        }
        validate_name("tenant", &req.tenant)?;
        validate_name("namespace", &req.namespace)?;

        let recording = meta.is_some_and(|m| m.context.sampled);
        let request_span = recording.then(|| SpanId(self.next_span_id()));
        let tm = self
            .config
            .per_tenant_metrics
            .then(|| self.tenant_metrics(&req.tenant, &req.namespace));
        let traced = match (meta, request_span) {
            (Some(m), Some(id)) => Some((m.context.trace_id, id)),
            _ => None,
        };

        let result = self.dispatch(req, began, traced, tm.as_deref());
        let outcome = match &result {
            Ok(_) => "ok",
            Err(e) => e.kind(),
        };
        self.registry
            .counter_with(
                "prov_server_requests_total",
                "requests by operation and outcome",
                &[("op", req.body.op()), ("outcome", outcome)],
            )
            .inc();
        let ended = now_micros().max(began);
        if let Some(tm) = &tm {
            if outcome == "ok" {
                tm.requests_ok.inc();
            } else {
                tm.requests_err.inc();
            }
            tm.latency[op_index(req.body.op())].observe(ended - began);
            match outcome {
                "overloaded" => tm.shed_overloaded.inc(),
                "rate_limited" => tm.shed_rate_limited.inc(),
                _ => {}
            }
            if let Some(level) = self.limiter.level(&req.tenant, &req.namespace) {
                tm.bucket_tokens.set(level as i64);
            }
        }
        if let (Some(m), Some(id)) = (meta, request_span) {
            self.traces.record(
                m.context.trace_id,
                Span {
                    id,
                    parent: Some(SpanId(m.context.span_id)),
                    kind: SpanKind::Request,
                    name: format!("{} {}", req.body.op(), req.namespace),
                    exec: ExecId(0),
                    node: None,
                    start_micros: began,
                    end_micros: ended,
                    attrs: vec![
                        ("op".into(), req.body.op().into()),
                        ("tenant".into(), req.tenant.clone()),
                        ("namespace".into(), req.namespace.clone()),
                        ("outcome".into(), outcome.into()),
                        ("attempt".into(), m.attempt.to_string()),
                    ],
                },
            );
        }
        result
    }

    /// Admission, rate limiting, and operation dispatch — the part of the
    /// request between the span/metric bookkeeping that wraps it.
    fn dispatch(
        &self,
        req: &Request,
        began: u64,
        traced: Option<(u128, SpanId)>,
        tm: Option<&TenantMetrics>,
    ) -> Result<ResponseBody, ServerError> {
        if self.take_forced_shed() {
            return Err(ServerError::Overloaded {
                inflight: self.admission.inflight(),
                limit: self.admission.limit(),
            });
        }
        let Some(_permit) = self.admission.try_acquire() else {
            return Err(ServerError::Overloaded {
                inflight: self.admission.inflight(),
                limit: self.admission.limit(),
            });
        };
        self.admission_wait
            .observe(now_micros().saturating_sub(began));
        self.inflight_gauge.set(self.admission.inflight() as i64);
        if !self.limiter.try_take(&req.tenant, &req.namespace) {
            return Err(ServerError::RateLimited {
                tenant: req.tenant.clone(),
                namespace: req.namespace.clone(),
            });
        }
        match &req.body {
            RequestBody::CreateNamespace => self
                .get_or_create_namespace(&req.namespace)
                .map(|ns| ResponseBody::Created(ns.name().to_string())),
            RequestBody::Ingest { retro, request_id } => {
                self.ingest(&req.namespace, retro, request_id.as_deref(), traced)
            }
            RequestBody::Query { pql } => self.query(&req.namespace, pql, traced, tm),
            RequestBody::Stats => self.stats(&req.namespace).map(ResponseBody::Stats),
        }
    }

    /// Consume one forced shed if any remain (see
    /// [`ServerConfig::shed_first`]).
    fn take_forced_shed(&self) -> bool {
        if self.shed_remaining.load(Ordering::Relaxed) == 0 {
            return false;
        }
        self.shed_remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    fn next_span_id(&self) -> u64 {
        self.span_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The cached instrument handles for `(tenant, namespace)`, created
    /// on first sight.
    fn tenant_metrics(&self, tenant: &str, namespace: &str) -> Arc<TenantMetrics> {
        {
            let map = self
                .tenant_metrics
                .read()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(tm) = map.get(&(tenant.to_string(), namespace.to_string())) {
                return Arc::clone(tm);
            }
        }
        let mut map = self
            .tenant_metrics
            .write()
            .unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry((tenant.to_string(), namespace.to_string()))
                .or_insert_with(|| Arc::new(TenantMetrics::new(&self.registry, tenant, namespace))),
        )
    }

    /// The spans recorded under one distributed trace id, if any.
    pub fn stored_trace(&self, trace_id: u128) -> Option<StoredTrace> {
        self.traces.get(trace_id)
    }

    /// Distinct trace ids currently held by the bounded trace store.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Record externally-assembled spans (e.g. a stitched distributed
    /// capture) under `trace_id`, merging with any server-side spans the
    /// same trace already accumulated. Returns how many spans were
    /// offered.
    pub fn ingest_trace_spans(&self, trace_id: u128, spans: Vec<Span>) -> usize {
        let n = spans.len();
        self.traces.record_all(trace_id, spans);
        self.registry
            .counter(
                "prov_server_trace_spans_ingested_total",
                "spans accepted via POST /v1/trace",
            )
            .add(n as u64);
        n
    }

    /// Cumulative loss counters of the bounded trace store.
    pub fn trace_store_stats(&self) -> crate::trace::TraceStoreStats {
        self.traces.stats()
    }

    /// The Prometheus exposition body: the metrics registry plus the
    /// trace-store loss counters (which live outside the registry).
    pub fn render_metrics(&self) -> String {
        let mut out = self.registry.render_prometheus();
        let ts = self.traces.stats();
        out.push_str(&format!(
            "# HELP prov_server_trace_evictions_total traces evicted FIFO at capacity\n\
             # TYPE prov_server_trace_evictions_total counter\n\
             prov_server_trace_evictions_total {}\n\
             # HELP prov_server_trace_span_drops_total spans dropped at the per-trace cap\n\
             # TYPE prov_server_trace_span_drops_total counter\n\
             prov_server_trace_span_drops_total {}\n\
             # HELP prov_server_traces_retained traces currently held\n\
             # TYPE prov_server_traces_retained gauge\n\
             prov_server_traces_retained {}\n",
            ts.evicted_traces, ts.dropped_spans, ts.retained_traces
        ));
        out
    }

    /// Open an in-process session for `tenant`.
    pub fn session(self: &Arc<Self>, tenant: &str) -> Session {
        Session {
            server: Arc::clone(self),
            tenant: tenant.to_string(),
            tracer: None,
        }
    }

    /// The namespace handle, if it exists.
    pub fn namespace(&self, name: &str) -> Option<Arc<Namespace>> {
        self.namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Namespace names, sorted.
    pub fn namespace_names(&self) -> Vec<String> {
        self.namespaces
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Server-wide admission statistics.
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            inflight: self.admission.inflight(),
            admitted: self.admission.admitted(),
            rejected: self.admission.rejected(),
            throttled: self.limiter.throttled(),
            namespaces: self
                .namespaces
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }

    /// Drain the request-scoped query spans of one namespace as a
    /// [`Trace`] (exportable with the `prov-telemetry` exporters).
    pub fn take_trace(&self, namespace: &str) -> Option<Trace> {
        let ns = self.namespace(namespace)?;
        let trace = ns
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take_trace();
        Some(trace)
    }

    /// Render the namespace's slow-query log.
    pub fn render_slowlog(&self, namespace: &str) -> Option<String> {
        let ns = self.namespace(namespace)?;
        let text = ns
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slowlog
            .render();
        Some(text)
    }

    /// The namespace's slow-query log as JSONL, capped to `max_bytes`
    /// (newest entries win; 0 disables the cap). `None` for an unknown
    /// namespace.
    pub fn slowlog_jsonl(&self, namespace: &str, max_bytes: usize) -> Option<String> {
        let ns = self.namespace(namespace)?;
        let text = ns
            .observer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slowlog
            .to_jsonl_capped(max_bytes);
        Some(text)
    }

    fn get_or_create_namespace(&self, name: &str) -> Result<Arc<Namespace>, ServerError> {
        if let Some(ns) = self.namespace(name) {
            return Ok(ns);
        }
        let mut map = self.namespaces.write().unwrap_or_else(|e| e.into_inner());
        if let Some(ns) = map.get(name) {
            return Ok(Arc::clone(ns));
        }
        let (ns, _report) = Namespace::new(name, &self.config, Arc::clone(&self.registry))?;
        let ns = Arc::new(ns);
        map.insert(name.to_string(), Arc::clone(&ns));
        Ok(ns)
    }

    fn resolve(&self, name: &str) -> Result<Arc<Namespace>, ServerError> {
        self.namespace(name)
            .ok_or_else(|| ServerError::NoSuchNamespace(name.to_string()))
    }

    fn ingest(
        &self,
        namespace: &str,
        retro: &RetrospectiveProvenance,
        request_id: Option<&str>,
        traced: Option<(u128, SpanId)>,
    ) -> Result<ResponseBody, ServerError> {
        let ns = if self.config.auto_create_namespaces {
            self.get_or_create_namespace(namespace)?
        } else {
            self.resolve(namespace)?
        };
        if ns.is_read_only() {
            return Err(ServerError::ReadOnly(namespace.to_string()));
        }
        // Idempotent retry: a request id we have already acked replays the
        // original acknowledgement without touching the stores.
        if let Some(id) = request_id {
            let acks = ns.acks.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(ack) = acks.get(id) {
                return Ok(ResponseBody::Ingested(ack));
            }
        }
        // Engine and graph store are written in the same order everywhere,
        // and the generation reported is read under the engine write lock,
        // so acks carry the generation this ingest produced. The WAL
        // append happens *inside* the same lock, before the apply: WAL
        // order equals apply order, and no ack can outrun durability.
        let (generation, total_runs) = {
            let mut engine = ns.write_engine();
            if let Some(wal) = &ns.wal {
                // The stamped sequence is the post-ingest generation:
                // strictly monotone per namespace (assigned under the
                // engine write lock), so recovery can merge the per-shard
                // WAL streams back into global ingest order.
                let seq = engine.generation() + 1;
                let shard = engine.route(retro.exec);
                let payload = durability::encode_entry(retro, request_id, seq);
                let mut wals = wal.lock().unwrap_or_else(|e| e.into_inner());
                let wal_began = now_micros();
                if let Err(e) = wals[shard].append(retro.exec.0, &payload) {
                    if let Some(wm) = &ns.wal_metrics {
                        wm.failures.inc();
                    }
                    let failures = ns.wal_failures.fetch_add(1, Ordering::SeqCst) + 1;
                    if failures >= READ_ONLY_AFTER && !ns.read_only.swap(true, Ordering::SeqCst) {
                        self.degraded_gauge.inc();
                        if let Some(wm) = &ns.wal_metrics {
                            wm.degraded.set(1);
                        }
                    }
                    return Err(ServerError::Durability(format!(
                        "wal append for '{namespace}': {e}"
                    )));
                }
                let wal_ended = now_micros().max(wal_began);
                if let Some(wm) = &ns.wal_metrics {
                    wm.appends.inc();
                    wm.append_micros.observe(wal_ended - wal_began);
                    wm.absorb(&wals);
                }
                if let Some((trace_id, parent)) = traced {
                    self.traces.record(
                        trace_id,
                        Span {
                            id: SpanId(self.next_span_id()),
                            parent: Some(parent),
                            kind: SpanKind::Operator,
                            name: "wal.append".into(),
                            exec: ExecId(0),
                            node: None,
                            start_micros: wal_began,
                            end_micros: wal_ended,
                            attrs: vec![
                                ("payload_bytes".into(), payload.len().to_string()),
                                ("shard".into(), shard.to_string()),
                            ],
                        },
                    );
                }
                ns.wal_failures.store(0, Ordering::SeqCst);
            }
            engine.ingest(retro);
            (engine.generation(), engine.run_count())
        };
        ns.graph.ingest_shared(retro);
        ns.ingests.fetch_add(1, Ordering::Relaxed);
        let ack = IngestAck {
            namespace: namespace.to_string(),
            generation,
            runs_ingested: retro.run_count(),
            total_runs,
        };
        if let Some(id) = request_id {
            ns.acks
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .put(id, ack.clone());
        }
        Ok(ResponseBody::Ingested(ack))
    }

    /// Record a query span into the namespace observer — and, when the
    /// request is traced, into the trace store as a child of the request
    /// span.
    #[allow(clippy::too_many_arguments)]
    fn record_query_span(
        &self,
        ns: &Namespace,
        pql: &str,
        backend: &str,
        micros: u64,
        rows: usize,
        accesses: prov_store::StatsSnapshot,
        traced: Option<(u128, SpanId)>,
    ) -> Option<(u128, Span)> {
        let mut obs = ns.observer.lock().unwrap_or_else(|e| e.into_inner());
        match traced {
            Some((trace_id, parent)) => {
                let id = SpanId(self.next_span_id());
                let span = obs.record_traced(
                    pql,
                    backend,
                    micros,
                    rows,
                    accesses,
                    id,
                    Some(parent),
                    Some(trace_id),
                );
                drop(obs);
                self.traces.record(trace_id, span.clone());
                Some((trace_id, span))
            }
            None => {
                obs.record(pql, backend, micros, rows, accesses);
                None
            }
        }
    }

    fn query(
        &self,
        namespace: &str,
        pql: &str,
        traced: Option<(u128, SpanId)>,
        tm: Option<&TenantMetrics>,
    ) -> Result<ResponseBody, ServerError> {
        let ns = self.resolve(namespace)?;
        let query = parse(pql)?;
        let key = QueryCache::key_for(&query);
        // Hold the read lock across generation read + evaluation: the
        // result is guaranteed to be computed against the generation it
        // is tagged with (writers are excluded while we evaluate). A
        // sharded engine's generation sums the per-shard counters, so a
        // cached result goes stale when *any* shard advances.
        let engine = ns.read_engine();
        let generation = engine.generation();
        let backend = engine.backend_key().to_string();
        {
            let mut cache = ns.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(result) = cache.get(&backend, &key, generation) {
                drop(cache);
                ns.queries.fetch_add(1, Ordering::Relaxed);
                if let Some(tm) = tm {
                    tm.cache_hits.inc();
                }
                self.record_query_span(
                    &ns,
                    pql,
                    "cache",
                    0,
                    result.len(),
                    Default::default(),
                    traced,
                );
                return Ok(ResponseBody::Query(QueryReply {
                    result,
                    generation,
                    micros: 0,
                    cached: true,
                }));
            }
        }
        let analysis = engine.analyze_optimized(&query)?;
        drop(engine);
        ns.cache.lock().unwrap_or_else(|e| e.into_inner()).put(
            &backend,
            &key,
            generation,
            analysis.result.clone(),
        );
        ns.queries.fetch_add(1, Ordering::Relaxed);
        let accesses = analysis.total_accesses();
        if let Some(tm) = tm {
            tm.cache_misses.inc();
            tm.rows_read.add(accesses.total_reads());
        }
        let recorded = self.record_query_span(
            &ns,
            pql,
            &backend,
            analysis.total_micros,
            analysis.result.len(),
            accesses,
            traced,
        );
        // Per-operator children: the plan's self-time attribution laid out
        // sequentially under the query span, so `/v1/trace/{id}` shows
        // where inside the engine the time went.
        if let Some((trace_id, qspan)) = recorded {
            let mut cursor = qspan.start_micros;
            for op in &analysis.ops {
                let end = cursor + op.self_micros;
                self.traces.record(
                    trace_id,
                    Span {
                        id: SpanId(self.next_span_id()),
                        parent: Some(qspan.id),
                        kind: SpanKind::Operator,
                        name: op.label.clone(),
                        exec: ExecId(0),
                        node: None,
                        start_micros: cursor,
                        end_micros: end,
                        attrs: vec![
                            ("depth".into(), op.depth.to_string()),
                            ("rows_out".into(), op.rows_out.to_string()),
                            (
                                "est_rows".into(),
                                op.est_rows.map_or_else(|| "?".into(), |v| v.to_string()),
                            ),
                        ],
                    },
                );
                cursor = end;
            }
        }
        Ok(ResponseBody::Query(QueryReply {
            result: analysis.result,
            generation,
            micros: analysis.total_micros,
            cached: false,
        }))
    }

    fn stats(&self, namespace: &str) -> Result<NamespaceStats, ServerError> {
        let ns = self.resolve(namespace)?;
        let engine = ns.read_engine();
        let (hits, misses) = {
            let cache = ns.cache.lock().unwrap_or_else(|e| e.into_inner());
            (cache.hits(), cache.misses())
        };
        Ok(NamespaceStats {
            namespace: namespace.to_string(),
            runs: engine.run_count(),
            artifacts: engine.artifact_count(),
            executions: engine.exec_count(),
            generation: engine.generation(),
            ingests: ns.ingests.load(Ordering::Relaxed),
            queries: ns.queries.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            store_runs: ns.graph.run_count(),
            shards: engine.shard_count(),
        })
    }
}

/// An in-process client handle: the session API used when no network is
/// available (tests, benchmarks, embedded use). All calls go through
/// [`ProvServer::handle`], so admission control and rate limits apply
/// exactly as they do over HTTP.
#[derive(Debug, Clone)]
pub struct Session {
    server: Arc<ProvServer>,
    tenant: String,
    /// When set, every request carries a fresh deterministic root trace
    /// context (see [`Session::traced`]).
    tracer: Option<Arc<SessionTracer>>,
}

/// Deterministic per-session trace-context minting state.
#[derive(Debug)]
struct SessionTracer {
    seed: u64,
    sequence: AtomicU64,
}

impl Session {
    /// The tenant this session authenticates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Make every request from this session a sampled root trace, with
    /// ids minted deterministically from `seed` (builder-style).
    pub fn traced(mut self, seed: u64) -> Session {
        self.tracer = Some(Arc::new(SessionTracer {
            seed,
            sequence: AtomicU64::new(0),
        }));
        self
    }

    fn meta(&self) -> Option<TraceMeta> {
        self.tracer.as_ref().map(|t| {
            TraceMeta::new(TraceContext::root(
                t.seed,
                t.sequence.fetch_add(1, Ordering::Relaxed),
            ))
        })
    }

    /// Create `namespace` (idempotent).
    pub fn create_namespace(&self, namespace: &str) -> Result<(), ServerError> {
        self.server
            .handle_traced(
                &Request {
                    tenant: self.tenant.clone(),
                    namespace: namespace.to_string(),
                    body: RequestBody::CreateNamespace,
                },
                self.meta(),
            )
            .map(|_| ())
    }

    /// Ingest one execution's provenance into `namespace`.
    pub fn ingest(
        &self,
        namespace: &str,
        retro: &RetrospectiveProvenance,
    ) -> Result<IngestAck, ServerError> {
        self.ingest_with_id(namespace, retro, None)
    }

    /// Ingest with an optional idempotency key: re-sending the same
    /// `request_id` replays the original ack instead of applying twice.
    pub fn ingest_with_id(
        &self,
        namespace: &str,
        retro: &RetrospectiveProvenance,
        request_id: Option<&str>,
    ) -> Result<IngestAck, ServerError> {
        match self.server.handle_traced(
            &Request {
                tenant: self.tenant.clone(),
                namespace: namespace.to_string(),
                body: RequestBody::Ingest {
                    retro: Box::new(retro.clone()),
                    request_id: request_id.map(str::to_string),
                },
            },
            self.meta(),
        )? {
            ResponseBody::Ingested(ack) => Ok(ack),
            other => Err(ServerError::BadRequest(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Evaluate a PQL query against `namespace`.
    pub fn query(&self, namespace: &str, pql: &str) -> Result<QueryReply, ServerError> {
        match self.server.handle_traced(
            &Request {
                tenant: self.tenant.clone(),
                namespace: namespace.to_string(),
                body: RequestBody::Query {
                    pql: pql.to_string(),
                },
            },
            self.meta(),
        )? {
            ResponseBody::Query(reply) => Ok(reply),
            other => Err(ServerError::BadRequest(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Per-namespace statistics.
    pub fn stats(&self, namespace: &str) -> Result<NamespaceStats, ServerError> {
        match self.server.handle_traced(
            &Request {
                tenant: self.tenant.clone(),
                namespace: namespace.to_string(),
                body: RequestBody::Stats,
            },
            self.meta(),
        )? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(ServerError::BadRequest(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn retro(seed: u64) -> RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let mut doc = cap.take(r.exec).unwrap();
        // A fresh Executor hands out the same ExecId every time; make the
        // execution identity follow the seed so documents are distinct.
        doc.exec = wf_engine::ExecId(seed);
        doc
    }

    fn server() -> Arc<ProvServer> {
        Arc::new(ProvServer::new(ServerConfig::default()))
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProvServer>();
        assert_send_sync::<Session>();
    }

    #[test]
    fn ingest_then_query_round_trips() {
        let srv = server();
        let session = srv.session("alice");
        let ack = session.ingest("lab", &retro(1)).unwrap();
        assert_eq!(ack.generation, 1);
        assert_eq!(ack.runs_ingested, 8);
        assert_eq!(ack.total_runs, 8);
        let reply = session.query("lab", "count runs").unwrap();
        assert_eq!(reply.result, QueryResult::Count(8));
        assert_eq!(reply.generation, 1);
        assert!(!reply.cached);
        let again = session.query("lab", "count runs").unwrap();
        assert!(again.cached, "second identical query is a cache hit");
        assert_eq!(again.result, QueryResult::Count(8));
    }

    #[test]
    fn namespaces_are_isolated() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("physics", &retro(1)).unwrap();
        session.ingest("biology", &retro(2)).unwrap();
        session.ingest("biology", &retro(3)).unwrap();
        let physics = session.stats("physics").unwrap();
        let biology = session.stats("biology").unwrap();
        assert_eq!(physics.executions, 1);
        assert_eq!(biology.executions, 2);
        assert_eq!(physics.generation, 1);
        assert_eq!(biology.generation, 2);
        assert_eq!(physics.store_runs, physics.runs, "engine and store agree");
        assert!(session.query("nowhere", "count runs").is_err());
    }

    #[test]
    fn unknown_namespace_is_a_404_not_a_panic() {
        let srv = server();
        let session = srv.session("alice");
        let err = session.query("ghost", "count runs").unwrap_err();
        assert_eq!(err.status_code(), 404);
        let err = session.stats("ghost").unwrap_err();
        assert_eq!(err.status_code(), 404);
    }

    #[test]
    fn malformed_pql_is_a_422() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        let err = session.query("lab", "frobnicate the runs").unwrap_err();
        assert_eq!(err.status_code(), 422);
    }

    #[test]
    fn invalid_names_are_rejected() {
        let srv = server();
        let session = srv.session("alice");
        for bad in ["", "has space", "sla/sh", &"x".repeat(65)] {
            let err = session.query(bad, "count runs").unwrap_err();
            assert_eq!(err.status_code(), 400, "namespace {bad:?}");
        }
        let err = srv
            .handle(&Request {
                tenant: "bad tenant".into(),
                namespace: "ns".into(),
                body: RequestBody::Stats,
            })
            .unwrap_err();
        assert_eq!(err.status_code(), 400);
    }

    #[test]
    fn rate_limit_throttles_one_tenant_not_another() {
        let srv = Arc::new(ProvServer::new(ServerConfig {
            tenant_burst: 3,
            tenant_rate_per_sec: 0.000_001,
            ..ServerConfig::default()
        }));
        let alice = srv.session("alice");
        let bob = srv.session("bob");
        alice.ingest("lab", &retro(1)).unwrap();
        // Alice has 2 tokens left (ingest spent one).
        assert!(alice.query("lab", "count runs").is_ok());
        assert!(alice.query("lab", "count runs").is_ok());
        let err = alice.query("lab", "count runs").unwrap_err();
        assert_eq!(err.status_code(), 429);
        assert!(err.is_backpressure());
        assert!(bob.query("lab", "count runs").is_ok(), "bob unaffected");
        assert!(srv.server_stats().throttled >= 1);
    }

    #[test]
    fn shutdown_drains_new_requests() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        srv.begin_shutdown();
        let err = session.query("lab", "count runs").unwrap_err();
        assert_eq!(err, ServerError::ShuttingDown);
    }

    #[test]
    fn generation_in_reply_matches_the_data_queried() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        let r1 = session.query("lab", "count executions").unwrap();
        assert_eq!((r1.generation, r1.result), (1, QueryResult::Count(1)));
        session.ingest("lab", &retro(2)).unwrap();
        let r2 = session.query("lab", "count executions").unwrap();
        assert_eq!((r2.generation, r2.result), (2, QueryResult::Count(2)));
    }

    #[test]
    fn concurrent_mixed_load_is_consistent() {
        let srv = server();
        let namespaces = ["physics", "biology"];
        // Pre-create so query threads never race namespace creation.
        for ns in namespaces {
            srv.session("seed").ingest(ns, &retro(999)).unwrap();
        }
        let writers = 4;
        let per_writer = 3;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let session = srv.session(&format!("writer-{w}"));
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let ns = namespaces[(w + i) % namespaces.len()];
                        session
                            .ingest(ns, &retro(1000 + (w * per_writer + i) as u64))
                            .unwrap();
                    }
                });
            }
            for r in 0..4 {
                let session = srv.session(&format!("reader-{r}"));
                scope.spawn(move || {
                    for i in 0..20 {
                        let ns = namespaces[i % namespaces.len()];
                        let reply = session.query(ns, "count executions").unwrap();
                        // Monotone generations, result consistent with
                        // *some* prefix of the ingest stream.
                        assert!(reply.generation >= 1);
                        assert!(!reply.result.is_empty());
                    }
                });
            }
        });
        let total_execs: usize = namespaces
            .iter()
            .map(|ns| srv.session("check").stats(ns).unwrap().executions)
            .sum();
        assert_eq!(
            total_execs,
            2 + writers * per_writer,
            "no lost writes across namespaces"
        );
        for ns in namespaces {
            let stats = srv.session("check").stats(ns).unwrap();
            assert_eq!(stats.store_runs, stats.runs, "engine and store agree");
        }
    }

    fn temp_data_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "prov-server-{}-{}-{name}",
            std::process::id(),
            wf_engine::event::now_millis()
        ));
        p
    }

    fn durable_config(dir: &std::path::Path) -> ServerConfig {
        ServerConfig {
            durability: Some(DurabilityConfig::new(dir).fsync(prov_store::wal::FsyncPolicy::Never)),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn durable_server_is_not_ready_until_recovered() {
        let dir = temp_data_dir("notready");
        let srv = Arc::new(ProvServer::new(durable_config(&dir)));
        assert!(!srv.is_ready());
        let err = srv.session("alice").ingest("lab", &retro(1)).unwrap_err();
        assert_eq!(err, ServerError::NotReady);
        assert_eq!(err.status_code(), 503);
        assert!(err.is_backpressure(), "clients should retry not-ready");
        srv.recover().unwrap();
        assert!(srv.is_ready());
        srv.session("alice").ingest("lab", &retro(1)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn acked_ingests_survive_restart_and_generation_is_restored() {
        let dir = temp_data_dir("restart");
        {
            let srv = Arc::new(ProvServer::new(durable_config(&dir)));
            srv.recover().unwrap();
            let session = srv.session("alice");
            for seed in 1..=3 {
                session.ingest("lab", &retro(seed)).unwrap();
            }
            session.ingest("other", &retro(9)).unwrap();
            assert_eq!(session.stats("lab").unwrap().generation, 3);
        } // process "dies" — only the WAL files remain

        let srv = Arc::new(ProvServer::new(durable_config(&dir)));
        let reports = srv.recover().unwrap();
        assert_eq!(reports.len(), 2, "both namespaces recovered");
        let lab = reports.iter().find(|r| r.namespace == "lab").unwrap();
        assert_eq!(lab.wal_records, 3);
        assert!(!lab.truncated);
        let session = srv.session("alice");
        let stats = session.stats("lab").unwrap();
        assert_eq!(stats.executions, 3, "no acked ingest lost");
        assert_eq!(stats.generation, 3, "generation counter restored");
        assert_eq!(stats.store_runs, stats.runs, "graph store replayed too");
        // The restored counter keeps advancing from the watermark, so
        // ack/generation accounting is seamless across the restart.
        let ack = session.ingest("lab", &retro(4)).unwrap();
        assert_eq!(ack.generation, 4);
        assert_eq!(
            session.query("lab", "count executions").unwrap().result,
            QueryResult::Count(4)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_ids_make_ingest_idempotent_across_restart() {
        let dir = temp_data_dir("dedupe");
        let first = {
            let srv = Arc::new(ProvServer::new(durable_config(&dir)));
            srv.recover().unwrap();
            let session = srv.session("alice");
            let first = session
                .ingest_with_id("lab", &retro(1), Some("req-1"))
                .unwrap();
            // A duplicate send replays the original ack, applying nothing.
            let dup = session
                .ingest_with_id("lab", &retro(1), Some("req-1"))
                .unwrap();
            assert_eq!(dup, first);
            assert_eq!(session.stats("lab").unwrap().executions, 1);
            first
        };
        // The dedupe memory itself is rebuilt from the WAL: a retry that
        // lands after a crash+restart still replays, not double-applies.
        let srv = Arc::new(ProvServer::new(durable_config(&dir)));
        srv.recover().unwrap();
        let session = srv.session("alice");
        let dup = session
            .ingest_with_id("lab", &retro(1), Some("req-1"))
            .unwrap();
        assert_eq!(dup.generation, first.generation);
        assert_eq!(session.stats("lab").unwrap().executions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_wal_failures_degrade_to_read_only() {
        use prov_store::{IoFault, IoFaultPlan};
        let dir = temp_data_dir("degrade");
        // Three ENOSPC faults at nearby offsets: each healed append re-tries
        // the same region and trips the next one — a persistently full disk.
        let plan = IoFaultPlan::new()
            .at(10, IoFault::NoSpace)
            .at(11, IoFault::NoSpace)
            .at(12, IoFault::NoSpace);
        let config = ServerConfig {
            durability: Some(
                DurabilityConfig::new(&dir)
                    .fsync(prov_store::wal::FsyncPolicy::Never)
                    .fault_plan(plan),
            ),
            ..ServerConfig::default()
        };
        let srv = Arc::new(ProvServer::new(config));
        srv.recover().unwrap();
        let session = srv.session("alice");
        for attempt in 1..=3 {
            let err = session.ingest("lab", &retro(attempt)).unwrap_err();
            assert_eq!(err.status_code(), 500, "attempt {attempt}");
            assert!(matches!(err, ServerError::Durability(_)), "{err}");
        }
        // Third consecutive failure flipped the namespace read-only.
        assert_eq!(srv.degraded_namespaces(), vec!["lab".to_string()]);
        let err = session.ingest("lab", &retro(4)).unwrap_err();
        assert!(matches!(err, ServerError::ReadOnly(_)), "{err}");
        assert_eq!(err.status_code(), 503);
        // Reads still work: degraded means read-only, not down. (The
        // namespace is empty — every failed ingest was refused *before*
        // the in-memory apply, so stores and WAL never diverged.)
        assert_eq!(
            session.query("lab", "count executions").unwrap().result,
            QueryResult::Count(0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reported_on_recovery() {
        let dir = temp_data_dir("torn");
        {
            let srv = Arc::new(ProvServer::new(durable_config(&dir)));
            srv.recover().unwrap();
            let session = srv.session("alice");
            for seed in 1..=2 {
                session.ingest("lab", &retro(seed)).unwrap();
            }
        }
        // A crash mid-write leaves a torn frame at the tail.
        let wal_path = dir.join("lab").join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let keep = bytes.len() - 37;
        bytes.truncate(keep);
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&wal_path, &bytes).unwrap();

        let srv = Arc::new(ProvServer::new(durable_config(&dir)));
        let reports = srv.recover().unwrap();
        let lab = &reports[0];
        assert!(lab.truncated, "torn tail must be detected");
        assert_eq!(lab.wal_records, 1, "only the valid prefix replays");
        assert_eq!(lab.generation, 1);
        let stats = srv.session("alice").stats("lab").unwrap();
        assert_eq!(stats.executions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_namespace_serves_identical_results() {
        let single = server();
        let sharded = Arc::new(ProvServer::new(ServerConfig {
            shards: 4,
            ..ServerConfig::default()
        }));
        let a = single.session("alice");
        let b = sharded.session("alice");
        for seed in 1..=6 {
            a.ingest("lab", &retro(seed)).unwrap();
            b.ingest("lab", &retro(seed)).unwrap();
        }
        for pql in [
            "count runs",
            "list runs where status = succeeded",
            "count artifacts",
            "list executions",
            "count runs where module = \"Histogram@1\"",
        ] {
            let lhs = a.query("lab", pql).unwrap();
            let rhs = b.query("lab", pql).unwrap();
            assert_eq!(lhs.result, rhs.result, "{pql}");
            assert_eq!(lhs.generation, rhs.generation, "{pql}");
        }
        let stats = b.stats("lab").unwrap();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.generation, 6, "one generation per ingest");
        assert_eq!(stats.store_runs, stats.runs);
        assert_eq!(a.stats("lab").unwrap().shards, 1);
    }

    #[test]
    fn sharded_cache_is_invalidated_by_ingest_into_any_shard() {
        let srv = Arc::new(ProvServer::new(ServerConfig {
            shards: 4,
            ..ServerConfig::default()
        }));
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        let first = session.query("lab", "count runs").unwrap();
        assert!(!first.cached);
        assert!(session.query("lab", "count runs").unwrap().cached);
        // Ingest documents that land on several different shards; each
        // one must invalidate the cached count (generation is the sum of
        // the per-shard counters, so any shard's advance changes it).
        let ns = srv.namespace("lab").unwrap();
        assert_eq!(ns.shard_count(), 4);
        for seed in 2..=5 {
            session.ingest("lab", &retro(seed)).unwrap();
            let reply = session.query("lab", "count runs").unwrap();
            assert!(!reply.cached, "stale entry served after ingest {seed}");
            assert_eq!(reply.result, QueryResult::Count(8 * seed as usize));
        }
    }

    #[test]
    fn sharded_durable_namespace_recovers_across_restart() {
        let dir = temp_data_dir("sharded");
        let sharded_config = || ServerConfig {
            shards: 3,
            ..durable_config(&dir)
        };
        {
            let srv = Arc::new(ProvServer::new(sharded_config()));
            srv.recover().unwrap();
            let session = srv.session("alice");
            for seed in 1..=6 {
                session.ingest("lab", &retro(seed)).unwrap();
            }
            assert_eq!(session.stats("lab").unwrap().generation, 6);
        } // process "dies" — only the per-shard WALs remain

        // Restart with shards=1: the on-disk marker pins the layout, so
        // the namespace still comes back sharded and complete.
        let srv = Arc::new(ProvServer::new(durable_config(&dir)));
        let reports = srv.recover().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].wal_records, 6, "all shard WALs replayed");
        assert_eq!(reports[0].generation, 6);
        let session = srv.session("alice");
        let stats = session.stats("lab").unwrap();
        assert_eq!(stats.shards, 3, "marker wins over config");
        assert_eq!(stats.executions, 6);
        assert_eq!(stats.generation, 6, "watermark sums shard generations");
        assert_eq!(stats.store_runs, stats.runs);
        let ack = session.ingest("lab", &retro(7)).unwrap();
        assert_eq!(ack.generation, 7, "generation seamless across restart");
        assert_eq!(
            session.query("lab", "count executions").unwrap().result,
            QueryResult::Count(7)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_scoped_spans_land_in_the_namespace_trace() {
        let srv = server();
        let session = srv.session("alice");
        session.ingest("lab", &retro(1)).unwrap();
        session.query("lab", "count runs").unwrap();
        session.query("lab", "list runs").unwrap();
        let trace = srv.take_trace("lab").unwrap();
        assert_eq!(trace.spans.len(), 2, "one span per query request");
        assert!(srv.take_trace("ghost").is_none());
        let prom = srv.registry().render_prometheus();
        assert!(prom.contains("prov_server_requests_total"));
        assert!(prom.contains("pql_queries_total"));
    }
}
