//! Figure 2 of the paper, end to end: refining workflows by analogy.
//!
//! A user improves their quick visualization by smoothing the isosurface
//! (versions `a -> b` in a version tree). Another user's workflow `c` —
//! different data, different labels, an extra analysis branch — receives
//! the *same* change automatically: the system diffs `a -> b`, finds the
//! most likely match of `a` inside `c`, and transplants the refinement.
//!
//! Run with: `cargo run --example analogy_refinement`

use provenance_workflows::evolution::scenario;
use provenance_workflows::prelude::*;

fn main() {
    let (a, b, c) = scenario::figure2_triple();

    // --- evolution provenance: record a -> b in a version tree ------------
    let mut tree = VersionTree::new(WorkflowId(10), "quick viz");
    let va = tree
        .import_workflow(tree.root(), &a, "alice")
        .expect("import a");
    tree.tag(va, "original").expect("tag");
    // Commit the difference a -> b as actions.
    let d = diff_workflows(&a, &b);
    let mut actions = Vec::new();
    for conn in &d.conns_only_left {
        actions.push(Action::DeleteConnection { conn: conn.clone() });
    }
    for id in &d.only_right {
        actions.push(Action::AddNode {
            node: b.nodes[id].clone(),
        });
    }
    for conn in &d.conns_only_right {
        actions.push(Action::AddConnection { conn: conn.clone() });
    }
    let vb = tree.commit_all(va, actions, "alice").expect("commit diff");
    tree.tag(vb, "smoothed").expect("tag");
    println!("== version tree ==");
    println!("{}", tree.render());
    let materialized_b = tree.materialize(vb).expect("materialize");
    assert!(materialized_b
        .nodes
        .values()
        .any(|n| n.module == "SmoothMesh"));

    // --- the analogy template ---------------------------------------------
    println!("== analogy template (diff a -> b) ==");
    println!("{}", d.render());

    // --- apply to the other user's workflow -------------------------------
    println!("== target workflow c (another user) ==");
    println!("{}", ProspectiveProvenance::of(&c).render_recipe());

    let result = apply_by_analogy(&a, &b, &c).expect("analogy applies");
    println!(
        "== matching (mean score {:.2}) ==",
        result.matching.mean_score()
    );
    for (src, (tgt, score)) in &result.matching.pairs {
        println!(
            "  {} '{}' -> {} '{}' ({score:.2})",
            src,
            a.node(*src).expect("src node").label,
            tgt,
            c.node(*tgt).expect("tgt node").label,
        );
    }
    assert!(result.is_clean(), "skipped: {:?}", result.skipped);

    println!("== refined workflow c' ==");
    println!(
        "{}",
        ProspectiveProvenance::of(&result.workflow).render_recipe()
    );

    // --- verify: both refined workflows actually run ----------------------
    let exec = Executor::new(standard_registry());
    let run_b = exec.run(&materialized_b).expect("b runs");
    let run_c = exec.run(&result.workflow).expect("c' runs");
    assert!(run_b.succeeded() && run_c.succeeded());
    println!(
        "== executed: b ({} modules) and c' ({} modules) both succeed ==",
        run_b.node_runs.len(),
        run_c.node_runs.len()
    );

    // The smoothing really is on c's render path now.
    let smooth = result
        .workflow
        .nodes
        .values()
        .find(|n| n.module == "SmoothMesh")
        .expect("smooth transplanted");
    println!("transplanted node: {} '{}'", smooth.id, smooth.label);
}
