//! Provenance-based memoization of module runs.
//!
//! Because retrospective provenance records exactly which module revision,
//! parameters, and input artifacts produced an output, the same key
//! identifies *redundant computation*: a module run whose key was seen
//! before can be answered from the cache. This is what makes "scalable
//! exploration of large parameter spaces" (§2.3) tractable — a sweep that
//! changes one downstream parameter re-executes only the suffix.

use crate::value::{ContentHasher, Value};
use std::collections::{HashMap, VecDeque};

/// Cache key of a module run: module identity + effective parameters +
/// input artifact hashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u64);

/// Compute the cache key for a module run.
///
/// `params` and `inputs` must be iterated in a deterministic (sorted) order;
/// the executor passes `BTreeMap` iterators, which are.
pub fn cache_key<'a>(
    identity: &str,
    params: impl Iterator<Item = (&'a String, String)>,
    inputs: impl Iterator<Item = (&'a String, u64)>,
) -> CacheKey {
    let mut h = ContentHasher::new();
    h.update(identity.as_bytes());
    h.update(&[0xff]);
    for (name, rendered) in params {
        h.update(name.as_bytes());
        h.update(&[0]);
        h.update(rendered.as_bytes());
        h.update(&[1]);
    }
    h.update(&[0xfe]);
    for (port, hash) in inputs {
        h.update(port.as_bytes());
        h.update(&[0]);
        h.update_u64(hash);
    }
    CacheKey(h.finish())
}

/// Statistics of cache behaviour, reported by experiment E10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted due to the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded FIFO cache of module-run outputs.
///
/// FIFO (rather than LRU) keeps the implementation simple and is a fine fit
/// for sweep workloads, whose reuse pattern is dominated by the shared
/// upstream prefix that is inserted once and hit many times immediately
/// after.
#[derive(Debug)]
pub struct RunCache {
    map: HashMap<CacheKey, Vec<(String, Value)>>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    stats: CacheStats,
}

impl RunCache {
    /// A cache bounded to `capacity` module-run entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Look up a run; clones the outputs on hit (values are `Arc`-backed,
    /// so cloning bulk data is cheap).
    pub fn get(&mut self, key: CacheKey) -> Option<Vec<(String, Value)>> {
        match self.map.get(&key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a run's outputs, evicting the oldest entry when full.
    pub fn insert(&mut self, key: CacheKey, outputs: Vec<(String, Value)>) {
        if self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(key, outputs);
        self.order.push_back(key);
    }

    /// Is a run cached under `key`? Does not touch statistics (unlike
    /// [`RunCache::get`]), so tests can inspect the cache without skewing
    /// hit rates.
    pub fn contains(&self, key: CacheKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all entries and reset statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey(n)
    }

    #[test]
    fn get_miss_then_hit() {
        let mut c = RunCache::new(4);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), vec![("out".into(), Value::Int(1))]);
        assert_eq!(
            c.get(key(1)).unwrap(),
            vec![("out".to_string(), Value::Int(1))]
        );
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut c = RunCache::new(2);
        c.insert(key(1), vec![]);
        c.insert(key(2), vec![]);
        c.insert(key(3), vec![]); // evicts 1
        assert!(c.get(key(1)).is_none());
        assert!(c.get(key(2)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = RunCache::new(2);
        c.insert(key(1), vec![("a".into(), Value::Int(1))]);
        c.insert(key(1), vec![("a".into(), Value::Int(999))]);
        assert_eq!(
            c.get(key(1)).unwrap()[0].1,
            Value::Int(1),
            "first insert wins; keys are content-derived so payloads match anyway"
        );
    }

    #[test]
    fn cache_key_sensitive_to_all_components() {
        let params_a = vec![("bins".to_string(), "64".to_string())];
        let params_b = vec![("bins".to_string(), "32".to_string())];
        let inputs_a = vec![("data".to_string(), 111u64)];
        let inputs_b = vec![("data".to_string(), 222u64)];
        let k = |id: &str, p: &[(String, String)], i: &[(String, u64)]| {
            cache_key(
                id,
                p.iter().map(|(a, b)| (a, b.clone())),
                i.iter().map(|(a, b)| (a, *b)),
            )
        };
        let base = k("Hist@1", &params_a, &inputs_a);
        assert_ne!(base, k("Hist@2", &params_a, &inputs_a));
        assert_ne!(base, k("Hist@1", &params_b, &inputs_a));
        assert_ne!(base, k("Hist@1", &params_a, &inputs_b));
        assert_eq!(base, k("Hist@1", &params_a, &inputs_a));
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut c = RunCache::new(2);
        c.insert(key(1), vec![]);
        assert!(c.contains(key(1)));
        assert!(!c.contains(key(2)));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = RunCache::new(2);
        c.insert(key(1), vec![]);
        c.get(key(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), CacheStats::default());
    }
}
