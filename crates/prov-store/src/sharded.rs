//! Execution-hash sharding over N inner stores, with scatter-gather
//! queries.
//!
//! The tutorial's §3 scalability challenge: provenance stores must stay
//! queryable as corpora grow to millions of runs. [`ShardedStore`]
//! partitions provenance *by execution id* — lineage locality follows the
//! run, so most closure work stays shard-local — and answers the canned
//! queries by fanning out over the shards on a scoped thread pool:
//!
//! * flat queries (Q1 generators, Q4 aggregates, run counts) scatter to
//!   every shard and merge by union / summation;
//! * transitive queries (Q2 lineage, Q3 impact) run an **iterative
//!   closure-frontier exchange**: each round expands every shard to its
//!   local fixpoint from the current artifact frontier
//!   ([`ProvenanceStore::expand_frontier`]), then the coordinator
//!   re-seeds all shards with the newly discovered artifacts — the only
//!   values that can join provenance *across* shards, since every run and
//!   all of its edges live wholly in the shard that owns its execution.
//!
//! Each shard sits behind the existing [`SharedStore`] generation
//! discipline, so per-shard ingest is concurrent-safe and the combined
//! generation (the sum over shards) advances exactly once per ingested
//! document. All shards adopt one [`StoreStats`] recorder
//! ([`ProvenanceStore::adopt_stats`]), so stats deltas observed through
//! the sharded store are the *exact sum* of per-shard work — EXPLAIN
//! ANALYZE stays truthful.

use crate::api::{sort_artifacts, sort_runs, Frontier, ProvenanceStore, RunRef};
use crate::shared::SharedStore;
use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::{BTreeMap, BTreeSet};
use wf_engine::ExecId;

/// Default seed for the shard hash; any fixed odd-mixed constant works.
pub const DEFAULT_SHARD_SEED: u64 = 0x5AD5;

/// The shard an execution id routes to, under `seed`, over `shards`
/// shards. A seeded splitmix64 finalizer: cheap, deterministic across
/// platforms, and adversarial inputs cannot line up with the unseeded
/// identity hash of a `HashMap`.
pub fn shard_of(seed: u64, exec: ExecId, shards: usize) -> usize {
    let mut x = exec.0 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards.max(1) as u64) as usize
}

/// N stores partitioned by execution id, queried scatter-gather.
#[derive(Debug)]
pub struct ShardedStore<S> {
    shards: Vec<SharedStore<S>>,
    seed: u64,
    stats: StoreStats,
}

impl<S: ProvenanceStore + Send + Sync> ShardedStore<S> {
    /// `shards` stores built by `make`, routed by the default seed.
    pub fn new(shards: usize, make: impl FnMut() -> S) -> Self {
        Self::with_seed(shards, DEFAULT_SHARD_SEED, make)
    }

    /// `shards` stores built by `make`, routed by `shard_of(seed, exec)`.
    pub fn with_seed(shards: usize, seed: u64, mut make: impl FnMut() -> S) -> Self {
        let stats = StoreStats::new();
        let shards = (0..shards.max(1))
            .map(|_| {
                let mut s = make();
                // One recorder across all shards: totals sum exactly.
                s.adopt_stats(&stats);
                SharedStore::new(s)
            })
            .collect();
        ShardedStore {
            shards,
            seed,
            stats,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The seed the router hashes with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Which shard owns this execution.
    pub fn route(&self, exec: ExecId) -> usize {
        shard_of(self.seed, exec, self.shards.len())
    }

    /// Direct access to one shard (tests, per-shard EXPLAIN rows).
    pub fn shard(&self, i: usize) -> &SharedStore<S> {
        &self.shards[i]
    }

    /// Combined generation: the sum of per-shard generations. Bumps
    /// exactly once per ingested document, and advances whenever *any*
    /// shard ingests — the property the query-cache invalidation key
    /// relies on.
    pub fn generation(&self) -> u64 {
        self.shards.iter().map(|s| s.generation()).sum()
    }

    /// Per-shard generations, index-aligned with the shard list.
    pub fn generations(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.generation()).collect()
    }

    /// Route one document to its shard and ingest it under that shard's
    /// write lock. Returns the new combined generation. Distinct shards
    /// ingest concurrently; two documents for the same shard serialize on
    /// its lock.
    pub fn ingest_shared(&self, retro: &RetrospectiveProvenance) -> u64 {
        let shard = self.route(retro.exec);
        self.shards[shard].ingest_shared(retro);
        self.generation()
    }

    /// Run `f` against every shard on a scoped thread pool, preserving
    /// shard order in the result.
    pub fn scatter<T: Send>(&self, f: impl Fn(&SharedStore<S>) -> T + Sync) -> Vec<T> {
        if self.shards.len() == 1 {
            return vec![f(&self.shards[0])];
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|s| scope.spawn(move || f(s)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    /// The closure-frontier exchange: expand every shard to its local
    /// fixpoint from the frontier, union the results, re-seed with the
    /// newly discovered artifacts, repeat until no shard finds anything
    /// new. Returns the global closure (runs reached, artifacts reached
    /// excluding the seeds), which equals the single-store closure.
    pub fn exchange(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        let mut known: BTreeSet<ArtifactHash> = BTreeSet::new();
        let mut frontier: Vec<ArtifactHash> = Vec::new();
        for &h in seeds {
            if known.insert(h) {
                frontier.push(h);
            }
        }
        let mut runs: BTreeSet<RunRef> = BTreeSet::new();
        let mut artifacts: Vec<ArtifactHash> = Vec::new();
        while !frontier.is_empty() {
            let partials = self.scatter(|s| s.expand_frontier(&frontier, upstream));
            let mut next = Vec::new();
            for partial in partials {
                runs.extend(partial.runs);
                for h in partial.artifacts {
                    if known.insert(h) {
                        artifacts.push(h);
                        next.push(h);
                    }
                }
            }
            frontier = next;
        }
        Frontier {
            runs: runs.into_iter().collect(),
            artifacts,
        }
    }
}

impl<S: ProvenanceStore + Send + Sync> ProvenanceStore for ShardedStore<S> {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        self.ingest_shared(retro);
    }

    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        let partials = self.scatter(|s| s.generators(artifact));
        sort_runs(partials.into_iter().flatten().collect())
    }

    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        sort_runs(self.exchange(&[artifact], true).runs)
    }

    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        sort_artifacts(self.exchange(&[artifact], false).artifacts)
    }

    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        self.exchange(seeds, upstream)
    }

    fn adopt_stats(&mut self, stats: &StoreStats) {
        for shard in &mut self.shards {
            shard.adopt_stats(stats);
        }
        self.stats = stats.clone();
    }

    fn runs_per_module(&self) -> Vec<(String, usize)> {
        let partials = self.scatter(|s| s.runs_per_module());
        let mut merged: BTreeMap<String, usize> = BTreeMap::new();
        for partial in partials {
            for (identity, n) in partial {
                *merged.entry(identity).or_default() += n;
            }
        }
        merged.into_iter().collect()
    }

    fn run_count(&self) -> usize {
        self.scatter(|s| s.run_count()).into_iter().sum()
    }

    fn set_optimized(&self, on: bool) {
        for shard in &self.shards {
            shard.set_optimized(on);
        }
    }

    fn optimized(&self) -> bool {
        self.shards[0].optimized()
    }

    fn approx_bytes(&self) -> usize {
        self.scatter(|s| s.approx_bytes()).into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphstore::GraphStore;
    use crate::logstore::LogStore;
    use crate::relstore::RelStore;
    use crate::triplestore::TripleStore;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::challenge_workflow;
    use wf_engine::{standard_registry, Executor};

    fn corpus() -> Vec<RetrospectiveProvenance> {
        let exec = Executor::new(standard_registry());
        (0..6u64)
            .map(|i| {
                let wf = challenge_workflow(i + 1, 3, 3);
                let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
                let r = exec.run_observed(&wf, &mut cap).expect("workflow runs");
                cap.take(r.exec).expect("captured")
            })
            .collect()
    }

    fn probe_digests(docs: &[RetrospectiveProvenance]) -> Vec<ArtifactHash> {
        let mut out: Vec<ArtifactHash> = docs
            .iter()
            .flat_map(|d| d.runs.iter())
            .flat_map(|r| r.outputs.iter().map(|(_, h)| *h))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7] {
            for e in 0..200u64 {
                let a = shard_of(DEFAULT_SHARD_SEED, ExecId(e), shards);
                let b = shard_of(DEFAULT_SHARD_SEED, ExecId(e), shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // Different seeds give different assignments somewhere.
        let moved = (0..64u64).any(|e| shard_of(1, ExecId(e), 4) != shard_of(2, ExecId(e), 4));
        assert!(moved, "seed must actually perturb the routing");
    }

    #[test]
    fn sharded_answers_match_a_single_store_on_every_backend() {
        let docs = corpus();
        let digests = probe_digests(&docs);
        type Factory = fn() -> Box<dyn ProvenanceStore + Send + Sync>;
        let factories: Vec<(&str, Factory)> = vec![
            ("graph", || Box::new(GraphStore::new())),
            ("relational", || Box::new(RelStore::new())),
            ("triple", || Box::new(TripleStore::new())),
            ("log", || Box::new(LogStore::ephemeral())),
        ];
        for (name, make) in factories {
            let mut plain = make();
            let sharded = ShardedStore::new(3, make);
            for d in &docs {
                plain.ingest(d);
                sharded.ingest_shared(d);
            }
            assert_eq!(sharded.generation(), docs.len() as u64, "{name}");
            assert_eq!(sharded.run_count(), plain.run_count(), "{name}");
            assert_eq!(sharded.runs_per_module(), plain.runs_per_module(), "{name}");
            for &h in &digests {
                assert_eq!(
                    sharded.generators(h),
                    sort_runs(plain.generators(h)),
                    "{name}: generators({h:016x})"
                );
                assert_eq!(
                    sharded.lineage_runs(h),
                    sort_runs(plain.lineage_runs(h)),
                    "{name}: lineage({h:016x})"
                );
                assert_eq!(
                    sharded.derived_artifacts(h),
                    sort_artifacts(plain.derived_artifacts(h)),
                    "{name}: impact({h:016x})"
                );
            }
        }
    }

    #[test]
    fn stats_sum_exactly_across_shards() {
        let docs = corpus();
        let sharded = ShardedStore::new(4, GraphStore::new);
        for d in &docs {
            sharded.ingest_shared(d);
        }
        let h = probe_digests(&docs)[0];
        let before = sharded.stats().snapshot();
        let _ = sharded.lineage_runs(h);
        let d = sharded.stats().snapshot().delta(&before);
        // Every shard probes the seed at least once per exchange round.
        assert!(d.keyed_lookups >= 4, "all shards report into one recorder");
        assert!(d.node_reads > 0);
    }

    #[test]
    fn shard_count_one_degenerates_to_a_single_store() {
        let docs = corpus();
        let mut plain = GraphStore::new();
        let sharded = ShardedStore::new(1, GraphStore::new);
        for d in &docs {
            plain.ingest(d);
            sharded.ingest_shared(d);
        }
        for &h in &probe_digests(&docs) {
            assert_eq!(sharded.lineage_runs(h), sort_runs(plain.lineage_runs(h)));
        }
    }

    #[test]
    fn concurrent_shard_ingest_loses_no_writes() {
        let docs = corpus();
        let mut plain = GraphStore::new();
        for d in &docs {
            plain.ingest(d);
        }
        let sharded = ShardedStore::new(4, GraphStore::new);
        std::thread::scope(|scope| {
            for d in &docs {
                let sharded = &sharded;
                scope.spawn(move || {
                    sharded.ingest_shared(d);
                });
            }
        });
        assert_eq!(sharded.generation(), docs.len() as u64);
        assert_eq!(sharded.run_count(), plain.run_count());
        assert_eq!(
            sharded.generations().iter().sum::<u64>(),
            docs.len() as u64,
            "per-shard generations account for every document exactly once"
        );
    }
}
