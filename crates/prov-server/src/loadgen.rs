//! A closed-loop multithreaded load generator for [`ProvServer`].
//!
//! Each client thread runs a closed loop — issue a request, wait for the
//! reply, issue the next — over a deterministic per-thread mix of ingest
//! and PQL traffic spread across namespaces. The harness records every
//! request's latency and verdict, then verifies global consistency:
//!
//! * **zero lost writes** — every namespace's final execution count and
//!   generation equal the number of acknowledged ingests it received;
//! * **engine/store agreement** — the PQL engine and the shared graph
//!   store hold the same number of runs;
//! * **exact read accounting** — summed per-namespace store counters
//!   equal the snapshot delta over the whole run (relaxed atomics lose
//!   nothing).
//!
//! Backpressure rejections (429/503) are counted, never retried silently,
//! and excluded from the latency distribution.

use crate::server::{ProvServer, QueryReply, Session};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::model::RetrospectiveProvenance;
use wf_engine::synth::figure1_workflow;
use wf_engine::{standard_registry, ExecId, Executor};

/// Load-run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Namespaces the traffic is spread over.
    pub namespaces: Vec<String>,
    /// Out of 100: how many requests are ingests (the rest are queries).
    pub ingest_percent: u32,
    /// Trace every request: each client session mints deterministic
    /// per-request trace contexts, so the run exercises the span-recording
    /// path (the observability-overhead benchmark flips this).
    pub traced: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 100,
            namespaces: vec!["physics".into(), "biology".into()],
            ingest_percent: 25,
            traced: false,
        }
    }
}

/// The PQL mix each query request cycles through.
const QUERIES: &[&str] = &[
    "count runs",
    "count executions",
    "list runs where status = failed",
    "count artifacts",
    "list executions",
];

/// One client's tally.
#[derive(Debug, Default)]
struct ClientTally {
    ingests_acked: u64,
    queries_answered: u64,
    cache_hits: u64,
    backpressure: u64,
    errors: u64,
    latencies_micros: Vec<u64>,
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads.
    pub clients: usize,
    /// Total requests issued.
    pub requests: u64,
    /// Acknowledged ingests.
    pub ingests_acked: u64,
    /// Successfully answered queries.
    pub queries_answered: u64,
    /// Query replies served from the result cache.
    pub cache_hits: u64,
    /// 429/503-style rejections (excluded from latency stats).
    pub backpressure: u64,
    /// Non-backpressure errors (must be zero in a healthy run).
    pub errors: u64,
    /// Wall-clock of the whole run, microseconds.
    pub wall_micros: u64,
    /// Served requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over served requests, microseconds.
    pub p50_micros: u64,
    /// 99th percentile latency.
    pub p99_micros: u64,
    /// 99.9th percentile latency.
    pub p999_micros: u64,
    /// Maximum observed latency.
    pub max_micros: u64,
    /// Per-namespace `(name, executions, generation)` after the run.
    pub namespace_totals: Vec<(String, usize, u64)>,
    /// Did every consistency check pass?
    pub consistent: bool,
    /// Human-readable consistency findings (empty when `consistent`).
    pub violations: Vec<String>,
}

impl LoadReport {
    /// Render the report as a JSON object (the `BENCH_server.json` shape).
    pub fn render_json(&self) -> String {
        let namespaces = self
            .namespace_totals
            .iter()
            .map(|(name, execs, generation)| {
                format!(
                    "{{\"namespace\":\"{name}\",\"executions\":{execs},\"generation\":{generation}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let violations = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", prov_telemetry::json::escape(v)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"prov-server-closed-loop\",\n",
                "  \"clients\": {},\n",
                "  \"requests\": {},\n",
                "  \"ingests_acked\": {},\n",
                "  \"queries_answered\": {},\n",
                "  \"cache_hits\": {},\n",
                "  \"backpressure_rejections\": {},\n",
                "  \"errors\": {},\n",
                "  \"wall_micros\": {},\n",
                "  \"throughput_rps\": {:.1},\n",
                "  \"latency_micros\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}},\n",
                "  \"namespaces\": [{}],\n",
                "  \"consistent\": {},\n",
                "  \"violations\": [{}]\n",
                "}}\n"
            ),
            self.clients,
            self.requests,
            self.ingests_acked,
            self.queries_answered,
            self.cache_hits,
            self.backpressure,
            self.errors,
            self.wall_micros,
            self.throughput_rps,
            self.p50_micros,
            self.p99_micros,
            self.p999_micros,
            self.max_micros,
            namespaces,
            self.consistent,
            violations,
        )
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Build the pool of provenance documents clients ingest. Documents are
/// synthesized up front so the load loop measures the server, not the
/// workflow engine.
fn document_pool(size: usize) -> Vec<RetrospectiveProvenance> {
    let exec = Executor::new(standard_registry());
    (0..size)
        .map(|i| {
            let (wf, _) = figure1_workflow(i as u64 + 1);
            let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
            let r = exec
                .run_observed(&wf, &mut cap)
                .expect("synth workflow runs");
            cap.take(r.exec).expect("capture present")
        })
        .collect()
}

/// Run the closed-loop load against an in-process server and verify
/// consistency afterwards.
pub fn run_load(server: &Arc<ProvServer>, config: &LoadConfig) -> LoadReport {
    assert!(!config.namespaces.is_empty(), "need at least one namespace");
    let docs = Arc::new(document_pool(16));
    // Ensure namespaces exist before queries race ingests.
    let seed_session = server.session("loadgen-seed");
    for ns in &config.namespaces {
        seed_session
            .create_namespace(ns)
            .expect("namespace creation");
    }
    // Globally unique exec ids so every ingest is a distinct execution.
    let next_exec = Arc::new(AtomicU64::new(1_000));
    let expected_execs: Vec<AtomicU64> = config
        .namespaces
        .iter()
        .map(|_| AtomicU64::new(0))
        .collect();
    let expected_execs = Arc::new(expected_execs);

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let mut session = server.session(&format!("client-{c}"));
                if config.traced {
                    // Deterministic per-client seeds keep traced runs
                    // replayable; the +1 avoids the degenerate zero seed.
                    session = session.traced(0xC0FF_EE00_0000_0000 | (c as u64 + 1));
                }
                let docs = Arc::clone(&docs);
                let next_exec = Arc::clone(&next_exec);
                let expected = Arc::clone(&expected_execs);
                let config = config.clone();
                scope.spawn(move || client_loop(c, &session, &config, &docs, &next_exec, &expected))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });
    let wall_micros = started.elapsed().as_micros() as u64;

    // Aggregate.
    let mut latencies: Vec<u64> = Vec::new();
    let mut report = LoadReport {
        clients: config.clients,
        requests: (config.clients * config.requests_per_client) as u64,
        ingests_acked: 0,
        queries_answered: 0,
        cache_hits: 0,
        backpressure: 0,
        errors: 0,
        wall_micros,
        throughput_rps: 0.0,
        p50_micros: 0,
        p99_micros: 0,
        p999_micros: 0,
        max_micros: 0,
        namespace_totals: Vec::new(),
        consistent: true,
        violations: Vec::new(),
    };
    for tally in &tallies {
        report.ingests_acked += tally.ingests_acked;
        report.queries_answered += tally.queries_answered;
        report.cache_hits += tally.cache_hits;
        report.backpressure += tally.backpressure;
        report.errors += tally.errors;
        latencies.extend_from_slice(&tally.latencies_micros);
    }
    latencies.sort_unstable();
    report.p50_micros = percentile(&latencies, 0.50);
    report.p99_micros = percentile(&latencies, 0.99);
    report.p999_micros = percentile(&latencies, 0.999);
    report.max_micros = latencies.last().copied().unwrap_or(0);
    let served = report.ingests_acked + report.queries_answered;
    report.throughput_rps = if wall_micros == 0 {
        0.0
    } else {
        served as f64 * 1_000_000.0 / wall_micros as f64
    };

    // Consistency verification.
    let check = server.session("loadgen-check");
    for (i, ns) in config.namespaces.iter().enumerate() {
        let stats = check.stats(ns).expect("stats after run");
        let expected = expected_execs[i].load(Ordering::SeqCst) as usize;
        report
            .namespace_totals
            .push((ns.clone(), stats.executions, stats.generation));
        if stats.executions != expected {
            report.violations.push(format!(
                "namespace '{ns}': {} executions resident but {expected} acked (lost writes)",
                stats.executions
            ));
        }
        if stats.generation != expected as u64 {
            report.violations.push(format!(
                "namespace '{ns}': generation {} but {expected} ingests acked",
                stats.generation
            ));
        }
        if stats.store_runs != stats.runs {
            report.violations.push(format!(
                "namespace '{ns}': engine holds {} runs, graph store {}",
                stats.runs, stats.store_runs
            ));
        }
    }
    if report.errors > 0 {
        report
            .violations
            .push(format!("{} non-backpressure errors", report.errors));
    }
    report.consistent = report.violations.is_empty();
    report
}

fn client_loop(
    client_idx: usize,
    session: &Session,
    config: &LoadConfig,
    docs: &[RetrospectiveProvenance],
    next_exec: &AtomicU64,
    expected_execs: &[AtomicU64],
) -> ClientTally {
    let mut tally = ClientTally::default();
    // Deterministic per-client LCG so the mix needs no external RNG.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (client_idx as u64).wrapping_mul(0xA076_1D64);
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..config.requests_per_client {
        let ns_idx = (rand() % config.namespaces.len() as u64) as usize;
        let ns = &config.namespaces[ns_idx];
        let is_ingest = (rand() % 100) < u64::from(config.ingest_percent);
        let started = Instant::now();
        if is_ingest {
            let mut doc = docs[(rand() % docs.len() as u64) as usize].clone();
            doc.exec = ExecId(next_exec.fetch_add(1, Ordering::SeqCst));
            match session.ingest(ns, &doc) {
                Ok(_ack) => {
                    expected_execs[ns_idx].fetch_add(1, Ordering::SeqCst);
                    tally.ingests_acked += 1;
                    tally
                        .latencies_micros
                        .push(started.elapsed().as_micros() as u64);
                }
                Err(e) if e.is_backpressure() => tally.backpressure += 1,
                Err(_) => tally.errors += 1,
            }
        } else {
            let pql = QUERIES[(client_idx + i) % QUERIES.len()];
            match session.query(ns, pql) {
                Ok(QueryReply { cached, .. }) => {
                    tally.queries_answered += 1;
                    if cached {
                        tally.cache_hits += 1;
                    }
                    tally
                        .latencies_micros
                        .push(started.elapsed().as_micros() as u64);
                }
                Err(e) if e.is_backpressure() => tally.backpressure += 1,
                Err(_) => tally.errors += 1,
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn small_load_run_is_consistent() {
        let server = Arc::new(ProvServer::new(ServerConfig::default()));
        let config = LoadConfig {
            clients: 4,
            requests_per_client: 20,
            namespaces: vec!["a".into(), "b".into()],
            ingest_percent: 30,
            traced: false,
        };
        let report = run_load(&server, &config);
        assert!(report.consistent, "violations: {:?}", report.violations);
        assert_eq!(report.errors, 0);
        assert_eq!(
            report.ingests_acked + report.queries_answered + report.backpressure,
            report.requests
        );
        assert!(report.queries_answered > 0);
    }

    #[test]
    fn report_renders_parseable_json() {
        let server = Arc::new(ProvServer::new(ServerConfig::default()));
        let config = LoadConfig {
            clients: 2,
            requests_per_client: 10,
            namespaces: vec!["solo".into()],
            ingest_percent: 50,
            traced: false,
        };
        let report = run_load(&server, &config);
        let text = report.render_json();
        let v = prov_telemetry::parse_json(&text).expect("valid JSON");
        assert_eq!(
            v.get("clients").and_then(|c| c.as_u64()),
            Some(2),
            "text: {text}"
        );
        assert!(v.get("latency_micros").is_some());
        assert_eq!(v.get("consistent").and_then(|c| c.as_bool()), Some(true));
    }

    #[test]
    fn traced_load_run_records_traces_and_stays_consistent() {
        let server = Arc::new(ProvServer::new(ServerConfig::default()));
        let config = LoadConfig {
            clients: 2,
            requests_per_client: 10,
            namespaces: vec!["traced".into()],
            ingest_percent: 50,
            traced: true,
        };
        let report = run_load(&server, &config);
        assert!(report.consistent, "violations: {:?}", report.violations);
        assert!(
            server.trace_count() > 0,
            "traced load must record request spans"
        );
    }

    #[test]
    fn overload_is_shed_not_queued() {
        // A 1-permit window with 4 clients must shed load but stay
        // consistent: acked ingests all land, rejected ones never do.
        let server = Arc::new(ProvServer::new(ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        }));
        let config = LoadConfig {
            clients: 4,
            requests_per_client: 25,
            namespaces: vec!["tight".into()],
            ingest_percent: 40,
            traced: false,
        };
        let report = run_load(&server, &config);
        assert!(report.consistent, "violations: {:?}", report.violations);
        assert_eq!(report.errors, 0);
    }
}
