//! E9 bench: fragment mining and recommendation over growing corpora.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_social::corpus::build_corpus;
use prov_social::{evaluate_recommender, FragmentMiner};

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("social/mine");
    for n in [20usize, 100, 400] {
        let corpus = build_corpus(9, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &corpus, |b, corpus| {
            b.iter(|| FragmentMiner::mine(corpus).pair_count())
        });
    }
    group.finish();

    let corpus = build_corpus(9, 100);
    let miner = FragmentMiner::mine(&corpus);
    let mut group = c.benchmark_group("social/recommend");
    group.bench_function("successor_lookup", |b| {
        b.iter(|| miner.recommend_successor("LoadVolume").len())
    });
    group.bench_function("context_lookup", |b| {
        b.iter(|| miner.recommend_after(Some("LoadVolume"), "Histogram").len())
    });
    group.finish();

    let small = build_corpus(9, 20);
    let mut group = c.benchmark_group("social/evaluate");
    group.sample_size(10);
    group.bench_function("leave_one_out_20", |b| {
        b.iter(|| evaluate_recommender(&small, 3).hits)
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
