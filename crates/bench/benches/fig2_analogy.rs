//! E2 bench: analogy matching and transfer (Figure 2), at several noise
//! levels and target sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_evolution::analogy::match_workflows;
use prov_evolution::{apply_by_analogy, scenario};

fn bench_analogy(c: &mut Criterion) {
    let (a, b, clean_target) = scenario::figure2_triple();

    let mut group = c.benchmark_group("fig2/transfer");
    for noise_pct in [0u64, 40, 80] {
        let target = scenario::noisy_target(7, noise_pct as f64 / 100.0);
        group.bench_with_input(
            BenchmarkId::new("noise", noise_pct),
            &target,
            |bch, target| bch.iter(|| apply_by_analogy(&a, &b, target).expect("analogy runs")),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("fig2/matching");
    group.bench_function("clean_target", |bch| {
        bch.iter(|| match_workflows(&a, &clean_target))
    });
    // Larger targets: graft the clean target onto itself repeatedly.
    for copies in [2usize, 4] {
        let mut big = clean_target.clone();
        for i in 0..copies {
            let extra = scenario::noisy_target(i as u64, 0.3);
            for node in extra.nodes.values() {
                let id = big.add_node(&node.module, node.version);
                big.set_label(id, &format!("{} c{i}", node.label))
                    .expect("label");
            }
        }
        group.bench_with_input(
            BenchmarkId::new("target_nodes", big.node_count()),
            &big,
            |bch, big| bch.iter(|| match_workflows(&a, big)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analogy);
criterion_main!(benches);
