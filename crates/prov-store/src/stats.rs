//! Instrumented store access: [`StoreStats`] counts the primitive read
//! operations a backend performs while answering queries.
//!
//! §2.2 of the tutorial frames provenance management as a storage-strategy
//! vs. query-efficiency trade-off. The canned-query experiment (E5) shows
//! the *end-to-end* times; `StoreStats` opens the box and shows *why* — how
//! many node/edge/triple/row/record reads each backend issued, and whether
//! it got to use a keyed lookup or had to scan. Every
//! [`crate::ProvenanceStore`] backend carries one recorder and bumps it on
//! its query paths (ingest is deliberately not counted: the stats describe
//! the cost of *answering* a query, not of building the store).
//!
//! Counters are relaxed [`AtomicU64`]s behind a shared [`Arc`], so a
//! recorder is `Send + Sync` and stays *exact* when many readers query one
//! store concurrently (the prov-server requirement: ANALYZE accounting
//! must not lose bumps under contention). A relaxed fetch-add is a single
//! uncontended instruction on the hot path, well inside the E16 acceptance
//! bar of <5% overhead with observation enabled. Recording can still be
//! switched off wholesale with [`StoreStats::set_enabled`], which is what
//! the E16 harness uses for its unobserved baseline.
//!
//! Cloning a `StoreStats` clones the *handle*, not the counters: both
//! clones bump and read the same shared cells. This is what lets a
//! concurrency wrapper (see [`crate::shared::SharedStore`]) expose the
//! recorder of a store it has locked away behind an `RwLock`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The shared counter block behind a [`StoreStats`] handle.
#[derive(Debug, Default)]
struct StatsInner {
    /// Graph-shaped node materializations (graph store, PQL engine).
    node_reads: AtomicU64,
    /// Adjacency-list entries followed (graph store, PQL engine).
    edge_reads: AtomicU64,
    /// Triples produced by index pattern matches (triple store).
    triple_reads: AtomicU64,
    /// Relational rows read out of heap tables (relational store).
    row_reads: AtomicU64,
    /// Log records replayed or re-examined (log store).
    record_reads: AtomicU64,
    /// Accesses served by a key or index (hash/B-tree probe).
    keyed_lookups: AtomicU64,
    /// Accesses that had to walk a whole table/log/index.
    scans: AtomicU64,
    /// Bytes decoded from a serialized representation.
    bytes_deserialized: AtomicU64,
    /// When false, every bump is a no-op (the unobserved baseline).
    enabled: AtomicBool,
}

/// Counters for the primitive read operations of a store backend.
///
/// Interior-mutable and thread-safe so that read-only query methods
/// (`&self`) can record their work, including from several threads at
/// once. Obtain a point-in-time copy with [`StoreStats::snapshot`] and
/// attribute work to a region of code by subtracting snapshots with
/// [`StatsSnapshot::delta`]. Clones share the same counters.
#[derive(Debug, Clone)]
pub struct StoreStats {
    inner: Arc<StatsInner>,
}

impl Default for StoreStats {
    fn default() -> Self {
        let inner = StatsInner {
            enabled: AtomicBool::new(true),
            ..Default::default()
        };
        StoreStats {
            inner: Arc::new(inner),
        }
    }
}

macro_rules! bump {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(&self, n: u64) {
            if self.inner.enabled.load(Ordering::Relaxed) {
                self.inner.$field.fetch_add(n, Ordering::Relaxed);
            }
        }
    };
}

impl StoreStats {
    /// A fresh recorder with all counters zero and recording enabled.
    pub fn new() -> Self {
        Self::default()
    }

    bump!(
        /// Record `n` node materializations.
        add_node_reads,
        node_reads
    );
    bump!(
        /// Record `n` adjacency entries followed.
        add_edge_reads,
        edge_reads
    );
    bump!(
        /// Record `n` triples produced by pattern matches.
        add_triple_reads,
        triple_reads
    );
    bump!(
        /// Record `n` relational rows read.
        add_row_reads,
        row_reads
    );
    bump!(
        /// Record `n` log records examined.
        add_record_reads,
        record_reads
    );
    bump!(
        /// Record `n` keyed (index-served) lookups.
        add_keyed_lookups,
        keyed_lookups
    );
    bump!(
        /// Record `n` full scans.
        add_scans,
        scans
    );
    bump!(
        /// Record `n` bytes decoded from serialized form.
        add_bytes_deserialized,
        bytes_deserialized
    );

    /// Turn recording on or off. Counters keep their values either way.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether bumps are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Reset every counter to zero (recording state is unchanged).
    pub fn reset(&self) {
        self.inner.node_reads.store(0, Ordering::Relaxed);
        self.inner.edge_reads.store(0, Ordering::Relaxed);
        self.inner.triple_reads.store(0, Ordering::Relaxed);
        self.inner.row_reads.store(0, Ordering::Relaxed);
        self.inner.record_reads.store(0, Ordering::Relaxed);
        self.inner.keyed_lookups.store(0, Ordering::Relaxed);
        self.inner.scans.store(0, Ordering::Relaxed);
        self.inner.bytes_deserialized.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            node_reads: self.inner.node_reads.load(Ordering::Relaxed),
            edge_reads: self.inner.edge_reads.load(Ordering::Relaxed),
            triple_reads: self.inner.triple_reads.load(Ordering::Relaxed),
            row_reads: self.inner.row_reads.load(Ordering::Relaxed),
            record_reads: self.inner.record_reads.load(Ordering::Relaxed),
            keyed_lookups: self.inner.keyed_lookups.load(Ordering::Relaxed),
            scans: self.inner.scans.load(Ordering::Relaxed),
            bytes_deserialized: self.inner.bytes_deserialized.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`StoreStats`] counters; plain data, `Copy`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Graph-shaped node materializations.
    pub node_reads: u64,
    /// Adjacency-list entries followed.
    pub edge_reads: u64,
    /// Triples produced by index pattern matches.
    pub triple_reads: u64,
    /// Relational rows read out of heap tables.
    pub row_reads: u64,
    /// Log records replayed or re-examined.
    pub record_reads: u64,
    /// Accesses served by a key or index.
    pub keyed_lookups: u64,
    /// Accesses that walked a whole table/log/index.
    pub scans: u64,
    /// Bytes decoded from a serialized representation.
    pub bytes_deserialized: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating): the work done
    /// between the `earlier` snapshot and this one.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            node_reads: self.node_reads.saturating_sub(earlier.node_reads),
            edge_reads: self.edge_reads.saturating_sub(earlier.edge_reads),
            triple_reads: self.triple_reads.saturating_sub(earlier.triple_reads),
            row_reads: self.row_reads.saturating_sub(earlier.row_reads),
            record_reads: self.record_reads.saturating_sub(earlier.record_reads),
            keyed_lookups: self.keyed_lookups.saturating_sub(earlier.keyed_lookups),
            scans: self.scans.saturating_sub(earlier.scans),
            bytes_deserialized: self
                .bytes_deserialized
                .saturating_sub(earlier.bytes_deserialized),
        }
    }

    /// Counter-wise sum of two snapshots.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            node_reads: self.node_reads + other.node_reads,
            edge_reads: self.edge_reads + other.edge_reads,
            triple_reads: self.triple_reads + other.triple_reads,
            row_reads: self.row_reads + other.row_reads,
            record_reads: self.record_reads + other.record_reads,
            keyed_lookups: self.keyed_lookups + other.keyed_lookups,
            scans: self.scans + other.scans,
            bytes_deserialized: self.bytes_deserialized + other.bytes_deserialized,
        }
    }

    /// Total element reads of any kind (nodes + edges + triples + rows +
    /// records). Lookup/scan/byte counters are access *shapes*, not reads,
    /// and are excluded.
    pub fn total_reads(&self) -> u64 {
        self.node_reads + self.edge_reads + self.triple_reads + self.row_reads + self.record_reads
    }

    /// Compact single-line rendering of the non-zero counters, e.g.
    /// `nodes=3 edges=7 keyed=4`. Returns `"-"` when everything is zero.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (label, v) in [
            ("nodes", self.node_reads),
            ("edges", self.edge_reads),
            ("triples", self.triple_reads),
            ("rows", self.row_reads),
            ("records", self.record_reads),
            ("keyed", self.keyed_lookups),
            ("scans", self.scans),
            ("bytes", self.bytes_deserialized),
        ] {
            if v > 0 {
                parts.push(format!("{label}={v}"));
            }
        }
        if parts.is_empty() {
            "-".to_string()
        } else {
            parts.join(" ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_accumulate_and_snapshot() {
        let s = StoreStats::new();
        s.add_node_reads(3);
        s.add_edge_reads(2);
        s.add_keyed_lookups(1);
        let snap = s.snapshot();
        assert_eq!(snap.node_reads, 3);
        assert_eq!(snap.edge_reads, 2);
        assert_eq!(snap.keyed_lookups, 1);
        assert_eq!(snap.total_reads(), 5);
    }

    #[test]
    fn disabled_recorder_ignores_bumps() {
        let s = StoreStats::new();
        s.add_scans(1);
        s.set_enabled(false);
        s.add_scans(10);
        s.add_row_reads(10);
        s.set_enabled(true);
        s.add_scans(1);
        let snap = s.snapshot();
        assert_eq!(snap.scans, 2);
        assert_eq!(snap.row_reads, 0);
    }

    #[test]
    fn delta_attributes_work_between_snapshots() {
        let s = StoreStats::new();
        s.add_triple_reads(5);
        let before = s.snapshot();
        s.add_triple_reads(7);
        s.add_scans(1);
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.triple_reads, 7);
        assert_eq!(d.scans, 1);
        assert_eq!(d.node_reads, 0);
    }

    #[test]
    fn merge_sums_counterwise() {
        let a = StatsSnapshot {
            node_reads: 1,
            scans: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            node_reads: 10,
            keyed_lookups: 4,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.node_reads, 11);
        assert_eq!(m.scans, 2);
        assert_eq!(m.keyed_lookups, 4);
    }

    #[test]
    fn render_is_compact_and_skips_zeros() {
        let s = StoreStats::new();
        assert_eq!(s.snapshot().render(), "-");
        s.add_node_reads(3);
        s.add_scans(1);
        assert_eq!(s.snapshot().render(), "nodes=3 scans=1");
    }

    #[test]
    fn reset_zeroes_but_keeps_enabled_state() {
        let s = StoreStats::new();
        s.add_record_reads(9);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        assert!(s.enabled());
    }

    #[test]
    fn clones_share_the_same_counters() {
        let a = StoreStats::new();
        let b = a.clone();
        a.add_node_reads(2);
        b.add_node_reads(3);
        assert_eq!(a.snapshot().node_reads, 5);
        assert_eq!(b.snapshot().node_reads, 5);
        b.set_enabled(false);
        a.add_node_reads(10);
        assert_eq!(a.snapshot().node_reads, 5, "enable state is shared too");
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreStats>();
    }

    #[test]
    fn concurrent_bumps_are_exact() {
        let s = StoreStats::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        s.add_node_reads(1);
                        s.add_keyed_lookups(2);
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.node_reads, threads * per_thread);
        assert_eq!(snap.keyed_lookups, 2 * threads * per_thread);
    }
}
