//! Fluent construction of workflows, mirroring how visual workflow editors
//! compose pipelines: drop modules, wire ports, set parameters.

use crate::ident::{NodeId, WorkflowId};
use crate::module::ParamValue;
use crate::workflow::{Endpoint, Workflow};

/// Builder for [`Workflow`] used pervasively by examples, tests, and the
/// synthetic-workload generators.
///
/// Panics on wiring errors: builders are for code that *constructs* known
/// shapes (a misuse is a bug in the caller, not a runtime condition). Code
/// that manipulates untrusted specifications uses [`Workflow`]'s fallible
/// API directly.
#[derive(Debug)]
pub struct WorkflowBuilder {
    wf: Workflow,
}

impl WorkflowBuilder {
    /// Start building a workflow.
    pub fn new(id: u64, name: &str) -> Self {
        Self {
            wf: Workflow::new(WorkflowId(id), name),
        }
    }

    /// Add a module instance at version 1.
    pub fn add(&mut self, module: &str) -> NodeId {
        self.wf.add_node(module, 1)
    }

    /// Add a module instance at a specific version.
    pub fn add_versioned(&mut self, module: &str, version: u32) -> NodeId {
        self.wf.add_node(module, version)
    }

    /// Add a module instance and immediately label it.
    pub fn add_labeled(&mut self, module: &str, label: &str) -> NodeId {
        let id = self.wf.add_node(module, 1);
        self.wf
            .set_label(id, label)
            .expect("node just added must exist");
        id
    }

    /// Wire `from.port_out` to `to.port_in`.
    pub fn connect(
        &mut self,
        from: NodeId,
        port_out: &str,
        to: NodeId,
        port_in: &str,
    ) -> &mut Self {
        self.wf
            .connect(Endpoint::new(from, port_out), Endpoint::new(to, port_in))
            .unwrap_or_else(|e| panic!("builder wiring error: {e}"));
        self
    }

    /// Set a parameter.
    pub fn param(&mut self, node: NodeId, name: &str, value: impl Into<ParamValue>) -> &mut Self {
        self.wf
            .set_param(node, name, value.into())
            .unwrap_or_else(|e| panic!("builder param error: {e}"));
        self
    }

    /// Finish, yielding the workflow.
    pub fn build(self) -> Workflow {
        self.wf
    }

    /// Peek at the workflow under construction.
    pub fn workflow(&self) -> &Workflow {
        &self.wf
    }
}

/// Build a linear chain `module[0] -> module[1] -> ...` where every module
/// exposes an `out` output and an `in` input (the convention followed by the
/// generic test modules). Returns the workflow and node ids in chain order.
pub fn chain(id: u64, name: &str, modules: &[&str]) -> (Workflow, Vec<NodeId>) {
    let mut b = WorkflowBuilder::new(id, name);
    let nodes: Vec<NodeId> = modules.iter().map(|m| b.add(m)).collect();
    for pair in nodes.windows(2) {
        b.connect(pair[0], "out", pair[1], "in");
    }
    (b.build(), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_wired_workflow() {
        let mut b = WorkflowBuilder::new(1, "demo");
        let src = b.add_labeled("Source", "ct scan");
        let hist = b.add("Histogram");
        b.connect(src, "grid", hist, "data")
            .param(hist, "bins", 32i64);
        let w = b.build();
        assert_eq!(w.node_count(), 2);
        assert_eq!(w.conn_count(), 1);
        assert_eq!(w.node(src).unwrap().label, "ct scan");
        assert_eq!(
            w.node(hist).unwrap().params.get("bins"),
            Some(&crate::module::ParamValue::Int(32))
        );
    }

    #[test]
    #[should_panic(expected = "builder wiring error")]
    fn builder_panics_on_cycle() {
        let mut b = WorkflowBuilder::new(1, "bad");
        let a = b.add("A");
        let c = b.add("B");
        b.connect(a, "out", c, "in");
        b.connect(c, "out", a, "in");
    }

    #[test]
    fn chain_helper_builds_linear_pipeline() {
        let (w, nodes) = chain(7, "chain", &["A", "B", "C", "D"]);
        assert_eq!(w.node_count(), 4);
        assert_eq!(w.conn_count(), 3);
        assert_eq!(w.topo_nodes().unwrap(), nodes);
    }
}
