//! Fault-tolerant execution walkthrough: retries with backoff, deadline
//! enforcement, deterministic fault injection, and checkpoint/resume —
//! all recorded in provenance and queryable with PQL.
//!
//! Run with: `cargo run --example fault_tolerance`

use provenance_workflows::engine::{EngineEvent, ExecObserver};
use provenance_workflows::prelude::*;

fn main() {
    let (wf, nodes) = provenance_workflows::engine::synth::figure1_workflow(1);

    // 1. A transient fault on the histogram node, healed by retries.
    println!("== transient fault, healed by retries ==");
    let plan = FaultPlan::new().fail_on(nodes.hist, 1, "simulated I/O error");
    let exec = Executor::new(standard_registry())
        .with_policy(
            ExecPolicy::new()
                .with_retry(
                    RetryPolicy::attempts(3)
                        .backoff(5_000, 2.0, 100_000)
                        .jitter(0.3),
                )
                .with_seed(42),
        )
        .with_faults(plan);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r1 = exec.run_observed(&wf, &mut cap).unwrap();
    let retro1 = cap.take(r1.exec).unwrap();
    println!("status: {}", retro1.status);
    for run in retro1.runs.iter().filter(|r| r.attempts > 1) {
        println!(
            "  {} recovered after {} attempts ({} us of backoff)",
            run.identity, run.attempts, run.backoff_micros
        );
    }

    // 2. The recovery history is queryable provenance.
    let mut pql = PqlEngine::new();
    pql.ingest(&retro1);
    for q in [
        "count runs where attempts != 1",
        "list runs where attempts = 2",
    ] {
        println!("pql> {q}\n{}", pql.eval(q).unwrap().render());
    }

    // 3. A permanent fault fails the run; resume recovers from checkpoint.
    println!("\n== permanent fault, then checkpoint/resume ==");
    let broken = Executor::new(standard_registry())
        .with_cache(256)
        .with_faults(FaultPlan::new().fail_always(nodes.iso, "disk full"));
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let failed = broken.run_observed(&wf, &mut cap).unwrap();
    let retro_failed = cap.take(failed.exec).unwrap();
    println!("first run: {}", retro_failed.status);

    let healthy = Executor::new(standard_registry()).with_cache(256);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let resumed = healthy.resume(&wf, &failed, &mut cap).unwrap();
    let retro_resumed = cap.take(resumed.exec).unwrap();
    let reused = resumed.node_runs.values().filter(|r| r.from_cache).count();
    println!(
        "resumed run: {} ({} modules replayed from checkpoint, resumed from exec {})",
        retro_resumed.status,
        reused,
        resumed.resumed_from.unwrap()
    );
    let check = check_resume(&retro_failed, &retro_resumed);
    println!(
        "recovery valid: {} (recovered nodes: {:?})",
        check.is_valid(),
        check.recovered
    );

    // 4. Deadlines turn runaway modules into retryable timeouts.
    println!("\n== deadline enforcement ==");
    let slow = Executor::new(standard_registry())
        .with_policy(ExecPolicy::new().with_deadline(Deadline::millis(5)))
        .with_faults(FaultPlan::new().delay_on(nodes.smooth, 1, 50_000));
    match slow.run(&wf) {
        Ok(r) => {
            let run = r
                .node_runs
                .values()
                .find(|n| n.node == nodes.smooth)
                .unwrap();
            println!(
                "smooth: {:?} ({})",
                run.status,
                run.error.as_deref().unwrap_or("-")
            );
        }
        Err(e) => println!("run failed: {e}"),
    }

    // 5. Same seed, same faults, same run — bit-for-bit.
    println!("\n== deterministic replay ==");
    let mk = || {
        Executor::new(standard_registry())
            .with_policy(
                ExecPolicy::new()
                    .with_retry(
                        RetryPolicy::attempts(3)
                            .backoff(1_000, 2.0, 8_000)
                            .jitter(0.5),
                    )
                    .with_seed(7),
            )
            .with_faults(FaultPlan::random(&wf, 7))
    };
    let a = mk().run(&wf).unwrap();
    let b = mk().run(&wf).unwrap();
    println!(
        "two runs, same seed: fingerprints {} / {} ({})",
        a.fingerprint(),
        b.fingerprint(),
        if a.fingerprint() == b.fingerprint() {
            "identical"
        } else {
            "DIFFERENT"
        }
    );

    // Observer view: every attempt/backoff/timeout surfaces as an event.
    let mut events = Count::default();
    let exec = Executor::new(standard_registry())
        .with_policy(
            ExecPolicy::new()
                .with_retry(RetryPolicy::attempts(3).backoff(1_000, 2.0, 8_000))
                .with_seed(3),
        )
        .with_faults(FaultPlan::new().fail_on(nodes.load, 1, "flaky source"));
    exec.run_observed(&wf, &mut events).unwrap();
    println!(
        "\nobserver saw {} attempt-failed and {} backoff events",
        events.failed, events.backoff
    );
}

#[derive(Default)]
struct Count {
    failed: usize,
    backoff: usize,
}

impl ExecObserver for Count {
    fn on_event(&mut self, event: &EngineEvent) {
        match event {
            EngineEvent::AttemptFailed { .. } => self.failed += 1,
            EngineEvent::BackoffStarted { .. } => self.backoff += 1,
            _ => {}
        }
    }
}
