//! E17: what does the cost-based optimizer buy per backend?
//!
//! Every store backend now keeps secondary indexes (adjacency lists,
//! module counters, hash buckets, offset indexes) next to its primary
//! layout and answers the canned query surface through them when
//! `set_optimized(true)` is flipped. This experiment measures the same
//! Provenance Challenge query shapes as E16 — lineage, generating runs,
//! impact, runs per module — naive vs optimized, interleaved so machine
//! drift hits both variants equally, and records the medians per backend
//! per shape in `BENCH_optimizer.json`. Before timing anything it asserts
//! that both modes return identical answers — speed bought with wrong
//! results is worthless.
//!
//! Expected shape: large wins where the naive path scans (the log backend
//! on every shape, every backend on the aggregate), parity where the
//! naive path is already keyed (graph-store traversals), and no
//! meaningful regression anywhere — index maintenance is paid at ingest,
//! not at query time.

use crate::queryobs::{anchors, medians2};
use prov_core::model::RetrospectiveProvenance;
use prov_store::{
    sort_artifacts, sort_runs, GraphStore, LogStore, ProvenanceStore, RelStore, TripleStore,
};

/// Query evaluations per timed sample (matches E16's scale).
const INNER_LOOP: usize = 32;

/// One backend × query-shape measurement.
#[derive(Debug)]
pub struct OptimizerRow {
    /// Backend name (`graph` / `relational` / `triple` / `log`).
    pub backend: String,
    /// Query shape from the challenge suite.
    pub query: String,
    /// Result rows (identical in both modes).
    pub rows: usize,
    /// Does this backend have an index-accelerated path for this shape?
    pub index_eligible: bool,
    /// Median time per sample in naive mode (µs, whole inner loop).
    pub naive_us: f64,
    /// Median time per sample in optimized mode (µs).
    pub optimized_us: f64,
}

impl OptimizerRow {
    /// Naive time over optimized time (>1 means the optimizer won).
    pub fn speedup(&self) -> f64 {
        self.naive_us / self.optimized_us
    }
}

/// The four store backends, freshly ingested from `corpus`.
fn stores(corpus: &[RetrospectiveProvenance]) -> Vec<Box<dyn ProvenanceStore>> {
    let mut out: Vec<Box<dyn ProvenanceStore>> = vec![
        Box::new(GraphStore::new()),
        Box::new(RelStore::new()),
        Box::new(TripleStore::new()),
        Box::new(LogStore::ephemeral()),
    ];
    for store in &mut out {
        for r in corpus {
            store.ingest(r);
        }
    }
    out
}

/// Which (backend, shape) pairs have an index-accelerated path. The graph
/// and relational backends already answer traversals through keyed
/// structures, so only the aggregate gains an index there; the triple and
/// log backends replace pattern joins / full scans on every shape.
pub fn index_eligible(backend: &str, query: &str) -> bool {
    match backend {
        "triple" | "log" => true,
        "graph" | "relational" => query == "runs_per_module",
        _ => false,
    }
}

/// Both modes must agree on every answer before any timing is trusted.
fn check_agreement(store: &dyn ProvenanceStore, target: u64, source: u64) {
    let answers = |s: &dyn ProvenanceStore| {
        (
            sort_runs(s.lineage_runs(target)),
            sort_runs(s.generators(target)),
            sort_artifacts(s.derived_artifacts(source)),
            s.runs_per_module(),
        )
    };
    store.set_optimized(false);
    let naive = answers(store);
    store.set_optimized(true);
    let fast = answers(store);
    assert_eq!(
        naive,
        fast,
        "optimized mode diverges on backend {}",
        store.backend_name()
    );
    store.set_optimized(false);
}

/// Run E17 over the four backends: per query shape, median naive vs
/// optimized sample times, interleaved.
pub fn experiment_optimizer(corpus: &[RetrospectiveProvenance], reps: usize) -> Vec<OptimizerRow> {
    let (target, source) = anchors(corpus);

    type Q = (&'static str, Box<dyn Fn(&dyn ProvenanceStore) -> usize>);
    let suite: Vec<Q> = vec![
        ("lineage", Box::new(move |s| s.lineage_runs(target).len())),
        ("generators", Box::new(move |s| s.generators(target).len())),
        (
            "impact",
            Box::new(move |s| s.derived_artifacts(source).len()),
        ),
        ("runs_per_module", Box::new(|s| s.runs_per_module().len())),
    ];

    let mut rows = Vec::new();
    for store in stores(corpus) {
        let store = &*store;
        check_agreement(store, target, source);
        for (name, q) in &suite {
            let (naive_us, optimized_us) = medians2(
                reps,
                || {
                    store.set_optimized(false);
                    for _ in 0..INNER_LOOP {
                        std::hint::black_box(q(store));
                    }
                },
                || {
                    store.set_optimized(true);
                    for _ in 0..INNER_LOOP {
                        std::hint::black_box(q(store));
                    }
                },
            );
            store.set_optimized(true);
            let rows_out = q(store);
            store.set_optimized(false);
            rows.push(OptimizerRow {
                backend: store.backend_name().to_string(),
                query: name.to_string(),
                rows: rows_out,
                index_eligible: index_eligible(store.backend_name(), name),
                naive_us,
                optimized_us,
            });
        }
    }
    rows
}

/// Median speedup of a backend's index-eligible rows (`None` if it has
/// none). The acceptance bar: >= 2x on at least two backends.
pub fn median_eligible_speedup(rows: &[OptimizerRow], backend: &str) -> Option<f64> {
    let mut speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.backend == backend && r.index_eligible)
        .map(OptimizerRow::speedup)
        .collect();
    if speedups.is_empty() {
        return None;
    }
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
    Some(speedups[speedups.len() / 2])
}

/// Worst slowdown among index-ineligible rows, in percent (positive =
/// optimized mode was slower). The acceptance bar: <= 10%.
pub fn worst_ineligible_regression_pct(rows: &[OptimizerRow]) -> f64 {
    rows.iter()
        .filter(|r| !r.index_eligible)
        .map(|r| (r.optimized_us / r.naive_us - 1.0) * 100.0)
        .fold(f64::MIN, f64::max)
}

/// Render E17 rows as the stable machine-readable `BENCH_optimizer.json`
/// document (hand-rendered: no JSON library on this path).
pub fn optimizer_json(rows: &[OptimizerRow]) -> String {
    let mut out =
        String::from("{\n  \"experiment\": \"E17 cost-based optimizer speedup\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"query\": \"{}\", \"rows\": {}, \
             \"index_eligible\": {}, \"naive_us\": {:.1}, \"optimized_us\": {:.1}, \
             \"speedup\": {:.2}}}{}\n",
            r.backend,
            r.query,
            r.rows,
            r.index_eligible,
            r.naive_us,
            r.optimized_us,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"median_eligible_speedup\": {\n");
    let backends = ["graph", "relational", "triple", "log"];
    for (i, b) in backends.iter().enumerate() {
        let median = median_eligible_speedup(rows, b)
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    \"{b}\": {median}{}\n",
            if i + 1 < backends.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  }},\n  \"worst_ineligible_regression_pct\": {:.2}\n}}\n",
        worst_ineligible_regression_pct(rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queryobs::challenge_corpus;

    #[test]
    fn suite_covers_backends_and_modes_agree() {
        let corpus = challenge_corpus(3);
        let rows = experiment_optimizer(&corpus, 1);
        assert_eq!(rows.len(), 16, "4 backends x 4 shapes");
        let backends: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.backend.as_str()).collect();
        assert_eq!(
            backends.into_iter().collect::<Vec<_>>(),
            ["graph", "log", "relational", "triple"]
        );
        // Backends agree on every answer (and check_agreement inside the
        // experiment already asserted naive == optimized per backend).
        for q in ["lineage", "generators", "impact", "runs_per_module"] {
            let answers: std::collections::BTreeSet<usize> = rows
                .iter()
                .filter(|r| r.query == q)
                .map(|r| r.rows)
                .collect();
            assert_eq!(answers.len(), 1, "backends disagree on {q}: {answers:?}");
        }
        for r in &rows {
            assert!(r.naive_us > 0.0 && r.optimized_us > 0.0);
        }
        // Eligibility map: log/triple everywhere, graph/relational on the
        // aggregate only.
        assert!(rows
            .iter()
            .filter(|r| r.backend == "log" || r.backend == "triple")
            .all(|r| r.index_eligible));
        assert!(rows
            .iter()
            .filter(|r| r.backend == "graph" || r.backend == "relational")
            .all(|r| r.index_eligible == (r.query == "runs_per_module")));
    }

    #[test]
    fn json_report_is_parseable_and_has_the_summary() {
        let corpus = challenge_corpus(2);
        let rows = experiment_optimizer(&corpus, 1);
        let doc = optimizer_json(&rows);
        let parsed = prov_telemetry::parse_json(&doc).expect("valid JSON");
        let arr = parsed.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(arr.len(), rows.len());
        for row in arr {
            assert!(row.get("speedup").is_some());
            assert!(row.get("index_eligible").is_some());
        }
        assert!(parsed.get("median_eligible_speedup").is_some());
        assert!(parsed.get("worst_ineligible_regression_pct").is_some());
    }
}
