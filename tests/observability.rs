//! End-to-end tests of the observability plane: distributed trace
//! propagation over HTTP (including retry linking under one trace id),
//! the `/v1/trace/{id}`, `/v1/metrics`, and `/v1/slowlog/{ns}` endpoints,
//! the enriched `/healthz`, and the never-500 guarantee for malformed
//! `traceparent` headers.

use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::model::RetrospectiveProvenance;
use prov_server::{HttpClient, HttpRetry, HttpServer, ProvServer, ServerConfig};
use prov_telemetry::parse_json;
use prov_telemetry::JsonValue;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;
use wf_engine::synth::figure1_workflow;
use wf_engine::{standard_registry, Executor};

fn retro(seed: u64) -> RetrospectiveProvenance {
    let (wf, _) = figure1_workflow(seed);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).expect("synth workflow");
    cap.take(r.exec).expect("capture present")
}

fn start(config: ServerConfig) -> HttpServer {
    let server = Arc::new(ProvServer::new(config));
    HttpServer::bind(server, "127.0.0.1:0", 4).expect("bind ephemeral")
}

/// Collect `(attrs, kind, name)` over a span tree, depth-first.
fn flatten(roots: &JsonValue, out: &mut Vec<JsonValue>) {
    if let Some(spans) = roots.as_array() {
        for span in spans {
            out.push(span.clone());
            if let Some(children) = span.get("children") {
                flatten(children, out);
            }
        }
    }
}

#[test]
fn retried_request_records_linked_attempts_under_one_trace() {
    // shed_first=1 forces the very first API request into a deterministic
    // 503, so the traced client's retry produces two sibling Request
    // spans — attempt 1 (shed) and attempt 2 (served) — in one trace.
    let http = start(ServerConfig {
        shed_first: 1,
        ..ServerConfig::default()
    });
    let client = HttpClient::new(http.addr(), "alice")
        .with_retry(HttpRetry::attempts(3))
        .with_tracing(0xBEEF);
    let reply = client.ingest_with_id("lab", &retro(1), "req-1").unwrap();
    assert_eq!(reply.status, 200, "retry must recover: {}", reply.body);
    let trace_id = reply.trace_id.clone().expect("traced client stamps ids");

    let trace = client.trace(&trace_id).unwrap();
    assert_eq!(trace.status, 200, "body: {}", trace.body);
    let v = parse_json(&trace.body).unwrap();
    assert_eq!(
        v.get("trace_id").and_then(|t| t.as_str()),
        Some(trace_id.as_str())
    );
    let mut spans = Vec::new();
    flatten(v.get("roots").expect("roots array"), &mut spans);
    let requests: Vec<&JsonValue> = spans
        .iter()
        .filter(|s| s.get("kind").and_then(|k| k.as_str()) == Some("request"))
        .collect();
    assert_eq!(
        requests.len(),
        2,
        "one shed + one served attempt: {}",
        trace.body
    );
    let attempt_outcomes: Vec<(Option<String>, Option<String>)> = requests
        .iter()
        .map(|r| {
            let attrs = r.get("attrs").expect("attrs");
            (
                attrs
                    .get("attempt")
                    .and_then(|a| a.as_str())
                    .map(str::to_string),
                attrs
                    .get("outcome")
                    .and_then(|o| o.as_str())
                    .map(str::to_string),
            )
        })
        .collect();
    assert!(
        attempt_outcomes.contains(&(Some("1".into()), Some("overloaded".into()))),
        "attempt 1 was shed: {attempt_outcomes:?}"
    );
    assert!(
        attempt_outcomes.contains(&(Some("2".into()), Some("ok".into()))),
        "attempt 2 succeeded: {attempt_outcomes:?}"
    );
    http.shutdown();
}

#[test]
fn traced_query_exposes_query_and_operator_spans() {
    let http = start(ServerConfig::default());
    let client = HttpClient::new(http.addr(), "alice").with_tracing(42);
    assert_eq!(client.ingest("lab", &retro(1)).unwrap().status, 200);
    let reply = client
        .query("lab", "count runs where status = failed")
        .unwrap();
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let trace_id = reply.trace_id.clone().expect("traced");

    let trace = client.trace(&trace_id).unwrap();
    assert_eq!(trace.status, 200, "body: {}", trace.body);
    let v = parse_json(&trace.body).unwrap();
    let mut spans = Vec::new();
    flatten(v.get("roots").unwrap(), &mut spans);
    let kinds: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("kind").and_then(|k| k.as_str()))
        .collect();
    assert!(kinds.contains(&"request"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"query"), "kinds: {kinds:?}");
    assert!(
        kinds.contains(&"operator"),
        "per-operator child spans: {kinds:?}"
    );
    // The query span names the PQL and sits beneath the request span.
    let request = spans
        .iter()
        .find(|s| s.get("kind").and_then(|k| k.as_str()) == Some("request"))
        .unwrap();
    let mut beneath = Vec::new();
    flatten(request.get("children").unwrap(), &mut beneath);
    assert!(
        beneath.iter().any(|s| {
            s.get("name").and_then(|n| n.as_str()) == Some("count runs where status = failed")
        }),
        "query span nested under request: {}",
        trace.body
    );
    http.shutdown();
}

#[test]
fn unknown_and_malformed_trace_ids_are_client_errors() {
    let http = start(ServerConfig::default());
    let client = HttpClient::new(http.addr(), "alice");
    let reply = client.trace("not-a-trace-id").unwrap();
    assert_eq!(reply.status, 400, "body: {}", reply.body);
    let reply = client.trace("00000000000000000000000000000001").unwrap();
    assert_eq!(reply.status, 404, "body: {}", reply.body);
    assert!(reply.body.contains("no_such_trace"));
    http.shutdown();
}

#[test]
fn metrics_endpoint_carries_per_tenant_series() {
    let http = start(ServerConfig::default());
    let alice = HttpClient::new(http.addr(), "alice").with_tracing(7);
    let bob = HttpClient::new(http.addr(), "bob");
    assert_eq!(alice.ingest("lab", &retro(1)).unwrap().status, 200);
    assert_eq!(alice.query("lab", "count runs").unwrap().status, 200);
    assert_eq!(bob.query("lab", "count runs").unwrap().status, 200);

    // /v1/metrics is an alias of /metrics; both render Prometheus text.
    let via_alias = alice.request("GET", "/v1/metrics", "").unwrap();
    assert_eq!(via_alias.status, 200);
    let body = &via_alias.body;
    assert!(
        body.contains(
            "prov_tenant_requests_total{namespace=\"lab\",outcome=\"ok\",tenant=\"alice\"}"
        ) || body.contains("tenant=\"alice\""),
        "per-tenant request series: {body}"
    );
    assert!(body.contains("tenant=\"bob\""), "bob's series: {body}");
    assert!(
        body.contains("prov_tenant_request_latency_micros"),
        "latency histograms: {body}"
    );
    assert!(
        body.contains("prov_server_admission_wait_micros"),
        "admission wait histogram: {body}"
    );
    assert!(
        body.contains("prov_server_requests_total"),
        "pre-existing global series stay: {body}"
    );
    // Prometheus text validity: every non-comment line is `name{labels} value`.
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line.rsplit_once(' ').expect("series + value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample '{value}' in line '{line}'"
        );
        assert!(
            series
                .chars()
                .next()
                .map(|c| c.is_ascii_alphabetic() || c == '_')
                .unwrap_or(false),
            "bad series name in '{line}'"
        );
    }
    http.shutdown();
}

#[test]
fn slowlog_endpoint_returns_jsonl_per_namespace() {
    let http = start(ServerConfig {
        slowlog_threshold_micros: 0, // admit every query
        ..ServerConfig::default()
    });
    let client = HttpClient::new(http.addr(), "alice");
    assert_eq!(client.ingest("lab", &retro(1)).unwrap().status, 200);
    assert_eq!(client.query("lab", "count runs").unwrap().status, 200);

    let reply = client.slowlog("lab").unwrap();
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert!(!reply.body.trim().is_empty(), "threshold 0 admits queries");
    for line in reply.body.lines() {
        let v = parse_json(line).expect("each slowlog line is JSON");
        assert!(v.get("query").is_some(), "line: {line}");
    }
    let reply = client.slowlog("ghost").unwrap();
    assert_eq!(reply.status, 404, "body: {}", reply.body);
    assert!(reply.body.contains("no_such_namespace"));
    http.shutdown();
}

#[test]
fn healthz_details_every_namespace() {
    let http = start(ServerConfig::default());
    let client = HttpClient::new(http.addr(), "alice");
    assert_eq!(client.ingest("lab", &retro(1)).unwrap().status, 200);
    assert_eq!(client.query("lab", "count runs").unwrap().status, 200);

    let reply = client.healthz().unwrap();
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let v = parse_json(&reply.body).unwrap();
    let namespaces = v
        .get("namespaces")
        .and_then(|n| n.as_array())
        .expect("namespaces array");
    let lab = namespaces
        .iter()
        .find(|ns| ns.get("name").and_then(|n| n.as_str()) == Some("lab"))
        .expect("lab listed");
    assert_eq!(lab.get("durable").and_then(|d| d.as_bool()), Some(false));
    assert_eq!(lab.get("read_only").and_then(|r| r.as_bool()), Some(false));
    assert_eq!(lab.get("ingests").and_then(|i| i.as_u64()), Some(1));
    assert_eq!(lab.get("queries").and_then(|q| q.as_u64()), Some(1));
    http.shutdown();
}

#[test]
fn malformed_traceparent_never_fails_the_request() {
    let http = start(ServerConfig::default());
    let client = HttpClient::new(http.addr(), "alice");
    assert_eq!(client.ingest("lab", &retro(1)).unwrap().status, 200);

    // Hand-rolled request with garbage propagation headers: the server
    // must restart the trace (W3C behaviour), not reject or 500.
    for bad in [
        "garbage",
        "00-zz-zz-zz",
        "00-00000000000000000000000000000000-0000000000000000-01",
        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
    ] {
        let body = r#"{"tenant":"alice","namespace":"lab","pql":"count runs"}"#;
        let mut stream = std::net::TcpStream::connect(http.addr()).unwrap();
        write!(
            stream,
            "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\ntraceparent: {bad}\r\ntracestate: prov=attempt:1\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        assert_eq!(status, 200, "header '{bad}' must not fail the request");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).ok();
    }
    // The restarted traces were recorded server-side.
    assert!(http.server().trace_count() > 0, "fresh roots were minted");
    http.shutdown();
}
