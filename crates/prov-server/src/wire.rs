//! The HTTP/JSON wire codec.
//!
//! Built on `prov_telemetry::json` (the repo's dependency-free JSON
//! parser) rather than serde, so the server works in fully offline
//! builds. Two representational rules keep the codec lossless:
//!
//! * **64-bit hashes travel as 16-digit hex strings.** `JsonValue`
//!   numbers are `f64`, which silently rounds integers above 2^53 —
//!   fatal for content hashes whose equality *is* their identity.
//!   Matches [`prov_core::model::Artifact::digest`].
//! * **`i64` parameters travel as decimal strings** for the same reason.
//!
//! Everything else (ids, timestamps, durations) is far below 2^53 and
//! travels as a plain JSON number.

use crate::error::ServerError;
use crate::server::{IngestAck, NamespaceStats, QueryReply, ServerStats};
use prov_core::model::{Artifact, Environment, ModuleRun, RetrospectiveProvenance};
use prov_query::{QueryResult, ResultNode};
use prov_telemetry::json::escape as escape_json;
use prov_telemetry::JsonValue;
use std::collections::BTreeMap;
use wf_engine::{ExecId, RunStatus};
use wf_model::{NodeId, ParamValue, WorkflowId};

// ---------------------------------------------------------------------------
// Rendering (JsonValue -> text)
// ---------------------------------------------------------------------------

/// Serialize a [`JsonValue`] to compact JSON text.
pub fn render_json(v: &JsonValue) -> String {
    let mut out = String::new();
    write_json(v, &mut out);
    out
}

fn write_json(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        JsonValue::String(s) => {
            out.push('"');
            out.push_str(&escape_json(s));
            out.push('"');
        }
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":");
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Small builders and accessors
// ---------------------------------------------------------------------------

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: u64) -> JsonValue {
    JsonValue::Number(n as f64)
}

fn s(text: &str) -> JsonValue {
    JsonValue::String(text.to_string())
}

fn hash_to_json(h: u64) -> JsonValue {
    JsonValue::String(format!("{h:016x}"))
}

fn bad(msg: impl Into<String>) -> ServerError {
    ServerError::BadRequest(msg.into())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ServerError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field '{key}'")))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, ServerError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer")))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ServerError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| bad(format!("field '{key}' must be a string")))
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, ServerError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| bad(format!("field '{key}' must be a boolean")))
}

fn get_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ServerError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| bad(format!("field '{key}' must be an array")))
}

fn get_hash(v: &JsonValue, key: &str) -> Result<u64, ServerError> {
    hash_from_json(field(v, key)?)
        .ok_or_else(|| bad(format!("field '{key}' must be a 16-digit hex hash string")))
}

fn hash_from_json(v: &JsonValue) -> Option<u64> {
    let text = v.as_str()?;
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

// ---------------------------------------------------------------------------
// Provenance document codec
// ---------------------------------------------------------------------------

fn status_to_json(status: RunStatus) -> JsonValue {
    s(&status.to_string())
}

fn status_from_json(v: &JsonValue, key: &str) -> Result<RunStatus, ServerError> {
    match v.get(key).and_then(JsonValue::as_str) {
        Some("succeeded") => Ok(RunStatus::Succeeded),
        Some("failed") => Ok(RunStatus::Failed),
        Some("skipped") => Ok(RunStatus::Skipped),
        other => Err(bad(format!(
            "field '{key}' must be one of succeeded/failed/skipped, got {other:?}"
        ))),
    }
}

fn param_to_json(p: &ParamValue) -> JsonValue {
    match p {
        ParamValue::Bool(b) => obj(vec![("t", s("bool")), ("v", JsonValue::Bool(*b))]),
        ParamValue::Int(i) => obj(vec![("t", s("int")), ("v", s(&i.to_string()))]),
        ParamValue::Float(f) => obj(vec![("t", s("float")), ("v", JsonValue::Number(*f))]),
        ParamValue::Text(t) => obj(vec![("t", s("text")), ("v", s(t))]),
    }
}

fn param_from_json(v: &JsonValue) -> Result<ParamValue, ServerError> {
    let value = field(v, "v")?;
    match get_str(v, "t")? {
        "bool" => value
            .as_bool()
            .map(ParamValue::Bool)
            .ok_or_else(|| bad("bool param needs a boolean 'v'")),
        "int" => value
            .as_str()
            .and_then(|t| t.parse::<i64>().ok())
            .map(ParamValue::Int)
            .ok_or_else(|| bad("int param needs a decimal string 'v'")),
        "float" => value
            .as_f64()
            .map(ParamValue::Float)
            .ok_or_else(|| bad("float param needs a numeric 'v'")),
        "text" => value
            .as_str()
            .map(|t| ParamValue::Text(t.to_string()))
            .ok_or_else(|| bad("text param needs a string 'v'")),
        other => Err(bad(format!("unknown param type '{other}'"))),
    }
}

fn ports_to_json(ports: &[(String, u64)]) -> JsonValue {
    JsonValue::Array(
        ports
            .iter()
            .map(|(port, hash)| obj(vec![("port", s(port)), ("hash", hash_to_json(*hash))]))
            .collect(),
    )
}

fn ports_from_json(v: &JsonValue, key: &str) -> Result<Vec<(String, u64)>, ServerError> {
    get_array(v, key)?
        .iter()
        .map(|e| Ok((get_str(e, "port")?.to_string(), get_hash(e, "hash")?)))
        .collect()
}

fn run_to_json(run: &ModuleRun) -> JsonValue {
    obj(vec![
        ("node", num(run.node.raw())),
        ("identity", s(&run.identity)),
        (
            "params",
            JsonValue::Array(
                run.params
                    .iter()
                    .map(|(name, p)| obj(vec![("name", s(name)), ("value", param_to_json(p))]))
                    .collect(),
            ),
        ),
        ("status", status_to_json(run.status)),
        ("started_millis", num(run.started_millis)),
        ("elapsed_micros", num(run.elapsed_micros)),
        ("from_cache", JsonValue::Bool(run.from_cache)),
        (
            "error",
            run.error.as_deref().map(s).unwrap_or(JsonValue::Null),
        ),
        ("inputs", ports_to_json(&run.inputs)),
        ("outputs", ports_to_json(&run.outputs)),
        ("attempts", num(u64::from(run.attempts))),
        ("backoff_micros", num(run.backoff_micros)),
    ])
}

fn run_from_json(v: &JsonValue) -> Result<ModuleRun, ServerError> {
    let attempts = get_u64(v, "attempts")?;
    let attempts = u32::try_from(attempts)
        .map_err(|_| bad(format!("field 'attempts' out of range: {attempts}")))?;
    Ok(ModuleRun {
        node: NodeId(get_u64(v, "node")?),
        identity: get_str(v, "identity")?.to_string(),
        params: get_array(v, "params")?
            .iter()
            .map(|p| {
                Ok((
                    get_str(p, "name")?.to_string(),
                    param_from_json(field(p, "value")?)?,
                ))
            })
            .collect::<Result<_, ServerError>>()?,
        status: status_from_json(v, "status")?,
        started_millis: get_u64(v, "started_millis")?,
        elapsed_micros: get_u64(v, "elapsed_micros")?,
        from_cache: get_bool(v, "from_cache")?,
        error: match field(v, "error")? {
            JsonValue::Null => None,
            other => Some(
                other
                    .as_str()
                    .ok_or_else(|| bad("field 'error' must be a string or null"))?
                    .to_string(),
            ),
        },
        inputs: ports_from_json(v, "inputs")?,
        outputs: ports_from_json(v, "outputs")?,
        attempts,
        backoff_micros: get_u64(v, "backoff_micros")?,
    })
}

fn artifact_to_json(a: &Artifact) -> JsonValue {
    obj(vec![
        ("hash", hash_to_json(a.hash)),
        ("dtype", s(&a.dtype)),
        ("size", num(a.size as u64)),
        (
            "preview",
            a.preview.as_deref().map(s).unwrap_or(JsonValue::Null),
        ),
    ])
}

fn artifact_from_json(v: &JsonValue) -> Result<Artifact, ServerError> {
    Ok(Artifact {
        hash: get_hash(v, "hash")?,
        dtype: get_str(v, "dtype")?.to_string(),
        size: get_u64(v, "size")? as usize,
        preview: match field(v, "preview")? {
            JsonValue::Null => None,
            other => Some(
                other
                    .as_str()
                    .ok_or_else(|| bad("field 'preview' must be a string or null"))?
                    .to_string(),
            ),
        },
    })
}

/// Encode one retrospective provenance document.
pub fn retro_to_json(retro: &RetrospectiveProvenance) -> JsonValue {
    obj(vec![
        ("exec", num(retro.exec.0)),
        ("workflow", num(retro.workflow.raw())),
        ("workflow_name", s(&retro.workflow_name)),
        ("status", status_to_json(retro.status)),
        ("started_millis", num(retro.started_millis)),
        ("finished_millis", num(retro.finished_millis)),
        (
            "runs",
            JsonValue::Array(retro.runs.iter().map(run_to_json).collect()),
        ),
        (
            "artifacts",
            JsonValue::Array(retro.artifacts.values().map(artifact_to_json).collect()),
        ),
        (
            "environment",
            obj(vec![
                ("os", s(&retro.environment.os)),
                ("arch", s(&retro.environment.arch)),
                ("engine", s(&retro.environment.engine)),
                ("threads", num(retro.environment.threads as u64)),
            ]),
        ),
        (
            "resumed_from",
            retro
                .resumed_from
                .map(|e| num(e.0))
                .unwrap_or(JsonValue::Null),
        ),
    ])
}

/// Decode one retrospective provenance document.
pub fn retro_from_json(v: &JsonValue) -> Result<RetrospectiveProvenance, ServerError> {
    let env = field(v, "environment")?;
    let mut artifacts = BTreeMap::new();
    for a in get_array(v, "artifacts")? {
        let artifact = artifact_from_json(a)?;
        artifacts.insert(artifact.hash, artifact);
    }
    Ok(RetrospectiveProvenance {
        exec: ExecId(get_u64(v, "exec")?),
        workflow: WorkflowId(get_u64(v, "workflow")?),
        workflow_name: get_str(v, "workflow_name")?.to_string(),
        status: status_from_json(v, "status")?,
        started_millis: get_u64(v, "started_millis")?,
        finished_millis: get_u64(v, "finished_millis")?,
        runs: get_array(v, "runs")?
            .iter()
            .map(run_from_json)
            .collect::<Result<_, _>>()?,
        artifacts,
        environment: Environment {
            os: get_str(env, "os")?.to_string(),
            arch: get_str(env, "arch")?.to_string(),
            engine: get_str(env, "engine")?.to_string(),
            threads: get_u64(env, "threads")? as usize,
        },
        resumed_from: match field(v, "resumed_from")? {
            JsonValue::Null => None,
            other => Some(ExecId(other.as_u64().ok_or_else(|| {
                bad("field 'resumed_from' must be an integer or null")
            })?)),
        },
    })
}

// ---------------------------------------------------------------------------
// Query result codec
// ---------------------------------------------------------------------------

fn node_to_json(node: &ResultNode) -> JsonValue {
    match node {
        ResultNode::Run {
            exec,
            node,
            identity,
            status,
        } => obj(vec![
            ("kind", s("run")),
            ("exec", num(*exec)),
            ("node", num(*node)),
            ("identity", s(identity)),
            ("status", s(status)),
        ]),
        ResultNode::Artifact { hash, dtype } => obj(vec![
            ("kind", s("artifact")),
            ("hash", hash_to_json(*hash)),
            ("dtype", s(dtype)),
        ]),
        ResultNode::Execution {
            exec,
            workflow,
            status,
        } => obj(vec![
            ("kind", s("execution")),
            ("exec", num(*exec)),
            ("workflow", s(workflow)),
            ("status", s(status)),
        ]),
    }
}

fn node_from_json(v: &JsonValue) -> Result<ResultNode, ServerError> {
    match get_str(v, "kind")? {
        "run" => Ok(ResultNode::Run {
            exec: get_u64(v, "exec")?,
            node: get_u64(v, "node")?,
            identity: get_str(v, "identity")?.to_string(),
            status: get_str(v, "status")?.to_string(),
        }),
        "artifact" => Ok(ResultNode::Artifact {
            hash: get_hash(v, "hash")?,
            dtype: get_str(v, "dtype")?.to_string(),
        }),
        "execution" => Ok(ResultNode::Execution {
            exec: get_u64(v, "exec")?,
            workflow: get_str(v, "workflow")?.to_string(),
            status: get_str(v, "status")?.to_string(),
        }),
        other => Err(bad(format!("unknown result node kind '{other}'"))),
    }
}

/// Encode a query result.
pub fn result_to_json(result: &QueryResult) -> JsonValue {
    match result {
        QueryResult::Count(n) => obj(vec![("type", s("count")), ("value", num(*n as u64))]),
        QueryResult::Nodes(nodes) => obj(vec![
            ("type", s("nodes")),
            (
                "nodes",
                JsonValue::Array(nodes.iter().map(node_to_json).collect()),
            ),
        ]),
        QueryResult::Paths(paths) => obj(vec![
            ("type", s("paths")),
            (
                "paths",
                JsonValue::Array(
                    paths
                        .iter()
                        .map(|p| JsonValue::Array(p.iter().map(node_to_json).collect()))
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Decode a query result.
pub fn result_from_json(v: &JsonValue) -> Result<QueryResult, ServerError> {
    match get_str(v, "type")? {
        "count" => Ok(QueryResult::Count(get_u64(v, "value")? as usize)),
        "nodes" => Ok(QueryResult::Nodes(
            get_array(v, "nodes")?
                .iter()
                .map(node_from_json)
                .collect::<Result<_, _>>()?,
        )),
        "paths" => Ok(QueryResult::Paths(
            get_array(v, "paths")?
                .iter()
                .map(|p| {
                    p.as_array()
                        .ok_or_else(|| bad("each path must be an array"))?
                        .iter()
                        .map(node_from_json)
                        .collect()
                })
                .collect::<Result<_, _>>()?,
        )),
        other => Err(bad(format!("unknown result type '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Response envelopes
// ---------------------------------------------------------------------------

/// Encode an ingest acknowledgement.
pub fn ack_to_json(ack: &IngestAck) -> JsonValue {
    obj(vec![
        ("namespace", s(&ack.namespace)),
        ("generation", num(ack.generation)),
        ("runs_ingested", num(ack.runs_ingested as u64)),
        ("total_runs", num(ack.total_runs as u64)),
    ])
}

/// Decode an ingest acknowledgement.
pub fn ack_from_json(v: &JsonValue) -> Result<IngestAck, ServerError> {
    Ok(IngestAck {
        namespace: get_str(v, "namespace")?.to_string(),
        generation: get_u64(v, "generation")?,
        runs_ingested: get_u64(v, "runs_ingested")? as usize,
        total_runs: get_u64(v, "total_runs")? as usize,
    })
}

/// Encode a query reply.
pub fn reply_to_json(reply: &QueryReply) -> JsonValue {
    obj(vec![
        ("result", result_to_json(&reply.result)),
        ("generation", num(reply.generation)),
        ("micros", num(reply.micros)),
        ("cached", JsonValue::Bool(reply.cached)),
    ])
}

/// Decode a query reply.
pub fn reply_from_json(v: &JsonValue) -> Result<QueryReply, ServerError> {
    Ok(QueryReply {
        result: result_from_json(field(v, "result")?)?,
        generation: get_u64(v, "generation")?,
        micros: get_u64(v, "micros")?,
        cached: get_bool(v, "cached")?,
    })
}

/// Encode per-namespace statistics.
pub fn stats_to_json(stats: &NamespaceStats) -> JsonValue {
    obj(vec![
        ("namespace", s(&stats.namespace)),
        ("runs", num(stats.runs as u64)),
        ("artifacts", num(stats.artifacts as u64)),
        ("executions", num(stats.executions as u64)),
        ("generation", num(stats.generation)),
        ("ingests", num(stats.ingests)),
        ("queries", num(stats.queries)),
        ("cache_hits", num(stats.cache_hits)),
        ("cache_misses", num(stats.cache_misses)),
        ("store_runs", num(stats.store_runs as u64)),
        ("shards", num(stats.shards as u64)),
    ])
}

/// Decode per-namespace statistics.
pub fn stats_from_json(v: &JsonValue) -> Result<NamespaceStats, ServerError> {
    Ok(NamespaceStats {
        namespace: get_str(v, "namespace")?.to_string(),
        runs: get_u64(v, "runs")? as usize,
        artifacts: get_u64(v, "artifacts")? as usize,
        executions: get_u64(v, "executions")? as usize,
        generation: get_u64(v, "generation")?,
        ingests: get_u64(v, "ingests")?,
        queries: get_u64(v, "queries")?,
        cache_hits: get_u64(v, "cache_hits")?,
        cache_misses: get_u64(v, "cache_misses")?,
        store_runs: get_u64(v, "store_runs")? as usize,
        // Absent in replies from servers predating sharding.
        shards: get_u64(v, "shards").unwrap_or(1) as usize,
    })
}

/// Encode server-wide admission statistics.
pub fn server_stats_to_json(stats: &ServerStats) -> JsonValue {
    obj(vec![
        ("inflight", num(stats.inflight as u64)),
        ("admitted", num(stats.admitted)),
        ("rejected", num(stats.rejected)),
        ("throttled", num(stats.throttled)),
        ("namespaces", num(stats.namespaces as u64)),
    ])
}

/// Encode a service error as the standard JSON error body.
pub fn error_to_json(err: &ServerError) -> JsonValue {
    obj(vec![
        ("error", s(err.kind())),
        ("message", s(&err.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use prov_telemetry::parse_json;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn retro(seed: u64) -> RetrospectiveProvenance {
        let (wf, _) = figure1_workflow(seed);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        cap.take(r.exec).unwrap()
    }

    #[test]
    fn retro_documents_round_trip_losslessly() {
        let original = retro(7);
        let text = render_json(&retro_to_json(&original));
        let back = retro_from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn hashes_survive_beyond_f64_precision() {
        // A hash with entropy in the low bits that f64 would round away.
        let h: u64 = 0xDEAD_BEEF_CAFE_F00D;
        assert_ne!(h, (h as f64) as u64, "f64 would corrupt this hash");
        let v = hash_to_json(h);
        let text = render_json(&v);
        let back = hash_from_json(&parse_json(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn query_results_round_trip() {
        let cases = vec![
            QueryResult::Count(42),
            QueryResult::Nodes(vec![
                ResultNode::Run {
                    exec: 1,
                    node: 2,
                    identity: "align@v1".into(),
                    status: "succeeded".into(),
                },
                ResultNode::Artifact {
                    hash: 0xFFFF_FFFF_FFFF_FFFF,
                    dtype: "table".into(),
                },
            ]),
            QueryResult::Paths(vec![vec![
                ResultNode::Execution {
                    exec: 9,
                    workflow: "fig1".into(),
                    status: "failed".into(),
                },
                ResultNode::Artifact {
                    hash: 1,
                    dtype: "blob".into(),
                },
            ]]),
        ];
        for result in cases {
            let text = render_json(&result_to_json(&result));
            let back = result_from_json(&parse_json(&text).unwrap()).unwrap();
            assert_eq!(back, result);
        }
    }

    #[test]
    fn envelopes_round_trip() {
        let ack = IngestAck {
            namespace: "lab".into(),
            generation: 3,
            runs_ingested: 8,
            total_runs: 24,
        };
        let text = render_json(&ack_to_json(&ack));
        assert_eq!(ack_from_json(&parse_json(&text).unwrap()).unwrap(), ack);

        let reply = QueryReply {
            result: QueryResult::Count(5),
            generation: 3,
            micros: 120,
            cached: true,
        };
        let text = render_json(&reply_to_json(&reply));
        assert_eq!(reply_from_json(&parse_json(&text).unwrap()).unwrap(), reply);

        let stats = NamespaceStats {
            namespace: "lab".into(),
            runs: 24,
            artifacts: 30,
            executions: 3,
            generation: 3,
            ingests: 3,
            queries: 17,
            cache_hits: 9,
            cache_misses: 8,
            store_runs: 24,
            shards: 4,
        };
        let text = render_json(&stats_to_json(&stats));
        assert_eq!(stats_from_json(&parse_json(&text).unwrap()).unwrap(), stats);
    }

    #[test]
    fn malformed_documents_are_bad_requests_not_panics() {
        let cases = [
            r#"{}"#,
            r#"{"exec": 1}"#,
            r#"{"exec": "not a number"}"#,
            r#"{"type": "count"}"#,
            r#"{"type": "galaxy", "value": 1}"#,
        ];
        for text in cases {
            let v = parse_json(text).unwrap();
            assert!(
                retro_from_json(&v).is_err() && result_from_json(&v).is_err(),
                "document {text:?} must be rejected"
            );
        }
        // Wrong-length or non-hex hash strings are rejected, not zeroed.
        for bad_hash in [r#""deadbeef""#, r#""zzzzzzzzzzzzzzzz""#, "12"] {
            let text =
                format!(r#"{{"hash": {bad_hash}, "dtype": "t", "size": 0, "preview": null}}"#);
            assert!(artifact_from_json(&parse_json(&text).unwrap()).is_err());
        }
    }

    #[test]
    fn error_bodies_carry_kind_and_message() {
        let err = ServerError::NoSuchNamespace("ghost".into());
        let text = render_json(&error_to_json(&err));
        let v = parse_json(&text).unwrap();
        assert_eq!(
            v.get("error").unwrap().as_str().unwrap(),
            "no_such_namespace"
        );
        assert!(v
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("ghost"));
    }
}
