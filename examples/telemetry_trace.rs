//! Telemetry walkthrough: observe one run with spans + metrics riding
//! next to provenance capture on a single event stream, export a Chrome
//! trace, print Prometheus metrics, and profile the run twice — live and
//! retroactively from the stored provenance alone.
//!
//! Run with: `cargo run --example telemetry_trace`

use provenance_workflows::prelude::*;
use provenance_workflows::telemetry;

fn main() {
    let (wf, _) = provenance_workflows::engine::synth::figure1_workflow(1);

    // 1. One run, three consumers on one fan-out: span collection,
    //    metrics, and provenance capture. The engine sees one observer.
    let exec = Executor::new(standard_registry()).with_cache(256);
    let mut tel = Telemetry::new();
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine).with_threads(4);
    let result = {
        let mut fan = FanoutObserver::new().with(&mut tel).with(&mut cap);
        exec.run_parallel(&wf, 4, &mut fan).expect("workflow runs")
    };
    println!("run {}: {}", result.exec, result.status);

    // 2. Spans: the structured timeline of the run.
    let trace = tel.take_trace();
    println!("\n== spans ({}) ==", trace.len());
    for span in trace.spans.iter().take(6) {
        println!(
            "  [{}] {:<28} {:>8} us",
            span.kind.label(),
            span.name,
            span.duration_micros()
        );
    }

    // 3. Export: Chrome tracing JSON (open in chrome://tracing or
    //    Perfetto) and a grep-able JSONL span log.
    let chrome = telemetry::chrome_trace_json(&trace);
    let events = telemetry::validate_chrome_trace(&chrome).expect("valid trace");
    let out = std::env::temp_dir().join("fig1-trace.json");
    std::fs::write(&out, &chrome).expect("write trace");
    println!("\nwrote {} ({} events)", out.display(), events);

    // 4. Metrics: Prometheus text exposition from the same stream.
    println!("\n== metrics (excerpt) ==");
    for line in tel
        .render_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(8)
    {
        println!("  {line}");
    }

    // 5. Profile the live run...
    let profile = profile_result(&result, &wf, 4);
    println!("\n== live profile ==");
    print!("{}", profile.render(3));

    // 6. ...and the *stored* provenance, months later, no re-execution:
    //    same critical path, straight from the provenance record.
    let retro = cap.take(result.exec).expect("captured");
    let retro_profile = profile_retro(&retro);
    println!("== retrospective profile (from provenance alone) ==");
    print!("{}", retro_profile.render(3));

    assert_eq!(
        profile.critical_path.len(),
        retro_profile.critical_path.len(),
        "live and retrospective agree on the critical path"
    );
}
