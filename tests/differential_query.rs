//! Four-backend differential test harness for the PQL optimizer.
//!
//! A seeded generator produces random PQL queries (anchored on digests and
//! exec ids that really exist in the ingested corpus, plus deliberate
//! misses). Every query is evaluated:
//!
//! * on the engine: naive `eval_query` vs cost-based `eval_optimized` vs
//!   the LRU-cached path — all three must agree exactly (order included),
//!   and an error in one mode must be an error in every mode;
//! * on the four store backends, for the query shapes that map onto the
//!   backend-neutral store surface: naive vs `set_optimized(true)` on
//!   each backend — all eight canonical result sets must be identical;
//! * on scatter-gather `sharded(2)` and `sharded(4)` engines (the ninth
//!   and tenth modes): the same corpus partitioned by seeded execution
//!   hash must answer every query — naive, optimized, and cached —
//!   exactly like the single engine.
//!
//! On divergence the harness shrinks the query (dropping filter clauses,
//! depth bounds, and disjuncts) and fails with the minimal offending
//! query — plus, for sharded divergences, the execution→shard assignment
//! that triggered it — so the bug report is readable.
//!
//! Case count comes from `PROPTEST_CASES` (default 256) so CI can run a
//! cheap smoke pass while local runs go deep.

use prov_query::{
    analyze_store, eval_cached, eval_optimized, parse, Comparison, Condition, Direction, Entity,
    Field, Op, Query, QueryCache, Target,
};
use provenance_workflows::prelude::*;
use provenance_workflows::store::{sort_artifacts, sort_runs};
use wf_engine::synth::challenge_workflow;

// ---- deterministic RNG ---------------------------------------------------

/// A tiny LCG: deterministic across platforms, no dependencies, seedable.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5))
    }
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

// ---- corpus and value pools ----------------------------------------------

/// Real values harvested from the ingested corpus, so generated queries
/// hit actual data most of the time instead of always missing.
struct Pools {
    digests: Vec<u64>,
    execs: Vec<u64>,
    nodes: Vec<u64>,
    modules: Vec<String>,
}

fn corpus() -> (
    PqlEngine,
    Vec<ShardedEngine>,
    Vec<Box<dyn ProvenanceStore>>,
    Pools,
) {
    let exec = Executor::new(standard_registry());
    let mut engine = PqlEngine::new();
    // The ninth and tenth differential modes: the same corpus partitioned
    // across 2 and 4 scatter-gather shards.
    let mut shardeds = vec![ShardedEngine::new(2), ShardedEngine::new(4)];
    let mut stores: Vec<Box<dyn ProvenanceStore>> = vec![
        Box::new(GraphStore::new()),
        Box::new(RelStore::new()),
        Box::new(TripleStore::new()),
        Box::new(LogStore::ephemeral()),
    ];
    let mut pools = Pools {
        digests: Vec::new(),
        execs: Vec::new(),
        nodes: Vec::new(),
        modules: Vec::new(),
    };
    for i in 0..4u64 {
        let wf = challenge_workflow(i + 1, 3, 3);
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).expect("workflow runs");
        let retro = cap.take(r.exec).expect("captured");
        engine.ingest(&retro);
        for se in &mut shardeds {
            se.ingest(&retro);
        }
        for s in &mut stores {
            s.ingest(&retro);
        }
        pools.execs.push(retro.exec.0);
        for run in &retro.runs {
            pools.nodes.push(run.node.0);
            pools.modules.push(run.identity.clone());
            if let Some(bare) = run.identity.split('@').next() {
                pools.modules.push(bare.to_string());
            }
            for (_, h) in &run.outputs {
                pools.digests.push(*h);
            }
        }
    }
    pools.digests.sort_unstable();
    pools.digests.dedup();
    pools.modules.sort();
    pools.modules.dedup();
    (engine, shardeds, stores, pools)
}

// ---- query generator -----------------------------------------------------

fn gen_target(rng: &mut Lcg, pools: &Pools) -> Target {
    if rng.chance(70) {
        Target::Artifact(*rng.pick(&pools.digests))
    } else if rng.chance(50) {
        // A digest that almost certainly misses.
        Target::Artifact(rng.next())
    } else {
        Target::Run(*rng.pick(&pools.execs), *rng.pick(&pools.nodes))
    }
}

fn gen_comparison(rng: &mut Lcg, pools: &Pools) -> Comparison {
    let field = *rng.pick(&[
        Field::Module,
        Field::Status,
        Field::Dtype,
        Field::Exec,
        Field::Attempts,
    ]);
    let op = *rng.pick(&[Op::Eq, Op::Eq, Op::Neq, Op::Contains]);
    let value = match field {
        Field::Module => {
            if rng.chance(80) {
                rng.pick(&pools.modules).clone()
            } else {
                "no such module".to_string()
            }
        }
        Field::Status => rng.pick(&["succeeded", "failed", "skipped"]).to_string(),
        Field::Dtype => rng
            .pick(&["grid", "table", "histogram", "image", "bytes", "nothing"])
            .to_string(),
        Field::Exec => {
            if rng.chance(80) {
                rng.pick(&pools.execs).to_string()
            } else {
                "999999".to_string()
            }
        }
        Field::Attempts => rng.pick(&["1", "2", "3"]).to_string(),
    };
    Comparison { field, op, value }
}

fn gen_condition(rng: &mut Lcg, pools: &Pools) -> Condition {
    let disjuncts = rng.below(3); // 0 = trivial
    Condition {
        any_of: (0..disjuncts)
            .map(|_| {
                (0..1 + rng.below(2))
                    .map(|_| gen_comparison(rng, pools))
                    .collect()
            })
            .collect(),
    }
}

fn gen_query(rng: &mut Lcg, pools: &Pools) -> Query {
    let entity = *rng.pick(&[Entity::Runs, Entity::Artifacts, Entity::Executions]);
    match rng.below(6) {
        0 | 1 => Query::Closure {
            direction: *rng.pick(&[Direction::Upstream, Direction::Downstream]),
            target: gen_target(rng, pools),
            depth: match rng.below(4) {
                0 => Some(1),
                1 => Some(1 + rng.below(5)),
                _ => None,
            },
            filter: gen_condition(rng, pools),
        },
        2 => Query::Count {
            entity,
            filter: gen_condition(rng, pools),
        },
        3 => Query::List {
            entity,
            filter: gen_condition(rng, pools),
        },
        _ => {
            // Bias toward Count/List with filters — that is where the
            // index rewrites live.
            Query::Count {
                entity,
                filter: Condition {
                    any_of: vec![(0..1 + rng.below(2))
                        .map(|_| gen_comparison(rng, pools))
                        .collect()],
                },
            }
        }
    }
}

// ---- differential check --------------------------------------------------

/// Canonical store-surface answer for a mappable query shape, or `None`
/// when the shape only exists in the engine.
fn store_answer(store: &dyn ProvenanceStore, q: &Query) -> Option<String> {
    match q {
        Query::Closure {
            direction: Direction::Upstream,
            target: Target::Artifact(h),
            depth: None,
            filter,
        } if filter.is_trivial() => Some(format!("{:?}", sort_runs(store.lineage_runs(*h)))),
        Query::Closure {
            direction: Direction::Upstream,
            target: Target::Artifact(h),
            depth: Some(1),
            filter,
        } if filter.is_trivial() => Some(format!("{:?}", sort_runs(store.generators(*h)))),
        Query::Closure {
            direction: Direction::Downstream,
            target: Target::Artifact(h),
            depth: None,
            filter,
        } if filter.is_trivial() => {
            Some(format!("{:?}", sort_artifacts(store.derived_artifacts(*h))))
        }
        Query::Count {
            entity: Entity::Runs,
            filter,
        } if filter.is_trivial() => Some(format!("{}", store.run_count())),
        _ => None,
    }
}

/// Run one query through every mode on every backend. Returns a
/// divergence description, or `None` when all modes agree.
fn divergence(
    engine: &PqlEngine,
    shardeds: &[ShardedEngine],
    stores: &[Box<dyn ProvenanceStore>],
    cache: &mut QueryCache,
    q: &Query,
) -> Option<String> {
    // Mode 1/2: engine naive vs optimized.
    let naive = engine.eval_query(q);
    let fast = eval_optimized(engine, q);
    match (&naive, &fast) {
        (Ok(a), Ok(b)) if a == b => {}
        (Err(_), Err(_)) => {}
        _ => return Some(format!("engine naive {naive:?} != optimized {fast:?}")),
    }
    // Mode 3: the LRU-cached path (twice: fill, then hit).
    if let Ok(expected) = &naive {
        for pass in ["fill", "hit"] {
            match eval_cached(engine, q, cache) {
                Ok(c) if &c == expected => {}
                other => return Some(format!("cached ({pass}) {other:?} != naive {expected:?}")),
            }
        }
    }
    // Modes 9/10: the sharded(2)/sharded(4) scatter-gather engines, each
    // in naive, optimized, and cached form, must agree with the single
    // engine exactly — results, order, and error-ness.
    for se in shardeds {
        let s_naive = se.eval_query(q);
        let s_fast = se.eval_optimized(q);
        let s_cached = se.eval_cached(q, cache);
        for (mode, got) in [
            ("naive", &s_naive),
            ("optimized", &s_fast),
            ("cached", &s_cached),
        ] {
            match (&naive, got) {
                (Ok(a), Ok(b)) if a == b => {}
                (Err(_), Err(_)) => {}
                _ => {
                    return Some(format!(
                        "{} {mode} {got:?} != engine naive {naive:?}",
                        se.backend_key()
                    ))
                }
            }
        }
    }
    // Modes 4..11: four backends x {naive, optimized} on mappable shapes.
    let mut answers: Vec<(String, String)> = Vec::new();
    for store in stores {
        for optimized in [false, true] {
            store.set_optimized(optimized);
            let label = format!(
                "{}/{}",
                store.backend_name(),
                if optimized { "optimized" } else { "naive" }
            );
            if let Some(ans) = store_answer(store.as_ref(), q) {
                answers.push((label, ans));
            }
            store.set_optimized(false);
        }
    }
    if let Some((first_label, first)) = answers.first() {
        for (label, ans) in &answers[1..] {
            if ans != first {
                return Some(format!(
                    "store results diverge: {first_label} gave {first} but {label} gave {ans}"
                ));
            }
        }
    }
    None
}

// ---- shrinking -----------------------------------------------------------

/// One-step simplifications of a query, most aggressive first.
fn shrink_candidates(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    let shrunk_filters = |filter: &Condition| {
        let mut fs = Vec::new();
        if !filter.is_trivial() {
            fs.push(Condition::default());
            for i in 0..filter.any_of.len() {
                let mut any_of = filter.any_of.clone();
                any_of.remove(i);
                fs.push(Condition { any_of });
            }
            for (i, conj) in filter.any_of.iter().enumerate() {
                if conj.len() > 1 {
                    for j in 0..conj.len() {
                        let mut any_of = filter.any_of.clone();
                        any_of[i].remove(j);
                        let _ = i;
                        fs.push(Condition { any_of });
                    }
                }
            }
        }
        fs
    };
    match q {
        Query::Closure {
            direction,
            target,
            depth,
            filter,
        } => {
            for f in shrunk_filters(filter) {
                out.push(Query::Closure {
                    direction: *direction,
                    target: *target,
                    depth: *depth,
                    filter: f,
                });
            }
            if depth.is_some() {
                out.push(Query::Closure {
                    direction: *direction,
                    target: *target,
                    depth: None,
                    filter: filter.clone(),
                });
            }
        }
        Query::Count { entity, filter } | Query::List { entity, filter } => {
            for f in shrunk_filters(filter) {
                out.push(match q {
                    Query::List { .. } => Query::List {
                        entity: *entity,
                        filter: f,
                    },
                    _ => Query::Count {
                        entity: *entity,
                        filter: f,
                    },
                });
            }
        }
        Query::Paths { .. } => {}
    }
    out
}

/// Greedily shrink a failing query to a minimal one that still fails.
fn minimize(q: &Query, mut still_fails: impl FnMut(&Query) -> bool) -> Query {
    let mut current = q.clone();
    loop {
        let step = shrink_candidates(&current)
            .into_iter()
            .find(|cand| still_fails(cand));
        match step {
            Some(smaller) => current = smaller,
            None => return current,
        }
    }
}

// ---- the harness ---------------------------------------------------------

fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// The execution→shard routing of every sharded engine — printed with a
/// sharded divergence so the failing partition is reproducible.
fn shard_assignment(shardeds: &[ShardedEngine], execs: &[u64]) -> String {
    shardeds
        .iter()
        .map(|se| {
            let routes: Vec<String> = execs
                .iter()
                .map(|e| format!("exec {e}→{}", se.route(wf_engine::ExecId(*e))))
                .collect();
            format!("{}: {}", se.backend_key(), routes.join(", "))
        })
        .collect::<Vec<_>>()
        .join("\n  ")
}

#[test]
fn optimized_evaluation_never_diverges_from_naive_on_any_backend() {
    let (engine, shardeds, stores, pools) = corpus();
    let mut cache = QueryCache::new(64);
    let mut rng = Lcg::new(0xD1FF);
    let cases = case_count();
    let mut mapped = 0usize;

    for case in 0..cases {
        let q = gen_query(&mut rng, &pools);
        // Queries must survive the text round trip before anything else:
        // the differential claim is about what users can actually type.
        let rendered = q.to_string();
        let reparsed = parse(&rendered).unwrap_or_else(|e| {
            panic!("case {case}: generated query {rendered:?} unparseable: {e}")
        });
        assert_eq!(
            reparsed, q,
            "case {case}: {rendered:?} reparses differently"
        );

        if store_answer(stores[0].as_ref(), &q).is_some() {
            mapped += 1;
        }
        if let Some(report) = divergence(&engine, &shardeds, &stores, &mut cache, &q) {
            let minimal = minimize(&q, |cand| {
                divergence(&engine, &shardeds, &stores, &mut cache, cand).is_some()
            });
            let min_report =
                divergence(&engine, &shardeds, &stores, &mut cache, &minimal).unwrap_or(report);
            panic!(
                "case {case}/{cases} diverged.\n  original: {q}\n  minimal:  {minimal}\n  {min_report}\n  shard assignment:\n  {}",
                shard_assignment(&shardeds, &pools.execs)
            );
        }
    }
    // The generator must actually exercise the store surface, not just
    // engine-only shapes.
    assert!(
        mapped >= cases / 20,
        "only {mapped}/{cases} generated queries mapped onto the store surface"
    );
}

#[test]
fn store_analyze_agrees_with_direct_surface_in_both_modes() {
    // A focused differential on ANALYZE itself: for each mappable canned
    // shape, `analyze_store` must report the same row count naive and
    // optimized, on every backend.
    let (_, _, stores, pools) = corpus();
    let digest = pools.digests[pools.digests.len() / 2];
    let queries = [
        format!("lineage of artifact {digest:016x}"),
        format!("lineage of artifact {digest:016x} depth 1"),
        format!("impact of artifact {digest:016x}"),
        "count runs".to_string(),
    ];
    for store in &stores {
        for q in &queries {
            let parsed = parse(q).unwrap();
            store.set_optimized(false);
            let naive = analyze_store(store.as_ref(), &parsed).unwrap();
            store.set_optimized(true);
            let fast = analyze_store(store.as_ref(), &parsed).unwrap();
            store.set_optimized(false);
            assert_eq!(
                naive.rows,
                fast.rows,
                "[{}] {q}: ANALYZE rows differ between modes",
                store.backend_name()
            );
            assert!(
                fast.render().contains("(indexed)"),
                "[{}] {q}: optimized ANALYZE does not say so",
                store.backend_name()
            );
        }
    }
}

#[test]
fn shrinker_reduces_to_a_minimal_failing_query() {
    // The shrinker itself is load-bearing on failure, so pin its behavior
    // with a synthetic oracle: "fails iff the filter mentions module".
    let full = Query::Count {
        entity: Entity::Runs,
        filter: Condition {
            any_of: vec![
                vec![
                    Comparison {
                        field: Field::Module,
                        op: Op::Eq,
                        value: "align_warp".into(),
                    },
                    Comparison {
                        field: Field::Status,
                        op: Op::Eq,
                        value: "succeeded".into(),
                    },
                ],
                vec![Comparison {
                    field: Field::Dtype,
                    op: Op::Eq,
                    value: "grid".into(),
                }],
            ],
        },
    };
    let mentions_module = |q: &Query| match q {
        Query::Count { filter, .. } => filter
            .any_of
            .iter()
            .flatten()
            .any(|c| c.field == Field::Module),
        _ => false,
    };
    let minimal = minimize(&full, mentions_module);
    match &minimal {
        Query::Count { filter, .. } => {
            assert_eq!(filter.any_of.len(), 1, "kept one disjunct: {minimal}");
            assert_eq!(filter.any_of[0].len(), 1, "kept one clause: {minimal}");
            assert_eq!(filter.any_of[0][0].field, Field::Module);
        }
        other => panic!("shrinker changed the query shape: {other}"),
    }
}

// ---- concurrent ingest/query stress --------------------------------------

/// Thread count for the stress pass, from `PROVTEST_THREADS` (default 8).
fn stress_threads() -> usize {
    std::env::var("PROVTEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .clamp(2, 64)
}

/// Concurrent ingest + query against every backend behind `SharedStore`:
/// writers race distinct documents in while readers hammer the query
/// surface. Afterwards the shared store must hold exactly what a plain
/// single-threaded store holds — no lost writes, no torn generation.
#[test]
fn concurrent_ingest_and_query_loses_no_writes_on_any_backend() {
    use provenance_workflows::store::{sort_artifacts as sort_arts, SharedStore};

    let threads = stress_threads();
    let exec = Executor::new(standard_registry());
    let docs: Vec<RetrospectiveProvenance> = (0..8u64)
        .map(|i| {
            let wf = challenge_workflow(i + 10, 3, 3);
            let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
            let r = exec.run_observed(&wf, &mut cap).expect("workflow runs");
            let mut doc = cap.take(r.exec).expect("captured");
            doc.exec = wf_engine::ExecId(5_000 + i);
            doc
        })
        .collect();
    let probe: u64 = *docs[0].runs[0]
        .outputs
        .first()
        .map(|(_, h)| h)
        .expect("first run has an output");

    let factories: Vec<(&str, fn() -> Box<dyn ProvenanceStore + Send + Sync>)> = vec![
        ("graph", || Box::new(GraphStore::new())),
        ("relational", || Box::new(RelStore::new())),
        ("triple", || Box::new(TripleStore::new())),
        ("log", || Box::new(LogStore::ephemeral())),
    ];

    for (name, make) in factories {
        // The single-threaded reference.
        let mut plain = make();
        for d in &docs {
            plain.ingest(d);
        }

        // The shared store, written by `threads` racing writers.
        let shared = SharedStore::new(make());
        let writers = (threads / 2).max(2);
        let readers = threads - writers;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let shared = &shared;
                let docs = &docs;
                scope.spawn(move || {
                    for (i, d) in docs.iter().enumerate() {
                        if i % writers == w {
                            shared.ingest_shared(d);
                        }
                    }
                });
            }
            for _ in 0..readers {
                let shared = &shared;
                scope.spawn(move || {
                    let mut last_runs = 0usize;
                    let mut last_gen = 0u64;
                    for _ in 0..50 {
                        // Reads under one guard see a pinned generation.
                        let guard = shared.read();
                        let gen = shared.generation();
                        let runs = guard.run_count();
                        let _ = guard.lineage_runs(probe);
                        let _ = guard.derived_artifacts(probe);
                        drop(guard);
                        assert!(
                            runs >= last_runs,
                            "{name}: run count went backwards ({last_runs} -> {runs})"
                        );
                        assert!(
                            gen >= last_gen,
                            "{name}: generation went backwards ({last_gen} -> {gen})"
                        );
                        last_runs = runs;
                        last_gen = gen;
                    }
                });
            }
        });

        // No lost writes, exact generation accounting.
        assert_eq!(
            shared.generation(),
            docs.len() as u64,
            "{name}: one generation bump per ingest"
        );
        assert_eq!(
            shared.run_count(),
            plain.run_count(),
            "{name}: concurrent ingest lost module runs"
        );
        // Order-independent query agreement with the reference store.
        assert_eq!(
            sort_runs(shared.lineage_runs(probe)),
            sort_runs(plain.lineage_runs(probe)),
            "{name}: lineage diverged after concurrent ingest"
        );
        assert_eq!(
            sort_arts(shared.derived_artifacts(probe)),
            sort_arts(plain.derived_artifacts(probe)),
            "{name}: impact diverged after concurrent ingest"
        );
        let mut shared_modules = shared.runs_per_module();
        let mut plain_modules = plain.runs_per_module();
        shared_modules.sort();
        plain_modules.sort();
        assert_eq!(
            shared_modules, plain_modules,
            "{name}: per-module counts diverged"
        );
    }
}

#[test]
fn wal_recovered_store_agrees_with_the_precrash_reference() {
    // Durability differential: ingest the corpus into a WAL-backed server
    // and into a plain in-memory engine, "crash" the server (drop it cold),
    // recover a fresh one from the WAL directory, and run the seeded query
    // suite against both. Replay must reconstruct a store that is
    // *query-indistinguishable* from the one that never crashed.
    use prov_server::{DurabilityConfig, ProvServer, ServerConfig};
    use std::sync::Arc;

    let data_dir = std::env::temp_dir().join(format!(
        "prov-diff-wal-{}-{}",
        std::process::id(),
        wf_engine::event::now_millis()
    ));
    let durable = || ServerConfig {
        durability: Some(DurabilityConfig::new(&data_dir).checkpoint_every(3)),
        ..ServerConfig::default()
    };

    let exec = Executor::new(standard_registry());
    let mut reference = PqlEngine::new();
    let mut pools = Pools {
        digests: Vec::new(),
        execs: Vec::new(),
        nodes: Vec::new(),
        modules: Vec::new(),
    };
    {
        let server = Arc::new(ProvServer::new(durable()));
        server.recover().expect("fresh recovery");
        let session = server.session("differential");
        for i in 0..4u64 {
            let wf = challenge_workflow(i + 1, 3, 3);
            let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
            let r = exec.run_observed(&wf, &mut cap).expect("workflow runs");
            let retro = cap.take(r.exec).expect("captured");
            reference.ingest(&retro);
            session.ingest("lab", &retro).expect("durable ingest");
            pools.execs.push(retro.exec.0);
            for run in &retro.runs {
                pools.nodes.push(run.node.0);
                pools.modules.push(run.identity.clone());
                for (_, h) in &run.outputs {
                    pools.digests.push(*h);
                }
            }
        }
    } // crash: no shutdown, no flush beyond the WAL's own appends

    let server = Arc::new(ProvServer::new(durable()));
    let reports = server.recover().expect("recovery succeeds");
    assert_eq!(reports.len(), 1, "one namespace on disk");
    let session = server.session("differential");

    pools.digests.sort_unstable();
    pools.digests.dedup();
    pools.modules.sort();
    pools.modules.dedup();
    let mut rng = Lcg::new(0x3A1D);
    let cases = case_count();
    for case in 0..cases {
        let q = gen_query(&mut rng, &pools);
        let want = eval_optimized(&reference, &q);
        let got = session.query("lab", &q.to_string());
        match (&want, &got) {
            (Ok(w), Ok(g)) => {
                assert_eq!(*w, g.result, "case {case}: {q} diverged after WAL recovery")
            }
            (Err(_), Err(_)) => {}
            _ => panic!("case {case}: {q}: reference {want:?} vs recovered {got:?}"),
        }
    }
    std::fs::remove_dir_all(&data_dir).ok();
}
