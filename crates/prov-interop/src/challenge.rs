//! The First Provenance Challenge, rebuilt end to end.
//!
//! The challenge workload is the fMRI atlas pipeline (align_warp ×4 →
//! reslice ×4 → softmean → slicer ×3 → convert ×3). We execute it once on
//! our engine, *split* the resulting provenance across three simulated
//! systems (stages 1–2 in a Taverna-like RDF system, stage 3 in a
//! Kepler-like event-log system, stages 4–5 in a VisTrails-like
//! spec+log system), translate each dialect into OPM, integrate, and
//! answer the challenge's nine canonical queries over the integrated
//! graph — including the annotation-based ones.
//!
//! The point the tutorial makes (§2.4) is visible in the numbers: most
//! queries are *unanswerable* (or only partially answerable) against any
//! single system's account, and become answerable after integration.

use crate::dialect::{changelog, eventlog, rdfish, slice_runs};
use crate::integrate::{integrate, IntegrationReport};
use prov_core::annotation::{AnnotationStore, Subject};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::model::RetrospectiveProvenance;
use prov_core::opm::{OpmGraph, OpmNodeId, OpmNodeKind};
use wf_engine::{standard_registry, Executor};
use wf_model::Workflow;

/// Everything the challenge produces.
#[derive(Debug)]
pub struct ChallengeSetup {
    /// The fMRI workflow specification.
    pub workflow: Workflow,
    /// Ground-truth provenance of the single execution.
    pub retro: RetrospectiveProvenance,
    /// Per-system OPM accounts: (system name, graph).
    pub accounts: Vec<(String, OpmGraph)>,
    /// The integration report (merged graph inside).
    pub integration: IntegrationReport,
    /// User annotations added during the study.
    pub annotations: AnnotationStore,
}

/// The answer to one challenge query.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// Query number (1–9).
    pub id: u8,
    /// The question, paraphrased.
    pub question: String,
    /// Result items (labels).
    pub items: Vec<String>,
    /// Whether the integrated graph produced the expected non-empty
    /// answer.
    pub answerable: bool,
}

impl QueryAnswer {
    /// Number of result items.
    pub fn count(&self) -> usize {
        self.items.len()
    }
}

/// Execute the challenge workload and build the three-system setup.
pub fn run_challenge() -> ChallengeSetup {
    let workflow = wf_engine::synth::challenge_workflow(42, 4, 3);
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec
        .run_observed(&workflow, &mut cap)
        .expect("challenge workflow must run");
    let retro = cap.take(result.exec).expect("capture completes");

    // Split across systems by pipeline stage.
    let part_a = slice_runs(&retro, &["LoadVolume", "AlignWarp", "Reslice"]);
    let part_b = slice_runs(&retro, &["Softmean"]);
    let part_c = slice_runs(&retro, &["Slice", "Convert"]);

    let ga = rdfish::RdfProvenance::capture(&part_a).to_opm("challenge/taverna-sim");
    let gb = eventlog::EventLogProvenance::capture(&part_b).to_opm("challenge/kepler-sim");
    let gc = changelog::ChangelogProvenance::capture(&part_c, &workflow)
        .to_opm("challenge/vistrails-sim");

    let integration = integrate(&[ga.clone(), gb.clone(), gc.clone()]);

    // Annotations: the challenge's Q7/Q8 postulate user-added metadata.
    let mut annotations = AnnotationStore::new();
    for run in &retro.runs {
        if run.identity.starts_with("AlignWarp") {
            // Annotate the first two alignment runs as coming from one
            // center.
            let idx = retro
                .runs
                .iter()
                .filter(|r| r.identity.starts_with("AlignWarp"))
                .position(|r| r.node == run.node)
                .unwrap_or(9);
            if idx < 2 {
                annotations.annotate(
                    Subject::Run(retro.exec, run.node),
                    "center",
                    "UChicago",
                    "challenge-team",
                );
            }
        }
    }

    ChallengeSetup {
        workflow,
        retro,
        accounts: vec![
            ("taverna-sim".to_string(), ga),
            ("kepler-sim".to_string(), gb),
            ("vistrails-sim".to_string(), gc),
        ],
        integration,
        annotations,
    }
}

impl ChallengeSetup {
    /// The artifact label (digest) of the first final atlas graphic
    /// (Convert output).
    pub fn atlas_graphic_label(&self) -> String {
        let run = self
            .retro
            .runs
            .iter()
            .find(|r| r.identity.starts_with("Convert"))
            .expect("convert ran");
        format!("{:016x}", run.outputs[0].1)
    }

    fn artifact(&self, g: &OpmGraph, label: &str) -> Option<OpmNodeId> {
        g.find(OpmNodeKind::Artifact, label)
    }

    /// The module activity of a process node, dialect-agnostically: the
    /// RDF dialect keeps it in the `activity` property, the others in the
    /// label.
    fn activity(g: &OpmGraph, id: OpmNodeId) -> String {
        g.prop(id, "activity")
            .map(str::to_string)
            .or_else(|| g.get(id).map(|n| n.label.clone()))
            .unwrap_or_default()
    }

    /// The process labels contributing to an artifact in a graph.
    pub fn lineage_process_labels(&self, g: &OpmGraph, label: &str) -> Vec<String> {
        let Some(a) = self.artifact(g, label) else {
            return Vec::new();
        };
        let mut v: Vec<String> = g
            .contributing_processes(a)
            .into_iter()
            .filter_map(|p| g.get(p).map(|n| n.label.clone()))
            .collect();
        v.sort();
        v
    }

    /// Answer the nine challenge queries over the integrated graph.
    pub fn answer_queries(&self) -> Vec<QueryAnswer> {
        let g = &self.integration.graph;
        let atlas_file = self.atlas_graphic_label();
        let mut answers = Vec::new();

        // Q1: the entire process that led to the atlas graphic.
        let q1 = self.lineage_process_labels(g, &atlas_file);
        answers.push(QueryAnswer {
            id: 1,
            question: "Find the process that led to Atlas X Graphic".into(),
            answerable: q1.len() >= 13, // convert+slicer+softmean+4 reslice+4 align+≥3 loads
            items: q1,
        });

        // Q2: same, excluding everything before Softmean.
        let softmean = g
            .nodes()
            .iter()
            .find(|n| n.kind == OpmNodeKind::Process && n.label.starts_with("Softmean"))
            .map(|n| n.id);
        let q2: Vec<String> = match softmean {
            None => Vec::new(),
            Some(sm) => {
                // Processes upstream of the file but not upstream of
                // softmean's inputs.
                let before: std::collections::BTreeSet<String> = g
                    .edges()
                    .iter()
                    .filter_map(|e| match e {
                        prov_core::opm::OpmEdge::Used {
                            process, artifact, ..
                        } if *process == sm => Some(*artifact),
                        _ => None,
                    })
                    .flat_map(|a| g.contributing_processes(a))
                    .filter_map(|p| g.get(p).map(|n| n.label.clone()))
                    .collect();
                self.lineage_process_labels(g, &atlas_file)
                    .into_iter()
                    .filter(|l| !before.contains(l))
                    .collect()
            }
        };
        answers.push(QueryAnswer {
            id: 2,
            question: "Find the process that led to Atlas X Graphic, excluding \
                       everything prior to averaging with softmean"
                .into(),
            answerable: q2.len() == 3,
            items: q2,
        });

        // Q3: stage 3–5 details (softmean, slicer, convert runs).
        let q3: Vec<String> = g
            .nodes()
            .iter()
            .filter(|n| {
                n.kind == OpmNodeKind::Process
                    && (n.label.starts_with("Softmean")
                        || n.label.starts_with("Slice")
                        || n.label.starts_with("Convert"))
            })
            .map(|n| {
                let params: Vec<String> = ["param:axis", "param:index", "param:format"]
                    .iter()
                    .filter_map(|k| g.prop(n.id, k).map(|v| format!("{k}={v}")))
                    .collect();
                if params.is_empty() {
                    n.label.clone()
                } else {
                    format!("{} [{}]", n.label, params.join(", "))
                }
            })
            .collect();
        answers.push(QueryAnswer {
            id: 3,
            question: "Find the Stage 3, 4 and 5 details of the process".into(),
            answerable: q3.len() == 7,
            items: q3,
        });

        // Q4: align_warp invocations with a 12th-order model.
        let q4: Vec<String> = g
            .nodes_with_prop(OpmNodeKind::Process, "param:model", "12")
            .into_iter()
            .filter(|id| Self::activity(g, *id).starts_with("AlignWarp"))
            .filter_map(|id| g.get(id))
            .map(|n| n.label.clone())
            .collect();
        answers.push(QueryAnswer {
            id: 4,
            question: "Find all invocations of align_warp using a twelfth-order \
                       nonlinear model"
                .into(),
            answerable: q4.len() == 4,
            items: q4,
        });

        // Q5: atlas graphics from workflows where alignment used model 12.
        let model12: Vec<OpmNodeId> = g
            .nodes_with_prop(OpmNodeKind::Process, "param:model", "12")
            .into_iter()
            .filter(|id| Self::activity(g, *id).starts_with("AlignWarp"))
            .collect();
        let q5: Vec<String> = g
            .nodes()
            .iter()
            .filter(|n| n.kind == OpmNodeKind::Artifact)
            .filter(|n| {
                // A graphic: generated by a Convert process.
                g.edges().iter().any(|e| {
                    matches!(e, prov_core::opm::OpmEdge::WasGeneratedBy { artifact, process, .. }
                        if *artifact == n.id
                        && g.get(*process).map(|p| p.label.starts_with("Convert")).unwrap_or(false))
                })
            })
            .filter(|n| {
                let procs = g.contributing_processes(n.id);
                model12.iter().any(|m| procs.contains(m))
            })
            .map(|n| n.label.clone())
            .collect();
        answers.push(QueryAnswer {
            id: 5,
            question: "Find all Atlas Graphic images output from workflows where \
                       alignment used a 12th-order model"
                .into(),
            answerable: q5.len() == 3,
            items: q5,
        });

        // Q6: softmean outputs whose inputs were aligned with model 12.
        let q6: Vec<String> = g
            .nodes()
            .iter()
            .filter(|n| n.kind == OpmNodeKind::Artifact)
            .filter(|n| {
                g.edges().iter().any(|e| {
                    matches!(e, prov_core::opm::OpmEdge::WasGeneratedBy { artifact, process, .. }
                        if *artifact == n.id
                        && g.get(*process).map(|p| p.label.starts_with("Softmean")).unwrap_or(false))
                })
            })
            .filter(|n| {
                let procs = g.contributing_processes(n.id);
                model12.iter().any(|m| procs.contains(m))
            })
            .map(|n| n.label.clone())
            .collect();
        answers.push(QueryAnswer {
            id: 6,
            question: "Find the averaged images of softmean where the input images \
                       were aligned with a 12th-order model"
                .into(),
            answerable: q6.len() == 1,
            items: q6,
        });

        // Q7: runs annotated center=UChicago.
        let annotated: Vec<(wf_engine::ExecId, wf_model::NodeId)> = self
            .annotations
            .with_key("center")
            .filter(|a| a.text == "UChicago")
            .filter_map(|a| match a.subject {
                Subject::Run(e, n) => Some((e, n)),
                _ => None,
            })
            .collect();
        let q7: Vec<String> = annotated
            .iter()
            .filter_map(|(_, n)| self.retro.run_of(*n))
            .map(|r| r.identity.clone())
            .collect();
        answers.push(QueryAnswer {
            id: 7,
            question: "Find runs annotated with center = UChicago".into(),
            answerable: q7.len() == 2,
            items: q7,
        });

        // Q8: outputs of the annotated runs (annotations joined with the
        // integrated graph).
        let q8: Vec<String> = annotated
            .iter()
            .filter_map(|(_, n)| self.retro.run_of(*n))
            .flat_map(|r| r.outputs.iter().map(|(_, h)| format!("{h:016x}")))
            .filter(|label| self.artifact(g, label).is_some())
            .collect();
        answers.push(QueryAnswer {
            id: 8,
            question: "Find the outputs of the annotated runs, in the integrated \
                       provenance"
                .into(),
            answerable: q8.len() == 2,
            items: q8,
        });

        // Q9: everything derived from the first anatomy image.
        let anatomy = self
            .retro
            .runs
            .iter()
            .find(|r| {
                r.identity.starts_with("LoadVolume") && {
                    r.params
                        .iter()
                        .any(|(k, v)| k == "path" && v.render().contains("anatomy1"))
                }
            })
            .map(|r| format!("{:016x}", r.outputs[0].1));
        let q9: Vec<String> = match anatomy.and_then(|l| self.artifact(g, &l)) {
            None => Vec::new(),
            Some(src) => g
                .nodes()
                .iter()
                .filter(|n| n.kind == OpmNodeKind::Artifact && n.id != src)
                .filter(|n| g.derived_star(n.id).contains(&src))
                .map(|n| n.label.clone())
                .collect(),
        };
        answers.push(QueryAnswer {
            id: 9,
            question: "Find everything derived from the anatomy1 image".into(),
            answerable: q9.len() >= 8, // warp, resliced, atlas, 3 slices, 3 files
            items: q9,
        });

        answers
    }

    /// Answer Q1 against each single-system account (without integration),
    /// to quantify how much each system alone can see.
    pub fn q1_coverage_per_account(&self) -> Vec<(String, usize)> {
        let atlas_file = self.atlas_graphic_label();
        self.accounts
            .iter()
            .map(|(name, g)| {
                (
                    name.clone(),
                    self.lineage_process_labels(g, &atlas_file).len(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenge_runs_and_integrates() {
        let setup = run_challenge();
        assert_eq!(setup.accounts.len(), 3);
        assert!(
            setup.integration.shared_artifacts >= 4,
            "{}",
            setup.integration.summary()
        );
        assert!(setup.integration.inferred_edges > 0);
        assert_eq!(setup.annotations.len(), 2);
    }

    #[test]
    fn all_nine_queries_answerable_after_integration() {
        let setup = run_challenge();
        let answers = setup.answer_queries();
        assert_eq!(answers.len(), 9);
        for a in &answers {
            assert!(
                a.answerable,
                "Q{} not answerable: {} -> {:?}",
                a.id, a.question, a.items
            );
        }
    }

    #[test]
    fn single_accounts_see_less_than_integration() {
        let setup = run_challenge();
        let integrated =
            setup.lineage_process_labels(&setup.integration.graph, &setup.atlas_graphic_label());
        for (name, count) in setup.q1_coverage_per_account() {
            assert!(
                count < integrated.len(),
                "{name} alone sees {count} >= integrated {}",
                integrated.len()
            );
        }
    }

    #[test]
    fn q2_is_exactly_the_post_softmean_stages() {
        let setup = run_challenge();
        let answers = setup.answer_queries();
        let q2 = &answers[1];
        assert_eq!(q2.count(), 3);
        let joined = q2.items.join(" ");
        assert!(joined.contains("Softmean"));
        assert!(joined.contains("Convert"));
        assert!(joined.contains("Slice"));
    }

    #[test]
    fn q4_finds_all_four_alignments() {
        let setup = run_challenge();
        let answers = setup.answer_queries();
        assert_eq!(answers[3].count(), 4);
        assert!(answers[3]
            .items
            .iter()
            .all(|l| l.starts_with("proc/") || l.starts_with("AlignWarp")));
    }
}
