//! Property-based tests of the engine's event stream as a telemetry
//! source: the parallel driver must emit a *complete*, *topologically
//! consistent* stream (telemetry is only trustworthy if the stream is),
//! and the fan-out observer must hand every sink the identical sequence.

use proptest::prelude::*;
use provenance_workflows::prelude::*;
use provenance_workflows::telemetry::{SpanCollector, SpanKind};
use std::collections::BTreeMap;
use wf_engine::event::RecordingObserver;
use wf_engine::synth::{layered_dag, LayeredSpec};
use wf_engine::EngineEvent;

/// The node a module-scoped event talks about, if any.
fn node_of(e: &EngineEvent) -> Option<NodeId> {
    match e {
        EngineEvent::ModuleStarted { node, .. }
        | EngineEvent::InputBound { node, .. }
        | EngineEvent::OutputProduced { node, .. }
        | EngineEvent::CacheChecked { node, .. }
        | EngineEvent::AttemptStarted { node, .. }
        | EngineEvent::AttemptFailed { node, .. }
        | EngineEvent::BackoffStarted { node, .. }
        | EngineEvent::ModuleTimedOut { node, .. }
        | EngineEvent::ModuleFinished { node, .. } => Some(*node),
        EngineEvent::WorkflowStarted { .. }
        | EngineEvent::RunResumed { .. }
        | EngineEvent::WorkflowFinished { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_stream_is_complete_and_topologically_consistent(
        depth in 1usize..5, width in 1usize..5, threads in 1usize..6, seed in 0u64..500
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry());
        let mut obs = RecordingObserver::default();
        exec.run_parallel(&wf, threads, &mut obs).expect("runs");
        let events = &obs.events;

        // The run is bracketed: WorkflowStarted first, WorkflowFinished last.
        prop_assert!(matches!(events.first(), Some(EngineEvent::WorkflowStarted { .. })));
        prop_assert!(matches!(events.last(), Some(EngineEvent::WorkflowFinished { .. })));

        // Completeness: every node emits exactly one ModuleStarted and
        // exactly one terminal ModuleFinished, in that order.
        let mut started: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut finished: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            match e {
                EngineEvent::ModuleStarted { node, .. } => {
                    prop_assert!(started.insert(*node, i).is_none(), "duplicate start");
                }
                EngineEvent::ModuleFinished { node, .. } => {
                    prop_assert!(finished.insert(*node, i).is_none(), "duplicate finish");
                }
                _ => {}
            }
        }
        prop_assert_eq!(started.len(), wf.node_count());
        prop_assert_eq!(finished.len(), wf.node_count());
        for (node, s) in &started {
            prop_assert!(finished[node] > *s, "finish after start for {node}");
        }

        // Per-node ordering: every event about a node sits inside that
        // node's [started, finished] bracket.
        for (i, e) in events.iter().enumerate() {
            if let Some(node) = node_of(e) {
                prop_assert!(i >= started[&node], "event before start: {e:?}");
                prop_assert!(i <= finished[&node], "event after finish: {e:?}");
            }
        }

        // Topological consistency: a module can only start after every
        // upstream producer finished — the dataflow order is visible in
        // the stream itself, which is what makes retrospective span
        // reconstruction sound.
        for node in started.keys() {
            for conn in wf.inputs_of(*node) {
                prop_assert!(
                    finished[&conn.from.node] < started[node],
                    "{} started before its input {} finished",
                    node, conn.from.node
                );
            }
        }
    }

    #[test]
    fn fanout_hands_every_sink_the_identical_stream(
        depth in 1usize..4, width in 1usize..4, threads in 1usize..5, seed in 0u64..500
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry());
        let mut a = RecordingObserver::default();
        let mut b = RecordingObserver::default();
        {
            let mut fan = FanoutObserver::new().with(&mut a).with(&mut b);
            exec.run_parallel(&wf, threads, &mut fan).expect("runs");
        }
        prop_assert!(!a.events.is_empty());
        prop_assert_eq!(&a.events, &b.events, "sinks saw different streams");
    }

    #[test]
    fn spans_from_a_parallel_run_are_well_formed(
        depth in 1usize..4, width in 1usize..4, threads in 1usize..5, seed in 0u64..500
    ) {
        let (wf, _) = layered_dag(
            1,
            LayeredSpec { depth, width, fan_in: 2, work: 1, seed },
        );
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        let r = exec.run_parallel(&wf, threads, &mut col).expect("runs");
        let trace = col.take_trace();

        // One run span; one module span per node; parents resolve; every
        // child interval nests inside its module span's extent.
        let run = trace.run_span(r.exec).expect("run span");
        prop_assert_eq!(trace.of_kind(SpanKind::Run).count(), 1);
        prop_assert_eq!(trace.of_kind(SpanKind::Module).count(), wf.node_count());
        for s in &trace.spans {
            prop_assert!(s.end_micros >= s.start_micros);
            match s.parent {
                None => prop_assert_eq!(s.kind, SpanKind::Run),
                Some(p) => {
                    let parent = trace.spans.iter().find(|x| x.id == p).expect("parent exists");
                    prop_assert!(parent.kind == SpanKind::Run || parent.kind == SpanKind::Module);
                }
            }
        }
        for m in trace.of_kind(SpanKind::Module) {
            prop_assert_eq!(m.parent, Some(run.id));
            for child in trace.children_of(m.id) {
                prop_assert!(child.start_micros >= m.start_micros);
                prop_assert!(child.end_micros <= m.end_micros);
            }
        }
    }
}
