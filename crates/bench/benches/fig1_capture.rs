//! E1 bench: running the Figure 1 workflow with each provenance capture
//! level, plus the core causality queries over its provenance.

use criterion::{criterion_group, criterion_main, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::causality::CausalityGraph;
use wf_engine::synth::figure1_workflow;
use wf_engine::{standard_registry, Executor};

fn bench_fig1(c: &mut Criterion) {
    let (wf, nodes) = figure1_workflow(1);
    let exec = Executor::new(standard_registry());

    let mut group = c.benchmark_group("fig1/run");
    for (name, level) in [
        ("capture_off", CaptureLevel::Off),
        ("capture_coarse", CaptureLevel::Coarse),
        ("capture_fine", CaptureLevel::Fine),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cap = ProvenanceCapture::new(level);
                exec.run_observed(&wf, &mut cap).expect("runs");
                cap.finish_all()
            })
        });
    }
    group.finish();

    // Queries over the captured provenance.
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec.run_observed(&wf, &mut cap).expect("runs");
    let retro = cap.take(r.exec).expect("captured");
    let graph = CausalityGraph::from_retrospective(&retro);
    let grid = retro.produced(nodes.load, "grid").expect("grid").hash;
    let iso_file = retro.produced(nodes.save_iso, "file").expect("file").hash;

    let mut group = c.benchmark_group("fig1/queries");
    group.bench_function("build_causality_graph", |b| {
        b.iter(|| CausalityGraph::from_retrospective(&retro))
    });
    group.bench_function("invalidated_by_scan", |b| {
        b.iter(|| graph.invalidated_by(grid))
    });
    group.bench_function("reproduction_slice", |b| {
        b.iter(|| graph.reproduction_slice(iso_file))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
