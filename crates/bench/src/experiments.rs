//! The experiment implementations (E1–E11 of DESIGN.md §3).

use crate::time_us;
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::causality::CausalityGraph;
use prov_core::model::RetrospectiveProvenance;
use prov_core::views::{UserView, ViewedGraph};
use prov_evolution::scenario;
use prov_query::PqlEngine;
use prov_store::{GraphStore, LogStore, ProvenanceStore, RelStore, TripleStore};
use wf_engine::sweep::{run_sweep, SweepAxis};
use wf_engine::synth::{busy_chain, figure1_workflow, layered_dag, LayeredSpec};
use wf_engine::{standard_registry, Executor};
use wf_model::{NodeId, Workflow};

fn capture(wf: &Workflow, level: CaptureLevel) -> RetrospectiveProvenance {
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(level);
    let r = exec.run_observed(wf, &mut cap).expect("workflow runs");
    cap.take(r.exec).expect("capture completes")
}

// ---------------------------------------------------------------- E1 ----

/// E1 (Figure 1): run the medical-imaging workflow and report the shape of
/// its prospective and retrospective provenance plus the invalidation
/// query result.
#[derive(Debug)]
pub struct Fig1Result {
    /// Modules in the specification.
    pub spec_modules: usize,
    /// Connections in the specification.
    pub spec_connections: usize,
    /// Module runs recorded.
    pub runs: usize,
    /// Artifacts recorded.
    pub artifacts: usize,
    /// Artifacts invalidated by a defective scan.
    pub invalidated: usize,
    /// Steps in the isosurface reproduction slice.
    pub iso_slice_len: usize,
}

/// Run E1.
pub fn experiment_fig1() -> Fig1Result {
    let (wf, nodes) = figure1_workflow(1);
    let retro = capture(&wf, CaptureLevel::Fine);
    let graph = CausalityGraph::from_retrospective(&retro);
    let grid = retro.produced(nodes.load, "grid").expect("grid").hash;
    let iso_file = retro.produced(nodes.save_iso, "file").expect("file").hash;
    Fig1Result {
        spec_modules: wf.node_count(),
        spec_connections: wf.conn_count(),
        runs: retro.run_count(),
        artifacts: retro.artifacts.len(),
        invalidated: graph.invalidated_by(grid).len(),
        iso_slice_len: graph.reproduction_slice(iso_file).len(),
    }
}

// ---------------------------------------------------------------- E2 ----

/// E2 (Figure 2): analogy transfer quality vs structural noise.
#[derive(Debug)]
pub struct AnalogyRow {
    /// Injected noise level in [0, 1].
    pub noise: f64,
    /// Fraction of transfers that applied cleanly over the seeds.
    pub clean_rate: f64,
    /// Mean matcher confidence.
    pub mean_score: f64,
    /// Median transfer time in µs.
    pub time_us: f64,
}

/// Run E2 across noise levels with `seeds` targets per level.
pub fn experiment_analogy(noises: &[f64], seeds: u64) -> Vec<AnalogyRow> {
    let (a, b, _) = scenario::figure2_triple();
    noises
        .iter()
        .map(|&noise| {
            let mut clean = 0u64;
            let mut score_sum = 0.0;
            for seed in 0..seeds {
                let target = scenario::noisy_target(seed, noise);
                let r = prov_evolution::apply_by_analogy(&a, &b, &target).expect("analogy runs");
                if r.is_clean() {
                    clean += 1;
                }
                score_sum += r.matching.mean_score();
            }
            let target = scenario::noisy_target(0, noise);
            let t = time_us(5, || {
                prov_evolution::apply_by_analogy(&a, &b, &target).expect("analogy runs")
            });
            AnalogyRow {
                noise,
                clean_rate: clean as f64 / seeds as f64,
                mean_score: score_sum / seeds as f64,
                time_us: t,
            }
        })
        .collect()
}

/// E2b (ablation): does the similarity-flooding refinement matter?
///
/// Workload: pipelines containing *duplicate* module kinds whose labels are
/// scrambled, so only graph structure can disambiguate which duplicate
/// matches which. Accuracy = fraction of duplicate nodes mapped to the
/// structurally correct counterpart.
#[derive(Debug)]
pub struct AblationRow {
    /// Refinement iterations used by the matcher.
    pub iterations: usize,
    /// Fraction of duplicate nodes mapped correctly across the seeds.
    pub accuracy: f64,
    /// Median matching time (µs).
    pub time_us: f64,
}

/// Run the E2b ablation over `seeds` chain instances per setting.
pub fn experiment_analogy_ablation(iteration_settings: &[usize], seeds: u64) -> Vec<AblationRow> {
    use prov_evolution::analogy::match_workflows_with;
    use wf_model::WorkflowBuilder;

    // Build a chain Const -> Identity -> Identity -> Identity -> Busy where
    // the three Identity stages are only distinguishable by position.
    // Nodes are *created* in a scrambled order so that id-order tie-breaks
    // cannot accidentally produce the structurally correct assignment —
    // only neighbourhood information can.
    let build = |id: u64, label_salt: u64, scramble: bool| {
        let mut b = WorkflowBuilder::new(id, "dup-chain");
        let src = b.add("ConstInt");
        let lab = |k: u64| format!("s{}", label_salt.wrapping_mul(k) % 100);
        let (i1, i2, i3) = if scramble {
            let i3 = b.add_labeled("Identity", &lab(29));
            let i1 = b.add_labeled("Identity", &lab(7));
            let i2 = b.add_labeled("Identity", &lab(13));
            (i1, i2, i3)
        } else {
            let i1 = b.add_labeled("Identity", &lab(7));
            let i2 = b.add_labeled("Identity", &lab(13));
            let i3 = b.add_labeled("Identity", &lab(29));
            (i1, i2, i3)
        };
        let sink = b.add("Busy");
        b.connect(src, "out", i1, "in")
            .connect(i1, "out", i2, "in")
            .connect(i2, "out", i3, "in")
            .connect(i3, "out", sink, "in");
        (b.build(), [i1, i2, i3])
    };

    iteration_settings
        .iter()
        .map(|&iterations| {
            let mut correct = 0u64;
            let mut total = 0u64;
            for seed in 0..seeds {
                let (a, a_dups) = build(1, seed, false);
                let (c, c_dups) = build(2, seed.wrapping_mul(31) + 997, true);
                let m = match_workflows_with(&a, &c, iterations, 0.1);
                for (ai, ci) in a_dups.iter().zip(c_dups.iter()) {
                    total += 1;
                    if m.target(*ai) == Some(*ci) {
                        correct += 1;
                    }
                }
            }
            let (a, _) = build(1, 0, false);
            let (c, _) = build(2, 997, true);
            let time = time_us(9, || match_workflows_with(&a, &c, iterations, 0.1));
            AblationRow {
                iterations,
                accuracy: correct as f64 / total as f64,
                time_us: time,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E3 ----

/// E3: capture overhead at each level, for one workload shape.
#[derive(Debug)]
pub struct CaptureRow {
    /// Chain length.
    pub chain_len: usize,
    /// Per-module busy work.
    pub work: i64,
    /// Median run time with capture off (µs).
    pub off_us: f64,
    /// Median run time with coarse capture (µs).
    pub coarse_us: f64,
    /// Median run time with fine capture (µs).
    pub fine_us: f64,
}

impl CaptureRow {
    /// Fine-capture overhead relative to off, in percent.
    pub fn fine_overhead_pct(&self) -> f64 {
        (self.fine_us / self.off_us - 1.0) * 100.0
    }
}

/// Run E3 over `(chain_len, work)` workloads, `reps` repetitions each.
pub fn experiment_capture_overhead(shapes: &[(usize, i64)], reps: usize) -> Vec<CaptureRow> {
    shapes
        .iter()
        .map(|&(chain_len, work)| {
            let (wf, _) = busy_chain(1, chain_len, work);
            let exec = Executor::new(standard_registry());
            let off_us = time_us(reps, || exec.run(&wf).expect("runs"));
            let coarse_us = time_us(reps, || {
                let mut cap = ProvenanceCapture::new(CaptureLevel::Coarse);
                exec.run_observed(&wf, &mut cap).expect("runs");
                cap.finish_all()
            });
            let fine_us = time_us(reps, || {
                let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
                exec.run_observed(&wf, &mut cap).expect("runs");
                cap.finish_all()
            });
            CaptureRow {
                chain_len,
                work,
                off_us,
                coarse_us,
                fine_us,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E4 ----

/// E4: one storage backend's numbers for a fixed corpus of executions.
#[derive(Debug)]
pub struct StorageRow {
    /// Backend name.
    pub backend: String,
    /// Median ingest time for the whole corpus (µs).
    pub ingest_us: f64,
    /// Approximate resident bytes after ingest.
    pub bytes: usize,
    /// Median lineage-query latency (µs).
    pub lineage_us: f64,
    /// Median flat-aggregate latency (µs).
    pub aggregate_us: f64,
}

/// Build a provenance corpus: `n_execs` executions of a layered workflow.
pub fn storage_corpus(n_execs: usize, depth: usize, width: usize) -> Vec<RetrospectiveProvenance> {
    let exec = Executor::new(standard_registry());
    let mut out = Vec::with_capacity(n_execs);
    for i in 0..n_execs {
        let (wf, _) = layered_dag(
            i as u64,
            LayeredSpec {
                depth,
                width,
                fan_in: 2,
                work: 1,
                seed: i as u64 + 1,
            },
        );
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).expect("runs");
        out.push(cap.take(r.exec).expect("captured"));
    }
    out
}

/// Run E4 over the four backends.
pub fn experiment_storage(corpus: &[RetrospectiveProvenance], reps: usize) -> Vec<StorageRow> {
    // A lineage target: last artifact of the last execution.
    let target = corpus
        .last()
        .and_then(|r| r.runs.last())
        .and_then(|run| run.outputs.first())
        .map(|(_, h)| *h)
        .expect("corpus non-empty");

    let log_path = std::env::temp_dir().join(format!(
        "bench-log-{}-{}.bin",
        std::process::id(),
        corpus.len()
    ));

    let mut rows = Vec::new();
    // Closures building each backend fresh.
    type Maker<'a> = Box<dyn Fn() -> Box<dyn ProvenanceStore> + 'a>;
    let makers: Vec<Maker> = vec![
        Box::new(|| Box::new(GraphStore::new())),
        Box::new(|| Box::new(RelStore::new())),
        Box::new(|| Box::new(TripleStore::new())),
        Box::new(|| {
            let _ = std::fs::remove_file(&log_path);
            Box::new(LogStore::open(&log_path).expect("log opens"))
        }),
    ];
    for maker in makers {
        let ingest_us = time_us(reps, || {
            let mut s = maker();
            for r in corpus {
                s.ingest(r);
            }
            s.run_count()
        });
        let mut store = maker();
        for r in corpus {
            store.ingest(r);
        }
        let lineage_us = time_us(reps, || store.lineage_runs(target).len());
        let aggregate_us = time_us(reps, || store.runs_per_module().len());
        rows.push(StorageRow {
            backend: store.backend_name().to_string(),
            ingest_us,
            bytes: store.approx_bytes(),
            lineage_us,
            aggregate_us,
        });
    }
    let _ = std::fs::remove_file(&log_path);
    rows
}

/// E4b (ablation): what do the relational store's hash indexes buy?
#[derive(Debug)]
pub struct IndexAblationRow {
    /// Executions in the corpus.
    pub corpus: usize,
    /// Lineage latency with hash indexes (µs).
    pub indexed_us: f64,
    /// Lineage latency with pure scans (µs).
    pub unindexed_us: f64,
}

impl IndexAblationRow {
    /// Speedup from indexing.
    pub fn speedup(&self) -> f64 {
        self.unindexed_us / self.indexed_us
    }
}

/// Run the E4b ablation over corpus sizes.
pub fn experiment_index_ablation(sizes: &[usize], reps: usize) -> Vec<IndexAblationRow> {
    sizes
        .iter()
        .map(|&n| {
            let corpus = storage_corpus(n, 5, 4);
            let target = corpus
                .last()
                .and_then(|r| r.runs.last())
                .and_then(|run| run.outputs.first())
                .map(|(_, h)| *h)
                .expect("corpus non-empty");
            let mut indexed = RelStore::new();
            let mut plain = RelStore::new_unindexed();
            for r in &corpus {
                indexed.ingest(r);
                plain.ingest(r);
            }
            assert_eq!(indexed.lineage_runs(target), plain.lineage_runs(target));
            IndexAblationRow {
                corpus: n,
                indexed_us: time_us(reps, || indexed.lineage_runs(target).len()),
                unindexed_us: time_us(reps, || plain.lineage_runs(target).len()),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E5 ----

/// E5: lineage-query latency vs provenance depth, per query approach.
#[derive(Debug)]
pub struct QueryRow {
    /// Chain depth of the provenance graph.
    pub depth: usize,
    /// PQL over the native adjacency engine (µs).
    pub pql_us: f64,
    /// Native graph-store traversal (µs).
    pub graph_us: f64,
    /// Relational join chain (µs).
    pub relational_us: f64,
    /// Triple-pattern fixpoint (µs).
    pub triple_us: f64,
}

/// Run E5 for each chain depth.
pub fn experiment_query(depths: &[usize], reps: usize) -> Vec<QueryRow> {
    depths
        .iter()
        .map(|&depth| {
            let (wf, nodes) = busy_chain(1, depth, 1);
            let retro = capture(&wf, CaptureLevel::Fine);
            let last = *nodes.last().expect("non-empty chain");
            let target = retro.produced(last, "out").expect("tail artifact").hash;

            let mut pql = PqlEngine::new();
            pql.ingest(&retro);
            let query = format!("lineage of artifact {target:016x}");
            let pql_us = time_us(reps, || pql.eval(&query).expect("query runs").len());

            let mut gs = GraphStore::new();
            gs.ingest(&retro);
            let graph_us = time_us(reps, || gs.lineage_runs(target).len());

            let mut rs = RelStore::new();
            rs.ingest(&retro);
            let relational_us = time_us(reps, || rs.lineage_runs(target).len());

            let mut ts = TripleStore::new();
            ts.ingest(&retro);
            let triple_us = time_us(reps, || ts.lineage_runs(target).len());

            QueryRow {
                depth,
                pql_us,
                graph_us,
                relational_us,
                triple_us,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E6 ----

/// E6: provenance-graph size reduction vs view granularity.
#[derive(Debug)]
pub struct ViewRow {
    /// Number of composite groups the runs are partitioned into.
    pub groups: usize,
    /// Base provenance graph nodes.
    pub base_nodes: usize,
    /// Abstracted graph nodes.
    pub viewed_nodes: usize,
    /// Hidden artifacts.
    pub hidden: usize,
}

impl ViewRow {
    /// Reduction ratio (viewed / base).
    pub fn ratio(&self) -> f64 {
        self.viewed_nodes as f64 / self.base_nodes as f64
    }
}

/// Run E6: partition a layered workflow's runs into `k` contiguous groups
/// for several `k`.
pub fn experiment_views(group_counts: &[usize]) -> Vec<ViewRow> {
    let (wf, layers) = layered_dag(
        1,
        LayeredSpec {
            depth: 6,
            width: 4,
            fan_in: 2,
            work: 1,
            seed: 3,
        },
    );
    let retro = capture(&wf, CaptureLevel::Fine);
    let graph = CausalityGraph::from_retrospective(&retro);
    let all_runs: Vec<NodeId> = layers.into_iter().flatten().collect();
    group_counts
        .iter()
        .map(|&k| {
            let mut view = UserView::new(&format!("k={k}"));
            let per = all_runs.len().div_ceil(k.max(1));
            for (gi, chunk) in all_runs.chunks(per).enumerate() {
                view = view.group(&format!("g{gi}"), chunk.iter().copied());
            }
            let viewed = ViewedGraph::apply(&graph, &view);
            ViewRow {
                groups: k,
                base_nodes: graph.node_count(),
                viewed_nodes: viewed.node_count(),
                hidden: viewed.hidden_artifacts.len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E7 ----

/// E7: challenge coverage — how many of the nine queries each
/// configuration answers.
#[derive(Debug)]
pub struct ChallengeRow {
    /// Configuration ("integrated" or one system alone).
    pub configuration: String,
    /// Processes visible in the atlas graphic's full lineage (Q1).
    pub q1_processes: usize,
    /// Whether all nine queries are answerable in this configuration.
    pub all_nine: bool,
}

/// Run E7.
pub fn experiment_challenge() -> Vec<ChallengeRow> {
    let setup = prov_interop::run_challenge();
    let full = setup
        .lineage_process_labels(&setup.integration.graph, &setup.atlas_graphic_label())
        .len();
    let mut rows: Vec<ChallengeRow> = setup
        .q1_coverage_per_account()
        .into_iter()
        .map(|(name, count)| ChallengeRow {
            configuration: format!("{name} alone"),
            q1_processes: count,
            all_nine: false, // partial accounts miss cross-system queries
        })
        .collect();
    let answers = setup.answer_queries();
    rows.push(ChallengeRow {
        configuration: "integrated".into(),
        q1_processes: full,
        all_nine: answers.iter().all(|a| a.answerable),
    });
    rows
}

// ---------------------------------------------------------------- E8 ----

/// E8: version materialization cost vs history depth.
#[derive(Debug)]
pub struct EvolutionRow {
    /// History depth (commits).
    pub depth: usize,
    /// Median materialization time without snapshots (µs).
    pub replay_us: f64,
    /// Median materialization time with snapshots every 16 commits (µs).
    pub snapshot_us: f64,
    /// Actions replayed without snapshots.
    pub replay_actions: usize,
    /// Actions replayed with snapshots.
    pub snapshot_actions: usize,
}

/// Run E8 for each history depth.
pub fn experiment_evolution(depths: &[usize], reps: usize) -> Vec<EvolutionRow> {
    depths
        .iter()
        .map(|&depth| {
            let (plain, tip_p) = scenario::evolution_history(1, depth, 0);
            let (snap, tip_s) = scenario::evolution_history(1, depth, 16);
            let replay_us = time_us(reps, || plain.materialize(tip_p).expect("ok"));
            let snapshot_us = time_us(reps, || snap.materialize(tip_s).expect("ok"));
            EvolutionRow {
                depth,
                replay_us,
                snapshot_us,
                replay_actions: plain.replay_cost(tip_p),
                snapshot_actions: snap.replay_cost(tip_s),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E9 ----

/// E9: recommendation accuracy vs corpus size.
#[derive(Debug)]
pub struct MiningRow {
    /// Corpus size (workflows).
    pub corpus: usize,
    /// hit@1.
    pub hit1: f64,
    /// hit@3.
    pub hit3: f64,
    /// Median mining time for the corpus (µs).
    pub mine_us: f64,
}

/// Run E9 for each corpus size.
pub fn experiment_mining(sizes: &[usize], reps: usize) -> Vec<MiningRow> {
    sizes
        .iter()
        .map(|&n| {
            let corpus = prov_social::corpus::build_corpus(9, n);
            let mine_us = time_us(reps, || {
                prov_social::FragmentMiner::mine(&corpus).pair_count()
            });
            let e1 = prov_social::evaluate_recommender(&corpus, 1);
            let e3 = prov_social::evaluate_recommender(&corpus, 3);
            MiningRow {
                corpus: n,
                hit1: e1.hit_rate(),
                hit3: e3.hit_rate(),
                mine_us,
            }
        })
        .collect()
}

// --------------------------------------------------------------- E10 ----

/// E10: parameter sweep with and without provenance-based caching.
#[derive(Debug)]
pub struct SweepRow {
    /// Number of swept configurations.
    pub configs: usize,
    /// Total module runs executed without cache.
    pub runs_uncached: usize,
    /// Total module runs actually computed with cache.
    pub runs_cached: usize,
    /// Median sweep time without cache (µs).
    pub uncached_us: f64,
    /// Median sweep time with cache (µs).
    pub cached_us: f64,
}

impl SweepRow {
    /// Speedup factor from caching.
    pub fn speedup(&self) -> f64 {
        self.uncached_us / self.cached_us
    }
}

/// Run E10: sweep the isovalue of a load→smooth→iso pipeline (`n` values);
/// the expensive upstream prefix is shared by every configuration.
pub fn experiment_sweep(config_counts: &[usize], reps: usize) -> Vec<SweepRow> {
    config_counts
        .iter()
        .map(|&n| {
            let mut b = wf_model::WorkflowBuilder::new(1, "sweep");
            let load = b.add("LoadVolume");
            b.param(load, "nx", 20i64);
            b.param(load, "ny", 20i64);
            b.param(load, "nz", 20i64);
            let smooth = b.add("SmoothGrid");
            b.param(smooth, "iterations", 3i64);
            let iso = b.add("Isosurface");
            b.connect(load, "grid", smooth, "data")
                .connect(smooth, "smoothed", iso, "data");
            let wf = b.build();
            let axes = vec![SweepAxis::new(
                iso,
                "isovalue",
                (0..n)
                    .map(|i| (0.1 + 0.8 * i as f64 / n as f64).into())
                    .collect(),
            )];

            let exec_plain = Executor::new(standard_registry());
            let uncached_us = time_us(reps, || {
                run_sweep(&exec_plain, &wf, &axes)
                    .expect("sweep")
                    .points
                    .len()
            });
            let plain = run_sweep(&exec_plain, &wf, &axes).expect("sweep");

            let cached_us = time_us(reps, || {
                let exec_cached = Executor::new(standard_registry()).with_cache(4096);
                run_sweep(&exec_cached, &wf, &axes)
                    .expect("sweep")
                    .points
                    .len()
            });
            let exec_cached = Executor::new(standard_registry()).with_cache(4096);
            let cached = run_sweep(&exec_cached, &wf, &axes).expect("sweep");

            SweepRow {
                configs: n,
                runs_uncached: plain.total_module_runs - plain.cached_module_runs,
                runs_cached: cached.total_module_runs - cached.cached_module_runs,
                uncached_us,
                cached_us,
            }
        })
        .collect()
}

// --------------------------------------------------------------- E11 ----

/// E11: reproducibility fidelity.
#[derive(Debug)]
pub struct ReproRow {
    /// Scenario name.
    pub scenario: String,
    /// Artifacts compared.
    pub artifacts: usize,
    /// Artifacts reproduced bit-identically.
    pub matched: usize,
    /// Fidelity in [0, 1].
    pub fidelity: f64,
}

/// Run E11: deterministic workflows reproduce exactly; a tampered recipe
/// and an injected-nondeterminism module do not.
pub fn experiment_repro() -> Vec<ReproRow> {
    use prov_core::repro::verify_reproduction;
    let mut rows = Vec::new();

    // Deterministic Figure 1.
    let (wf, nodes) = figure1_workflow(1);
    let retro = capture(&wf, CaptureLevel::Fine);
    let exec = Executor::new(standard_registry());
    let report = verify_reproduction(&exec, &wf, &retro).expect("re-run");
    rows.push(ReproRow {
        scenario: "deterministic".into(),
        artifacts: report.total(),
        matched: report.matched(),
        fidelity: report.fidelity(),
    });

    // Tampered recipe (changed parameter).
    let mut wf2 = wf.clone();
    wf2.set_param(nodes.hist, "bins", wf_model::ParamValue::Int(7))
        .expect("param");
    let report = verify_reproduction(&exec, &wf2, &retro).expect("re-run");
    rows.push(ReproRow {
        scenario: "tampered recipe".into(),
        artifacts: report.total(),
        matched: report.matched(),
        fidelity: report.fidelity(),
    });

    // Injected nondeterminism.
    let mut registry = standard_registry();
    use std::sync::atomic::{AtomicI64, Ordering};
    static TICK: AtomicI64 = AtomicI64::new(0);
    registry.register(
        wf_model::ModuleKind::new("Clock").output(wf_model::PortSpec::required(
            "out",
            wf_model::DataType::Integer,
        )),
        |_input: &wf_engine::ExecInput| {
            let mut out = std::collections::BTreeMap::new();
            out.insert(
                "out".to_string(),
                wf_engine::Value::Int(TICK.fetch_add(1, Ordering::Relaxed)),
            );
            Ok(out)
        },
    );
    let mut b = wf_model::WorkflowBuilder::new(2, "nondet");
    let clock = b.add("Clock");
    let id = b.add("Identity");
    let stable = b.add("ConstInt");
    b.connect(clock, "out", id, "in");
    let _ = stable;
    let wf3 = b.build();
    let exec3 = Executor::new(registry);
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let r = exec3.run_observed(&wf3, &mut cap).expect("runs");
    let retro3 = cap.take(r.exec).expect("captured");
    let report = verify_reproduction(&exec3, &wf3, &retro3).expect("re-run");
    rows.push(ReproRow {
        scenario: "nondeterministic module".into(),
        artifacts: report.total(),
        matched: report.matched(),
        fidelity: report.fidelity(),
    });

    rows
}

// --------------------------------------------------------------- E12 ----

/// E12: row-level vs module-level invalidation precision.
///
/// §2.4's "connecting database and workflow provenance": when one database
/// fact is found to be wrong, module-level provenance can only invalidate
/// whole downstream *artifacts* (every aggregate group), while row-level
/// provenance invalidates exactly the affected groups. The ratio is the
/// precision gained by fine-grained provenance.
#[derive(Debug)]
pub struct FineGrainedRow {
    /// Rows in each source database.
    pub source_rows: usize,
    /// Aggregate groups produced.
    pub groups: usize,
    /// Mean fraction of groups tainted per bad fact, row level.
    pub row_level_taint: f64,
    /// Fraction tainted at module level (always 1.0: the whole table).
    pub module_level_taint: f64,
    /// Median single-row lineage trace time (µs).
    pub trace_us: f64,
}

/// Run E12 for each source size.
pub fn experiment_finegrained(source_sizes: &[usize], reps: usize) -> Vec<FineGrainedRow> {
    use prov_core::finegrained::{RowLineageTracer, RowRef};
    source_sizes
        .iter()
        .map(|&n| {
            let mut b = wf_model::WorkflowBuilder::new(1, "db-precision");
            let src_a = b.add("TableSource");
            b.param(src_a, "rows", n as i64).param(src_a, "seed", 1i64);
            b.param(src_a, "groups", 8i64);
            let src_b = b.add("TableSource");
            b.param(src_b, "rows", n as i64).param(src_b, "seed", 2i64);
            let join = b.add("TableJoin");
            let agg = b.add("TableAggregate");
            b.param(agg, "group_col", "grp")
                .param(agg, "agg_col", "value");
            b.connect(src_a, "out", join, "left")
                .connect(src_b, "out", join, "right")
                .connect(join, "out", agg, "in");
            let wf = b.build();
            let exec = Executor::new(standard_registry());
            let result = exec.run(&wf).expect("runs");
            let tracer = RowLineageTracer::new(&wf, &result);
            let groups = match result.output(agg, "out") {
                Some(wf_engine::Value::Table(t)) => t.len(),
                _ => 0,
            };
            // Mean tainted fraction over every source-A fact.
            let mut total_frac = 0.0;
            for row in 0..n {
                let tainted = tracer
                    .tainted_rows(&RowRef::new(src_a, "out", row), agg)
                    .len();
                total_frac += tainted as f64 / groups.max(1) as f64;
            }
            let trace_us = time_us(reps, || tracer.base_rows(&RowRef::new(agg, "out", 0)).len());
            FineGrainedRow {
                source_rows: n,
                groups,
                row_level_taint: total_frac / n.max(1) as f64,
                module_level_taint: 1.0,
                trace_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_matches_figure1() {
        let r = experiment_fig1();
        assert_eq!(r.spec_modules, 8);
        assert_eq!(r.runs, 8);
        assert!(r.invalidated >= 7, "both branches invalidated");
        assert_eq!(r.iso_slice_len, 5);
    }

    #[test]
    fn e2_clean_at_zero_noise() {
        let rows = experiment_analogy(&[0.0, 0.9], 6);
        assert_eq!(rows[0].clean_rate, 1.0);
        assert!(rows[0].mean_score >= rows[1].mean_score);
    }

    #[test]
    fn e2b_refinement_disambiguates_duplicates() {
        let rows = experiment_analogy_ablation(&[0, 3], 12);
        let without = rows.iter().find(|r| r.iterations == 0).unwrap();
        let with = rows.iter().find(|r| r.iterations == 3).unwrap();
        assert!(
            with.accuracy > without.accuracy + 0.2,
            "flooding must help: {:.2} vs {:.2}",
            with.accuracy,
            without.accuracy
        );
        assert!(with.accuracy > 0.9);
    }

    #[test]
    fn e3_fine_costs_at_least_as_much_as_off() {
        let rows = experiment_capture_overhead(&[(6, 2000)], 5);
        assert!(
            rows[0].fine_us >= rows[0].off_us * 0.8,
            "sanity: timing noise bound"
        );
    }

    #[test]
    fn e4_all_backends_report() {
        let corpus = storage_corpus(3, 3, 3);
        let rows = experiment_storage(&corpus, 3);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.bytes > 0));
    }

    #[test]
    fn e4b_indexes_never_hurt() {
        let rows = experiment_index_ablation(&[8], 5);
        assert!(rows[0].speedup() > 0.8, "speedup {:.2}", rows[0].speedup());
    }

    #[test]
    fn e5_rows_cover_depths() {
        let rows = experiment_query(&[4, 16], 3);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.pql_us > 0.0));
    }

    #[test]
    fn e6_more_groups_less_reduction() {
        let rows = experiment_views(&[1, 4, 24]);
        assert!(rows[0].viewed_nodes <= rows[1].viewed_nodes);
        assert!(rows[1].viewed_nodes <= rows[2].viewed_nodes + 4);
        assert!(rows[0].ratio() < 1.0);
    }

    #[test]
    fn e7_integration_dominates() {
        let rows = experiment_challenge();
        let integrated = rows.last().expect("rows");
        assert!(integrated.all_nine);
        for r in &rows[..rows.len() - 1] {
            assert!(r.q1_processes < integrated.q1_processes);
        }
    }

    #[test]
    fn e8_snapshots_replay_fewer_actions() {
        let rows = experiment_evolution(&[64], 3);
        assert!(rows[0].snapshot_actions < rows[0].replay_actions);
    }

    #[test]
    fn e9_accuracy_reasonable() {
        let rows = experiment_mining(&[30], 2);
        assert!(rows[0].hit3 > 0.5);
        assert!(rows[0].hit3 >= rows[0].hit1);
    }

    #[test]
    fn e10_cache_reduces_executed_runs() {
        let rows = experiment_sweep(&[6], 2);
        assert!(rows[0].runs_cached < rows[0].runs_uncached);
    }

    #[test]
    fn e12_row_level_is_more_precise_than_module_level() {
        let rows = experiment_finegrained(&[32], 3);
        let r = &rows[0];
        assert!(r.groups >= 2);
        assert!(
            r.row_level_taint < r.module_level_taint,
            "row-level taint {:.2} must beat module-level 1.0",
            r.row_level_taint
        );
        assert!(r.row_level_taint > 0.0, "facts do contribute somewhere");
    }

    #[test]
    fn e11_fidelity_ordering() {
        let rows = experiment_repro();
        assert_eq!(rows[0].fidelity, 1.0, "deterministic reproduces exactly");
        assert!(rows[1].fidelity < 1.0, "tampered recipe detected");
        assert!(rows[2].fidelity < 1.0, "nondeterminism detected");
    }
}
