//! A miniature relational engine over a fixed provenance schema.
//!
//! Represents the "tuples stored in relational database tables" end of the
//! storage spectrum (§2.2). The engine is small but real: typed columns,
//! heap tables, equality hash indexes, and composable physical operators
//! (scan → filter → hash-join → project → aggregate). Lineage becomes a
//! chain of self-joins over `run_inputs ⋈ run_outputs` — one join per
//! depth level, the asymptotic behaviour experiment E5 exposes.
//!
//! The provenance schema:
//!
//! ```text
//! runs(exec, node, identity, status, elapsed_micros)
//! run_inputs(exec, node, port, artifact)
//! run_outputs(exec, node, port, artifact)
//! artifacts(hash, dtype, size)
//! ```

use crate::api::{sort_artifacts, sort_runs, Frontier, ProvenanceStore, RunRef};
use crate::stats::StoreStats;
use prov_core::model::{ArtifactHash, RetrospectiveProvenance};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use wf_engine::ExecId;
use wf_model::NodeId;

/// A relational value.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum RelValue {
    /// 64-bit integer (also used for ids and hashes).
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
}

impl RelValue {
    /// Equality hash used by hash joins and indexes (floats by bits).
    fn key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            RelValue::Int(i) => {
                0u8.hash(&mut h);
                i.hash(&mut h);
            }
            RelValue::Float(f) => {
                1u8.hash(&mut h);
                f.to_bits().hash(&mut h);
            }
            RelValue::Text(s) => {
                2u8.hash(&mut h);
                s.hash(&mut h);
            }
        }
        h.finish()
    }

    /// The integer value, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            RelValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text value, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            RelValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for RelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelValue::Int(i) => write!(f, "{i}"),
            RelValue::Float(x) => write!(f, "{x}"),
            RelValue::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for RelValue {
    fn from(v: i64) -> Self {
        RelValue::Int(v)
    }
}
impl From<&str> for RelValue {
    fn from(v: &str) -> Self {
        RelValue::Text(v.to_string())
    }
}
impl From<String> for RelValue {
    fn from(v: String) -> Self {
        RelValue::Text(v)
    }
}
impl From<f64> for RelValue {
    fn from(v: f64) -> Self {
        RelValue::Float(v)
    }
}

/// A table schema: ordered column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Column names in position order.
    pub columns: Vec<String>,
}

impl Schema {
    /// Build a schema.
    pub fn new(columns: &[&str]) -> Self {
        Self {
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Position of a column.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column '{name}' in {:?}", self.columns))
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

/// An in-memory relation: schema + rows (+ optional hash indexes).
#[derive(Debug, Clone)]
pub struct Relation {
    /// The schema.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Vec<RelValue>>,
    /// Equality indexes: column position → value-key → row ids.
    indexes: HashMap<usize, HashMap<u64, Vec<usize>>>,
}

impl Relation {
    /// An empty relation.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// Insert a row; maintains any indexes. Panics on arity mismatch.
    pub fn insert(&mut self, row: Vec<RelValue>) {
        assert_eq!(row.len(), self.schema.width(), "row arity mismatch");
        let id = self.rows.len();
        for (&col, index) in self.indexes.iter_mut() {
            index.entry(row[col].key()).or_default().push(id);
        }
        self.rows.push(row);
    }

    /// Create an equality hash index on a column.
    pub fn create_index(&mut self, column: &str) {
        let col = self.schema.col(column);
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        for (id, row) in self.rows.iter().enumerate() {
            index.entry(row[col].key()).or_default().push(id);
        }
        self.indexes.insert(col, index);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether an equality index exists on `column`.
    pub fn is_indexed(&self, column: &str) -> bool {
        self.indexes.contains_key(&self.schema.col(column))
    }

    /// The row-id buckets of an equality index, one per distinct value
    /// key, in no particular order. `None` if the column is not indexed.
    /// Lets aggregations walk index postings instead of re-grouping rows.
    pub fn index_buckets(&self, column: &str) -> Option<impl Iterator<Item = &Vec<usize>>> {
        self.indexes
            .get(&self.schema.col(column))
            .map(|index| index.values())
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index lookup: rows where `column = value`. Falls back to a scan if
    /// the column is not indexed.
    pub fn lookup<'a>(&'a self, column: &str, value: &RelValue) -> Vec<&'a Vec<RelValue>> {
        let col = self.schema.col(column);
        if let Some(index) = self.indexes.get(&col) {
            index
                .get(&value.key())
                .map(|ids| {
                    ids.iter()
                        .map(|&i| &self.rows[i])
                        .filter(|r| r[col] == *value)
                        .collect()
                })
                .unwrap_or_default()
        } else {
            self.rows.iter().filter(|r| r[col] == *value).collect()
        }
    }

    /// Full scan with a predicate: σ.
    pub fn filter(&self, pred: impl Fn(&[RelValue]) -> bool) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for row in &self.rows {
            if pred(row) {
                out.insert(row.clone());
            }
        }
        out
    }

    /// Projection: π. Column names may repeat.
    pub fn project(&self, columns: &[&str]) -> Relation {
        let idxs: Vec<usize> = columns.iter().map(|c| self.schema.col(c)).collect();
        let mut out = Relation::new(Schema::new(columns));
        for row in &self.rows {
            out.insert(idxs.iter().map(|&i| row[i].clone()).collect());
        }
        out
    }

    /// Hash join: ⋈ on `self.left_col = other.right_col`. Output schema is
    /// the concatenation, right columns prefixed with `r_` when they
    /// collide with a left column name.
    pub fn hash_join(&self, left_col: &str, other: &Relation, right_col: &str) -> Relation {
        let lc = self.schema.col(left_col);
        let rc = other.schema.col(right_col);
        // Build on the smaller side.
        let mut cols: Vec<String> = self.schema.columns.clone();
        for c in &other.schema.columns {
            if cols.contains(c) {
                cols.push(format!("r_{c}"));
            } else {
                cols.push(c.clone());
            }
        }
        let mut out = Relation::new(Schema { columns: cols });
        let mut table: HashMap<u64, Vec<&Vec<RelValue>>> = HashMap::new();
        for row in &other.rows {
            table.entry(row[rc].key()).or_default().push(row);
        }
        for lrow in &self.rows {
            if let Some(matches) = table.get(&lrow[lc].key()) {
                for rrow in matches {
                    if rrow[rc] == lrow[lc] {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        out.insert(row);
                    }
                }
            }
        }
        out
    }

    /// Grouped count: γ. Returns (group value, count) pairs sorted by
    /// group.
    pub fn count_by(&self, column: &str) -> Vec<(RelValue, usize)> {
        let col = self.schema.col(column);
        let mut groups: Vec<(RelValue, usize)> = Vec::new();
        'rows: for row in &self.rows {
            for g in groups.iter_mut() {
                if g.0 == row[col] {
                    g.1 += 1;
                    continue 'rows;
                }
            }
            groups.push((row[col].clone(), 1));
        }
        groups.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        groups
    }

    /// Distinct rows (preserving first-seen order).
    pub fn distinct(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
        for row in &self.rows {
            let key = row.iter().fold(0u64, |acc, v| {
                acc.wrapping_mul(0x100000001b3).wrapping_add(v.key())
            });
            let candidates = seen.entry(key).or_default();
            if !candidates.iter().any(|&i| out.rows[i] == *row) {
                candidates.push(out.rows.len());
                out.insert(row.clone());
            }
        }
        out
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> usize {
        let cell = |v: &RelValue| match v {
            RelValue::Int(_) | RelValue::Float(_) => 16,
            RelValue::Text(s) => 24 + s.len(),
        };
        let rows: usize = self
            .rows
            .iter()
            .map(|r| r.iter().map(cell).sum::<usize>() + 24)
            .sum();
        let idx: usize = self
            .indexes
            .values()
            .map(|i| i.values().map(|v| v.len() * 8 + 16).sum::<usize>())
            .sum();
        rows + idx
    }
}

/// The relational provenance store.
#[derive(Debug)]
pub struct RelStore {
    /// `runs(exec, node, identity, status, elapsed_micros)`.
    pub runs: Relation,
    /// `run_inputs(exec, node, port, artifact)`.
    pub run_inputs: Relation,
    /// `run_outputs(exec, node, port, artifact)`.
    pub run_outputs: Relation,
    /// `artifacts(hash, dtype, size)`.
    pub artifacts: Relation,
    /// Aggregate index maintained at ingest: module identity → run count.
    /// The optimized `runs_per_module` answers from this map instead of
    /// scanning `runs`; the cost is paid once per insert, not per query.
    module_counts: std::collections::BTreeMap<String, usize>,
    optimized: AtomicBool,
    stats: StoreStats,
}

impl Default for RelStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RelStore {
    /// An empty store with **no** indexes: every lookup is a scan. The
    /// ablation point of experiment E4b — quantifying what the hash
    /// indexes buy.
    pub fn new_unindexed() -> Self {
        Self {
            runs: Relation::new(Schema::new(&[
                "exec",
                "node",
                "identity",
                "status",
                "elapsed_micros",
            ])),
            run_inputs: Relation::new(Schema::new(&["exec", "node", "port", "artifact"])),
            run_outputs: Relation::new(Schema::new(&["exec", "node", "port", "artifact"])),
            artifacts: Relation::new(Schema::new(&["hash", "dtype", "size"])),
            module_counts: std::collections::BTreeMap::new(),
            optimized: AtomicBool::new(false),
            stats: StoreStats::new(),
        }
    }

    /// An empty store with indexes on the join columns.
    pub fn new() -> Self {
        let mut runs = Relation::new(Schema::new(&[
            "exec",
            "node",
            "identity",
            "status",
            "elapsed_micros",
        ]));
        runs.create_index("node");
        // Secondary indexes consulted only by the optimized query paths:
        // module identity (Q4 aggregation) and execution id.
        runs.create_index("identity");
        runs.create_index("exec");
        let mut run_inputs = Relation::new(Schema::new(&["exec", "node", "port", "artifact"]));
        run_inputs.create_index("artifact");
        run_inputs.create_index("node");
        let mut run_outputs = Relation::new(Schema::new(&["exec", "node", "port", "artifact"]));
        run_outputs.create_index("artifact");
        run_outputs.create_index("node");
        let mut artifacts = Relation::new(Schema::new(&["hash", "dtype", "size"]));
        artifacts.create_index("hash");
        Self {
            runs,
            run_inputs,
            run_outputs,
            artifacts,
            module_counts: std::collections::BTreeMap::new(),
            optimized: AtomicBool::new(false),
            stats: StoreStats::new(),
        }
    }

    fn run_ref(row_exec: &RelValue, row_node: &RelValue) -> Option<RunRef> {
        Some((
            ExecId(row_exec.as_int()? as u64),
            NodeId(row_node.as_int()? as u64),
        ))
    }

    /// Stats-recording lookup used by the query paths: an indexed column is
    /// a keyed probe reading only the matching rows; an unindexed column
    /// forces a scan of the whole relation.
    fn counted_lookup<'a>(
        &'a self,
        rel: &'a Relation,
        column: &str,
        value: &RelValue,
    ) -> Vec<&'a Vec<RelValue>> {
        let out = rel.lookup(column, value);
        if rel.is_indexed(column) {
            self.stats.add_keyed_lookups(1);
            self.stats.add_row_reads(out.len() as u64);
        } else {
            self.stats.add_scans(1);
            self.stats.add_row_reads(rel.len() as u64);
        }
        out
    }
}

/// Artifact hashes are stored as `i64` (bit-cast) in the `artifact` and
/// `hash` columns.
fn art_val(h: ArtifactHash) -> RelValue {
    RelValue::Int(h as i64)
}

impl ProvenanceStore for RelStore {
    fn backend_name(&self) -> &'static str {
        "relational"
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }

    fn ingest(&mut self, retro: &RetrospectiveProvenance) {
        for run in &retro.runs {
            *self.module_counts.entry(run.identity.clone()).or_default() += 1;
            self.runs.insert(vec![
                RelValue::Int(retro.exec.0 as i64),
                RelValue::Int(run.node.raw() as i64),
                run.identity.as_str().into(),
                run.status.to_string().into(),
                RelValue::Int(run.elapsed_micros as i64),
            ]);
            for (port, h) in &run.inputs {
                self.run_inputs.insert(vec![
                    RelValue::Int(retro.exec.0 as i64),
                    RelValue::Int(run.node.raw() as i64),
                    port.as_str().into(),
                    art_val(*h),
                ]);
            }
            for (port, h) in &run.outputs {
                self.run_outputs.insert(vec![
                    RelValue::Int(retro.exec.0 as i64),
                    RelValue::Int(run.node.raw() as i64),
                    port.as_str().into(),
                    art_val(*h),
                ]);
            }
        }
        for a in retro.artifacts.values() {
            if self.artifacts.lookup("hash", &art_val(a.hash)).is_empty() {
                self.artifacts.insert(vec![
                    art_val(a.hash),
                    a.dtype.as_str().into(),
                    RelValue::Int(a.size as i64),
                ]);
            }
        }
    }

    fn generators(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        sort_runs(
            self.counted_lookup(&self.run_outputs, "artifact", &art_val(artifact))
                .into_iter()
                .filter_map(|row| RelStore::run_ref(&row[0], &row[1]))
                .collect(),
        )
    }

    fn lineage_runs(&self, artifact: ArtifactHash) -> Vec<RunRef> {
        // Iterated self-join: artifacts_k = π_artifact(run_inputs ⋈_node
        // (σ_artifact∈frontier run_outputs)); one join round per depth.
        let mut result: Vec<RunRef> = Vec::new();
        let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
        let mut seen_arts: std::collections::BTreeSet<ArtifactHash> = Default::default();
        let mut frontier = vec![artifact];
        seen_arts.insert(artifact);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                for out_row in self.counted_lookup(&self.run_outputs, "artifact", &art_val(a)) {
                    let Some(run) = RelStore::run_ref(&out_row[0], &out_row[1]) else {
                        continue;
                    };
                    if !seen_runs.insert(run) {
                        continue;
                    }
                    result.push(run);
                    // Join to this run's inputs (index-nested-loop join on
                    // node, filtered by exec).
                    for in_row in self.counted_lookup(
                        &self.run_inputs,
                        "node",
                        &RelValue::Int(run.1.raw() as i64),
                    ) {
                        if in_row[0].as_int() == Some(run.0 .0 as i64) {
                            if let Some(h) = in_row[3].as_int() {
                                let h = h as u64;
                                if seen_arts.insert(h) {
                                    next.push(h);
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        sort_runs(result)
    }

    fn derived_artifacts(&self, artifact: ArtifactHash) -> Vec<ArtifactHash> {
        let mut result = Vec::new();
        let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
        let mut seen_arts: std::collections::BTreeSet<ArtifactHash> =
            [artifact].into_iter().collect();
        let mut frontier = vec![artifact];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                for in_row in self.counted_lookup(&self.run_inputs, "artifact", &art_val(a)) {
                    let Some(run) = RelStore::run_ref(&in_row[0], &in_row[1]) else {
                        continue;
                    };
                    if !seen_runs.insert(run) {
                        continue;
                    }
                    for out_row in self.counted_lookup(
                        &self.run_outputs,
                        "node",
                        &RelValue::Int(run.1.raw() as i64),
                    ) {
                        if out_row[0].as_int() == Some(run.0 .0 as i64) {
                            if let Some(h) = out_row[3].as_int() {
                                let h = h as u64;
                                if seen_arts.insert(h) {
                                    result.push(h);
                                    next.push(h);
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        sort_artifacts(result)
    }

    fn expand_frontier(&self, seeds: &[ArtifactHash], upstream: bool) -> Frontier {
        // The multi-seed form of the iterated index-nested-loop joins
        // above: probe one side's `artifact` column for runs, join to the
        // other side on `node` (exec-checked) for the next artifact tier.
        let (run_rel, art_rel) = if upstream {
            (&self.run_outputs, &self.run_inputs)
        } else {
            (&self.run_inputs, &self.run_outputs)
        };
        let mut out = Frontier::default();
        let mut seen_runs: std::collections::BTreeSet<RunRef> = Default::default();
        let mut seen_arts: std::collections::BTreeSet<ArtifactHash> = Default::default();
        let mut frontier: Vec<ArtifactHash> = Vec::new();
        for &h in seeds {
            if seen_arts.insert(h) {
                frontier.push(h);
            }
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for a in frontier.drain(..) {
                for run_row in self.counted_lookup(run_rel, "artifact", &art_val(a)) {
                    let Some(run) = RelStore::run_ref(&run_row[0], &run_row[1]) else {
                        continue;
                    };
                    if !seen_runs.insert(run) {
                        continue;
                    }
                    out.runs.push(run);
                    for art_row in
                        self.counted_lookup(art_rel, "node", &RelValue::Int(run.1.raw() as i64))
                    {
                        if art_row[0].as_int() == Some(run.0 .0 as i64) {
                            if let Some(h) = art_row[3].as_int() {
                                let h = h as u64;
                                if seen_arts.insert(h) {
                                    out.artifacts.push(h);
                                    next.push(h);
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        out
    }

    fn adopt_stats(&mut self, stats: &StoreStats) {
        self.stats = stats.clone();
    }

    fn runs_per_module(&self) -> Vec<(String, usize)> {
        if self.optimized.load(Ordering::Relaxed) && self.runs.is_indexed("identity") {
            // Answer from the ingest-maintained aggregate: one keyed read
            // of the counts map, no row access at all (`count_by` compares
            // every row against every group seen so far). The unindexed
            // ablation store keeps its meaning — every lookup is a scan —
            // so the fast path stays tied to the identity index.
            self.stats.add_keyed_lookups(1);
            return self
                .module_counts
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
        }
        self.stats.add_scans(1);
        self.stats.add_row_reads(self.runs.len() as u64);
        self.runs
            .count_by("identity")
            .into_iter()
            .filter_map(|(v, c)| v.as_text().map(|s| (s.to_string(), c)))
            .collect()
    }

    fn run_count(&self) -> usize {
        if self.optimized.load(Ordering::Relaxed) {
            // Served from table metadata either way, but the optimized
            // path reports itself as one keyed read so ANALYZE stays
            // exact.
            self.stats.add_keyed_lookups(1);
        }
        self.runs.len()
    }

    fn set_optimized(&self, on: bool) {
        self.optimized.store(on, Ordering::Relaxed);
    }

    fn optimized(&self) -> bool {
        self.optimized.load(Ordering::Relaxed)
    }

    fn approx_bytes(&self) -> usize {
        self.runs.approx_bytes()
            + self.run_inputs.approx_bytes()
            + self.run_outputs.approx_bytes()
            + self.artifacts.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    #[test]
    fn relation_insert_filter_project() {
        let mut r = Relation::new(Schema::new(&["a", "b"]));
        r.insert(vec![1i64.into(), "x".into()]);
        r.insert(vec![2i64.into(), "y".into()]);
        r.insert(vec![3i64.into(), "x".into()]);
        let f = r.filter(|row| row[1] == RelValue::Text("x".into()));
        assert_eq!(f.len(), 2);
        let p = f.project(&["a"]);
        assert_eq!(p.schema.columns, vec!["a"]);
        assert_eq!(p.rows, vec![vec![RelValue::Int(1)], vec![RelValue::Int(3)]]);
    }

    #[test]
    fn hash_join_matches_and_renames() {
        let mut l = Relation::new(Schema::new(&["id", "name"]));
        l.insert(vec![1i64.into(), "alpha".into()]);
        l.insert(vec![2i64.into(), "beta".into()]);
        let mut r = Relation::new(Schema::new(&["id", "score"]));
        r.insert(vec![1i64.into(), 10.0.into()]);
        r.insert(vec![1i64.into(), 20.0.into()]);
        r.insert(vec![3i64.into(), 30.0.into()]);
        let j = l.hash_join("id", &r, "id");
        assert_eq!(j.len(), 2, "id=1 matches twice, id=2 none");
        assert_eq!(j.schema.columns, vec!["id", "name", "r_id", "score"]);
    }

    #[test]
    fn index_lookup_equals_scan() {
        let mut r = Relation::new(Schema::new(&["k", "v"]));
        for i in 0..100i64 {
            r.insert(vec![(i % 10).into(), i.into()]);
        }
        let scanned = r.lookup("k", &RelValue::Int(3)).len();
        r.create_index("k");
        let indexed = r.lookup("k", &RelValue::Int(3)).len();
        assert_eq!(scanned, indexed);
        assert_eq!(indexed, 10);
        // Index maintained on later inserts.
        r.insert(vec![3i64.into(), 999i64.into()]);
        assert_eq!(r.lookup("k", &RelValue::Int(3)).len(), 11);
    }

    #[test]
    fn count_by_and_distinct() {
        let mut r = Relation::new(Schema::new(&["m"]));
        for m in ["a", "b", "a", "a"] {
            r.insert(vec![m.into()]);
        }
        let counts = r.count_by("m");
        assert_eq!(
            counts,
            vec![
                (RelValue::Text("a".into()), 3),
                (RelValue::Text("b".into()), 1)
            ]
        );
        assert_eq!(r.distinct().len(), 2);
    }

    fn fig1_store() -> (
        RelStore,
        RetrospectiveProvenance,
        wf_engine::synth::Figure1Nodes,
    ) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut s = RelStore::new();
        s.ingest(&retro);
        (s, retro, nodes)
    }

    #[test]
    fn provenance_schema_populated() {
        let (s, retro, _) = fig1_store();
        assert_eq!(s.runs.len(), 8);
        assert_eq!(s.run_outputs.len(), 8);
        assert_eq!(s.run_inputs.len(), 7);
        assert_eq!(s.artifacts.len(), retro.artifacts.len());
    }

    #[test]
    fn rel_store_agrees_with_graph_store() {
        use crate::graphstore::GraphStore;
        let (rs, retro, nodes) = fig1_store();
        let mut gs = GraphStore::new();
        gs.ingest(&retro);
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        assert_eq!(rs.lineage_runs(iso_file), gs.lineage_runs(iso_file));
        assert_eq!(rs.generators(grid), gs.generators(grid));
        assert_eq!(rs.derived_artifacts(grid), gs.derived_artifacts(grid));
        assert_eq!(rs.runs_per_module(), gs.runs_per_module());
        assert_eq!(rs.run_count(), gs.run_count());
    }

    #[test]
    fn unindexed_store_answers_identically() {
        let (indexed, retro, nodes) = fig1_store();
        let mut plain = RelStore::new_unindexed();
        plain.ingest(&retro);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let iso_file = retro.produced(nodes.save_iso, "file").unwrap().hash;
        assert_eq!(plain.lineage_runs(iso_file), indexed.lineage_runs(iso_file));
        assert_eq!(plain.generators(grid), indexed.generators(grid));
        assert_eq!(
            plain.derived_artifacts(grid),
            indexed.derived_artifacts(grid)
        );
    }

    #[test]
    fn stats_show_indexed_probes_vs_unindexed_scans() {
        let (indexed, retro, nodes) = fig1_store();
        let mut plain = RelStore::new_unindexed();
        plain.ingest(&retro);
        let grid = retro.produced(nodes.load, "grid").unwrap().hash;
        let _ = indexed.generators(grid);
        let _ = plain.generators(grid);
        let i = indexed.stats().snapshot();
        let p = plain.stats().snapshot();
        assert_eq!(i.keyed_lookups, 1);
        assert_eq!(i.scans, 0);
        assert_eq!(p.keyed_lookups, 0);
        assert_eq!(p.scans, 1);
        assert!(
            p.row_reads > i.row_reads,
            "unindexed lookup reads the whole table"
        );
    }

    #[test]
    fn aggregate_query_over_runs() {
        let (s, ..) = fig1_store();
        let counts = s.runs_per_module();
        assert!(counts.contains(&("SaveFile@1".to_string(), 2)));
    }

    #[test]
    fn optimized_aggregate_uses_identity_index_and_matches() {
        let (s, ..) = fig1_store();
        assert!(s.runs.is_indexed("identity"));
        assert!(s.runs.is_indexed("exec"));
        let naive = s.runs_per_module();
        s.set_optimized(true);
        assert!(s.optimized());
        let before = s.stats().snapshot();
        let fast = s.runs_per_module();
        let d = s.stats().snapshot().delta(&before);
        assert_eq!(fast, naive, "aggregate index must equal count_by");
        assert_eq!(d.scans, 0, "optimized Q4 reads the aggregate, no scan");
        assert_eq!(d.keyed_lookups, 1);
        assert_eq!(d.row_reads, 0, "counts are maintained at ingest");
        // The unindexed ablation store has no identity index: optimized
        // mode degrades gracefully to the scan path.
        let plain = RelStore::new_unindexed();
        plain.set_optimized(true);
        let before = plain.stats().snapshot();
        assert!(plain.runs_per_module().is_empty());
        assert_eq!(plain.stats().snapshot().delta(&before).scans, 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let r = Relation::new(Schema::new(&["a"]));
        r.project(&["zzz"]);
    }
}
