//! Cost-based optimization for PQL plans.
//!
//! [`Plan::of`] derives the naive operator tree; this module rewrites it
//! when the engine's secondary indexes (see `PqlEngine::rebuild_indexes`)
//! and a [`CostModel`] over stored cardinalities say an alternative is
//! cheaper:
//!
//! * **predicate pushdown** — `count`/`list` whose filter gives every
//!   disjunct an `=` clause on an indexed field (`module`, `status`,
//!   `dtype`) becomes an [`PlanOp::IndexLookup`] (union of postings, in
//!   scan order) under the *full* original filter as a residual — the
//!   index only narrows candidates, the residual keeps the semantics;
//! * **scan → keyed conversion** — trivial `count` queries become a
//!   [`PlanOp::MetaCount`] answered from stored cardinality;
//! * **adjacency probe** — a depth-1 closure becomes a
//!   [`PlanOp::NeighborProbe`] (one adjacency-list read, no BFS queue).
//!
//! [`eval_optimized`] / [`analyze_optimized`] execute the rewritten plan.
//! Both are result-identical to `PqlEngine::eval_query` — same rows, same
//! order — which the differential harness (`tests/differential_query.rs`)
//! checks across every backend. [`QueryCache`] adds a bounded LRU result
//! cache keyed by `(backend, canonical plan)`, invalidated by the engine's
//! ingest generation.

use crate::ast::*;
use crate::error::PqlError;
use crate::eval::{PNode, PqlEngine, QueryResult, ScanItem};
use crate::plan::{analyze, measured, Analysis, CostModel, OpReport, Plan, PlanNode, PlanOp};
use prov_store::StatsSnapshot;
use std::collections::BTreeSet;
use std::time::Instant;
use wf_engine::ExecId;
use wf_model::NodeId;

/// The rewrite the optimizer settled on (crate-internal shape, shared with
/// the sharded engine so both execute identical decisions).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Rewrite {
    /// No profitable rewrite: execute the naive plan.
    None,
    /// Trivial count from stored cardinality.
    MetaCount { entity: Entity },
    /// Index-probe union + residual filter.
    IndexLookup {
        entity: Entity,
        keys: Vec<(Field, String)>,
        /// Exact candidate-row estimate (sum of posting lengths).
        est: u64,
    },
    /// Depth-1 closure as a single adjacency probe.
    NeighborProbe,
}

/// The outcome of optimizing a query: the (possibly rewritten) plan plus
/// human-readable rewrite notes for EXPLAIN output.
#[derive(Debug, Clone)]
pub struct Optimization {
    /// The plan that will be executed.
    pub plan: Plan,
    /// One note per applied rewrite; empty when the naive plan stands.
    pub rewrites: Vec<String>,
    pub(crate) chosen: Rewrite,
}

impl Optimization {
    /// Did any rewrite apply?
    pub fn is_rewritten(&self) -> bool {
        self.chosen != Rewrite::None
    }

    /// Render the plan tree plus rewrite notes.
    pub fn render(&self) -> String {
        let mut out = self.plan.render();
        if self.rewrites.is_empty() {
            out.push_str("rewrites: none (naive plan is optimal)\n");
        } else {
            for r in &self.rewrites {
                out.push_str(&format!("rewrite: {r}\n"));
            }
        }
        out
    }
}

/// For each disjunct, pick the cheapest indexed `=` clause (smallest
/// posting). Returns `None` unless *every* disjunct has one — otherwise
/// the probe union would miss rows the scan finds. `posting_len` supplies
/// the (uncounted) posting length for an `(entity, field, value)` key, or
/// `None` when that pair has no index — the single engine answers from its
/// secondary indexes, the sharded engine from per-shard sums.
fn choose_index_keys_with(
    posting_len: &dyn Fn(Entity, Field, &str) -> Option<usize>,
    entity: Entity,
    filter: &Condition,
) -> Option<(Vec<(Field, String)>, u64)> {
    if filter.is_trivial() {
        return None;
    }
    let mut keys = Vec::new();
    let mut est = 0u64;
    for conj in &filter.any_of {
        let mut best: Option<(Field, String, usize)> = None;
        for c in conj {
            if c.op != Op::Eq {
                continue;
            }
            if let Some(len) = posting_len(entity, c.field, &c.value) {
                if best.as_ref().is_none_or(|b| len < b.2) {
                    best = Some((c.field, c.value.clone(), len));
                }
            }
        }
        let (field, value, len) = best?;
        est += len as u64;
        keys.push((field, value));
    }
    Some((keys, est))
}

/// Derive the cost-optimal plan for `query` against `engine`.
pub fn optimize(engine: &PqlEngine, query: &Query) -> Optimization {
    optimize_with(
        &CostModel::of_engine(engine),
        &|entity, field, value| engine.posting_len(entity, field, value),
        query,
    )
}

/// The decision core of [`optimize`], parameterized over the cardinality
/// snapshot and posting-length source so the sharded engine (whose global
/// posting lengths are per-shard sums) reaches byte-identical decisions.
pub(crate) fn optimize_with(
    cost: &CostModel,
    posting_len: &dyn Fn(Entity, Field, &str) -> Option<usize>,
    query: &Query,
) -> Optimization {
    let naive = || Optimization {
        plan: Plan::of(query),
        rewrites: Vec::new(),
        chosen: Rewrite::None,
    };
    match query {
        Query::Count { entity, filter } if filter.is_trivial() => Optimization {
            plan: Plan {
                root: PlanNode::leaf(PlanOp::MetaCount { entity: *entity }),
            },
            rewrites: vec![format!(
                "Scan({entity})+CountRows -> MetaCount: stored cardinality answers \
                 the trivial count (1 lookup vs {} rows)",
                cost.entity_rows(*entity)
            )],
            chosen: Rewrite::MetaCount { entity: *entity },
        },
        Query::Count { entity, filter } | Query::List { entity, filter } => {
            let Some((keys, est)) = choose_index_keys_with(posting_len, *entity, filter) else {
                return naive();
            };
            let scan_rows = cost.entity_rows(*entity);
            // Keyed probes beat a scan at equal row counts, so ties go to
            // the index.
            if est > scan_rows {
                return naive();
            }
            let lookup = PlanNode::leaf(PlanOp::IndexLookup {
                entity: *entity,
                keys: keys.clone(),
            });
            let filtered = PlanNode::over(
                PlanOp::Filter {
                    filter: filter.clone(),
                },
                lookup,
            );
            let top = if matches!(query, Query::Count { .. }) {
                PlanOp::CountRows
            } else {
                PlanOp::Collect
            };
            Optimization {
                plan: Plan {
                    root: PlanNode::over(top, filtered),
                },
                rewrites: vec![format!(
                    "Scan({entity}) -> IndexLookup: {} probe(s) yield an estimated \
                     {est} candidate rows vs a {scan_rows}-row scan; the full \
                     filter stays as a residual",
                    keys.len()
                )],
                chosen: Rewrite::IndexLookup {
                    entity: *entity,
                    keys,
                    est,
                },
            }
        }
        Query::Closure {
            direction,
            target,
            depth: Some(1),
            filter,
        } => {
            let mut node = PlanNode::over(
                PlanOp::NeighborProbe {
                    direction: *direction,
                },
                PlanNode::leaf(PlanOp::Anchor { target: *target }),
            );
            if !filter.is_trivial() {
                node = PlanNode::over(
                    PlanOp::Filter {
                        filter: filter.clone(),
                    },
                    node,
                );
            }
            Optimization {
                plan: Plan {
                    root: PlanNode::over(PlanOp::Collect, node),
                },
                rewrites: vec![
                    "Traverse(depth <= 1) -> NeighborProbe: one adjacency-list read \
                     replaces the BFS frontier"
                        .to_string(),
                ],
                chosen: Rewrite::NeighborProbe,
            }
        }
        _ => naive(),
    }
}

/// Evaluate `query` through the optimized plan. Result-identical to
/// `PqlEngine::eval_query` (rows and order), but served by the cheapest
/// access path the cost model found.
pub fn eval_optimized(engine: &PqlEngine, query: &Query) -> Result<QueryResult, PqlError> {
    Ok(analyze_optimized(engine, query)?.result)
}

/// A stage report in execution order: (label, rows_in, rows_out, est,
/// micros, accesses).
type StageReport = (String, usize, usize, Option<u64>, u64, StatsSnapshot);

/// Turn leaf-first stage reports of a linear operator chain into render
/// order (root first, depth = render position).
fn chain_reports(stages: Vec<StageReport>) -> Vec<OpReport> {
    stages
        .into_iter()
        .rev()
        .enumerate()
        .map(
            |(depth, (label, rows_in, rows_out, est_rows, self_micros, accesses))| OpReport {
                label,
                depth,
                rows_in,
                rows_out,
                est_rows,
                self_micros,
                accesses,
            },
        )
        .collect()
}

/// EXPLAIN ANALYZE through the optimizer: execute the rewritten plan,
/// annotating every operator with rows in/out, the cost model's estimate,
/// self-time, and access counts. Falls back to [`analyze`] when no rewrite
/// applies.
pub fn analyze_optimized(engine: &PqlEngine, query: &Query) -> Result<Analysis, PqlError> {
    let opt = optimize(engine, query);
    match opt.chosen.clone() {
        Rewrite::None => analyze(engine, query),
        Rewrite::MetaCount { entity } => {
            let t_total = Instant::now();
            let (n, t, d) = measured(engine, || engine.meta_count(entity));
            Ok(Analysis {
                plan: opt.plan,
                result: QueryResult::Count(n),
                total_micros: t_total.elapsed().as_micros() as u64,
                // Count operators report the count as their row count
                // (matching the naive CountRows convention), and the
                // stored cardinality is known exactly at plan time.
                ops: chain_reports(vec![(
                    PlanOp::MetaCount { entity }.label(),
                    0,
                    n,
                    Some(n as u64),
                    t,
                    d,
                )]),
            })
        }
        Rewrite::IndexLookup { entity, keys, est } => {
            let t_total = Instant::now();
            let mut stages: Vec<StageReport> = Vec::new();
            let filter = match query {
                Query::Count { filter, .. } | Query::List { filter, .. } => filter,
                _ => unreachable!("IndexLookup only rewrites count/list"),
            };
            // Union of postings through a BTreeSet: candidates come out in
            // key order, which is exactly the order a scan enumerates.
            let (candidates, t, d) = measured(engine, || match entity {
                Entity::Runs => {
                    let mut set: BTreeSet<(ExecId, NodeId)> = BTreeSet::new();
                    for (field, value) in &keys {
                        for &key in engine.probe_run_index(*field, value).unwrap_or(&[]) {
                            set.insert(key);
                        }
                    }
                    set.into_iter()
                        .map(|(e, n)| ScanItem::Node(PNode::Run(e, n)))
                        .collect::<Vec<_>>()
                }
                Entity::Artifacts => {
                    let mut set: BTreeSet<u64> = BTreeSet::new();
                    for (_, value) in &keys {
                        set.extend(engine.probe_artifact_index(value));
                    }
                    set.into_iter()
                        .map(|h| ScanItem::Node(PNode::Artifact(h)))
                        .collect::<Vec<_>>()
                }
                Entity::Executions => unreachable!("executions have no secondary index"),
            });
            stages.push((
                PlanOp::IndexLookup {
                    entity,
                    keys: keys.clone(),
                }
                .label(),
                0,
                candidates.len(),
                Some(est),
                t,
                d,
            ));

            let rows_in = candidates.len();
            let (kept, t, d) = measured(engine, || {
                candidates
                    .into_iter()
                    .filter(|&it| engine.item_matches(it, filter))
                    .collect::<Vec<_>>()
            });
            stages.push((
                PlanOp::Filter {
                    filter: filter.clone(),
                }
                .label(),
                rows_in,
                kept.len(),
                Some(est.div_ceil(3)),
                t,
                d,
            ));

            let rows_in = kept.len();
            let result = if matches!(query, Query::Count { .. }) {
                let n = kept.len();
                stages.push((
                    PlanOp::CountRows.label(),
                    rows_in,
                    n,
                    Some(est.div_ceil(3)),
                    0,
                    StatsSnapshot::default(),
                ));
                QueryResult::Count(n)
            } else {
                let (rows, t, d) = measured(engine, || {
                    kept.into_iter()
                        .map(|it| engine.describe_item(it))
                        .collect::<Vec<_>>()
                });
                stages.push((
                    PlanOp::Collect.label(),
                    rows_in,
                    rows.len(),
                    Some(est.div_ceil(3)),
                    t,
                    d,
                ));
                QueryResult::Nodes(rows)
            };
            Ok(Analysis {
                plan: opt.plan,
                result,
                total_micros: t_total.elapsed().as_micros() as u64,
                ops: chain_reports(stages),
            })
        }
        Rewrite::NeighborProbe => {
            let Query::Closure {
                direction,
                target,
                depth: Some(1),
                filter,
            } = query
            else {
                unreachable!("NeighborProbe only rewrites depth-1 closures");
            };
            let cost = CostModel::of_engine(engine);
            let t_total = Instant::now();
            let mut stages: Vec<StageReport> = Vec::new();

            let (anchor, t, d) = measured(engine, || engine.resolve_counted(*target));
            let anchor = anchor?;
            stages.push((
                PlanOp::Anchor { target: *target }.label(),
                0,
                1,
                Some(1),
                t,
                d,
            ));

            let reverse = *direction == Direction::Upstream;
            // Same discovery order as the BFS's first (and only) level.
            let (discovered, t, d) = measured(engine, || {
                let mut out = Vec::new();
                let mut seen: BTreeSet<PNode> = [anchor].into();
                for &m in engine.neighbors_counted(anchor, reverse) {
                    if seen.insert(m) {
                        out.push(m);
                    }
                }
                out
            });
            let probe_est = cost.avg_degree().min(cost.graph_nodes());
            stages.push((
                PlanOp::NeighborProbe {
                    direction: *direction,
                }
                .label(),
                1,
                discovered.len(),
                Some(probe_est),
                t,
                d,
            ));

            let kept = if filter.is_trivial() {
                discovered
            } else {
                let rows_in = discovered.len();
                let (kept, t, d) = measured(engine, || {
                    discovered
                        .into_iter()
                        .filter(|&n| engine.item_matches(ScanItem::Node(n), filter))
                        .collect::<Vec<_>>()
                });
                stages.push((
                    PlanOp::Filter {
                        filter: filter.clone(),
                    }
                    .label(),
                    rows_in,
                    kept.len(),
                    Some(probe_est.div_ceil(3)),
                    t,
                    d,
                ));
                kept
            };

            let rows_in = kept.len();
            let (rows, t, d) = measured(engine, || {
                kept.into_iter()
                    .map(|n| engine.describe_item(ScanItem::Node(n)))
                    .collect::<Vec<_>>()
            });
            let collect_est = stages.last().and_then(|s| s.3);
            stages.push((
                PlanOp::Collect.label(),
                rows_in,
                rows.len(),
                collect_est,
                t,
                d,
            ));
            Ok(Analysis {
                plan: opt.plan,
                result: QueryResult::Nodes(rows),
                total_micros: t_total.elapsed().as_micros() as u64,
                ops: chain_reports(stages),
            })
        }
    }
}

// ---- bounded LRU result cache ---------------------------------------------

#[derive(Debug, Clone)]
struct CacheEntry {
    backend: String,
    plan_key: String,
    generation: u64,
    result: QueryResult,
}

/// A bounded LRU result cache keyed by `(backend, canonical plan)`.
///
/// The canonical plan key ([`QueryCache::key_for`]) is the rendered naive
/// plan — deterministic for a query, independent of the cost model's
/// choices, and shared by semantically identical query spellings that
/// parse to the same AST. Entries are tagged with the generation of the
/// data they were computed against; a lookup against a newer generation
/// misses and evicts the stale entry.
#[derive(Debug)]
pub struct QueryCache {
    cap: usize,
    /// Most recently used last.
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// A cache holding at most `cap` results (minimum 1).
    pub fn new(cap: usize) -> Self {
        QueryCache {
            cap: cap.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The canonical plan key of a query.
    pub fn key_for(query: &Query) -> String {
        Plan::of(query).render()
    }

    /// Look up a cached result. Every stale-generation entry for this
    /// backend is swept out first — not just the looked-up key — so one
    /// generation bump cannot leave old results (and their memory) pinned
    /// behind plan keys that never get queried again.
    pub fn get(&mut self, backend: &str, plan_key: &str, generation: u64) -> Option<QueryResult> {
        self.sweep_stale(backend, generation);
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.backend == backend && e.plan_key == plan_key)
        {
            let entry = self.entries.remove(i);
            let result = entry.result.clone();
            self.entries.push(entry);
            self.hits += 1;
            return Some(result);
        }
        self.misses += 1;
        None
    }

    /// Drop every entry for `backend` whose generation is not `current`.
    /// Called on each lookup; callers that learn of an ingest out of band
    /// (e.g. the server's write path) can also sweep eagerly.
    pub fn sweep_stale(&mut self, backend: &str, current: u64) {
        self.entries
            .retain(|e| e.backend != backend || e.generation == current);
    }

    /// Insert (or refresh) a result, evicting the least recently used
    /// entry when over capacity.
    pub fn put(&mut self, backend: &str, plan_key: &str, generation: u64, result: QueryResult) {
        self.entries
            .retain(|e| !(e.backend == backend && e.plan_key == plan_key));
        self.entries.push(CacheEntry {
            backend: backend.to_string(),
            plan_key: plan_key.to_string(),
            generation,
            result,
        });
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to execute.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Evaluate through the optimizer with result caching. Cache entries are
/// invalidated by the engine's ingest generation.
pub fn eval_cached(
    engine: &PqlEngine,
    query: &Query,
    cache: &mut QueryCache,
) -> Result<QueryResult, PqlError> {
    let key = QueryCache::key_for(query);
    if let Some(result) = cache.get("engine", &key, engine.generation()) {
        return Ok(result);
    }
    let result = eval_optimized(engine, query)?;
    cache.put("engine", &key, engine.generation(), result.clone());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use prov_core::model::RetrospectiveProvenance;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn engine() -> (
        PqlEngine,
        RetrospectiveProvenance,
        wf_engine::synth::Figure1Nodes,
    ) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let mut e = PqlEngine::new();
        e.ingest(&retro);
        (e, retro, nodes)
    }

    #[test]
    fn optimized_results_match_naive_on_every_shape() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let grid = retro.produced(nodes.load, "grid").unwrap();
        for q in [
            "count runs".to_string(),
            "count artifacts".to_string(),
            "count executions".to_string(),
            "count runs where status = succeeded".to_string(),
            "count runs where status = failed".to_string(),
            "list runs where module = histogram".to_string(),
            "list runs where module = \"Histogram@1\"".to_string(),
            "list runs where status = succeeded and module contains save".to_string(),
            "list runs where module = histogram or module = isosurface".to_string(),
            "list artifacts where dtype = grid".to_string(),
            "list runs where module contains save".to_string(),
            "list executions where status = succeeded".to_string(),
            "count runs where exec = 0".to_string(),
            format!("lineage of artifact {} depth 1", file.digest()),
            format!(
                "lineage of artifact {} depth 1 where module = histogram",
                file.digest()
            ),
            format!("impact of artifact {} depth 1", grid.digest()),
            format!("lineage of artifact {}", file.digest()),
            format!("impact of artifact {}", grid.digest()),
            format!(
                "paths from artifact {} to artifact {}",
                grid.digest(),
                retro.produced(nodes.save_iso, "file").unwrap().digest()
            ),
        ] {
            let parsed = parse(&q).unwrap();
            let naive = e.eval_query(&parsed).unwrap();
            let fast = eval_optimized(&e, &parsed).unwrap();
            assert_eq!(fast, naive, "divergence on {q}");
            let analysis = analyze_optimized(&e, &parsed).unwrap();
            assert_eq!(analysis.result, naive, "analyze divergence on {q}");
        }
    }

    #[test]
    fn trivial_count_is_a_metadata_lookup() {
        let (e, ..) = engine();
        let q = parse("count runs").unwrap();
        let opt = optimize(&e, &q);
        assert!(opt.is_rewritten());
        assert!(opt.plan.render().contains("MetaCount"));
        assert!(opt.render().contains("rewrite:"));
        let before = e.stats().snapshot();
        let a = analyze_optimized(&e, &q).unwrap();
        let delta = e.stats().snapshot().delta(&before);
        assert_eq!(a.result, QueryResult::Count(8));
        assert_eq!(delta.scans, 0, "no scan for a trivial count");
        assert_eq!(delta.keyed_lookups, 1);
    }

    #[test]
    fn indexed_filter_probes_instead_of_scanning() {
        let (e, ..) = engine();
        let q = parse("count runs where status = succeeded").unwrap();
        let opt = optimize(&e, &q);
        assert!(opt.plan.render().contains("IndexLookup"));
        assert!(opt.plan.render().contains("Filter"), "residual survives");
        let before = e.stats().snapshot();
        let a = analyze_optimized(&e, &q).unwrap();
        let delta = e.stats().snapshot().delta(&before);
        assert_eq!(a.result, QueryResult::Count(8));
        assert_eq!(delta.scans, 0, "index path does not scan");
        assert!(delta.keyed_lookups >= 1);
        // The estimate is exact here: posting length == matching rows.
        let lookup = a
            .ops
            .iter()
            .find(|o| o.label.starts_with("IndexLookup"))
            .unwrap();
        assert_eq!(lookup.est_rows, Some(lookup.rows_out as u64));
        assert!(a.render().contains("est="), "{}", a.render());
    }

    #[test]
    fn unindexable_filters_keep_the_scan_plan() {
        let (e, ..) = engine();
        // `contains` is not indexable, and neither is `exec`.
        for q in [
            "count runs where module contains save",
            "count runs where exec = 0",
            "list executions where status = succeeded",
            "list runs where status = succeeded or module contains save",
        ] {
            let opt = optimize(&e, &parse(q).unwrap());
            assert!(!opt.is_rewritten(), "unexpected rewrite for {q}");
            assert!(opt.plan.render().contains("Scan"));
            assert!(opt.render().contains("rewrites: none"));
        }
    }

    #[test]
    fn depth1_closure_becomes_a_neighbor_probe() {
        let (e, retro, nodes) = engine();
        let file = retro.produced(nodes.save_hist, "file").unwrap();
        let q = parse(&format!("lineage of artifact {} depth 1", file.digest())).unwrap();
        let opt = optimize(&e, &q);
        assert!(opt.plan.render().contains("NeighborProbe"));
        let a = analyze_optimized(&e, &q).unwrap();
        assert_eq!(a.result, e.eval_query(&q).unwrap());
        // Deeper or unbounded closures keep the BFS.
        let q = parse(&format!("lineage of artifact {} depth 2", file.digest())).unwrap();
        assert!(!optimize(&e, &q).is_rewritten());
    }

    #[test]
    fn optimized_errors_match_naive_errors() {
        let (e, ..) = engine();
        let q = parse("lineage of artifact 00000000000000aa depth 1").unwrap();
        let fast = eval_optimized(&e, &q).unwrap_err();
        let naive = e.eval_query(&q).unwrap_err();
        assert_eq!(fast, naive);
    }

    #[test]
    fn cache_serves_repeats_and_invalidates_on_ingest() {
        let (mut e, ..) = engine();
        let mut cache = QueryCache::new(8);
        let q = parse("count runs where status = succeeded").unwrap();
        let first = eval_cached(&e, &q, &mut cache).unwrap();
        let second = eval_cached(&e, &q, &mut cache).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // New data: the generation changes, the stale entry is evicted.
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        e.ingest(&cap.take(r.exec).unwrap());
        let third = eval_cached(&e, &q, &mut cache).unwrap();
        assert_eq!(
            third,
            e.eval("count runs where status = succeeded").unwrap()
        );
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn generation_bump_sweeps_all_stale_entries_not_just_the_looked_up_key() {
        let (mut e, ..) = engine();
        let mut cache = QueryCache::new(64);
        // Populate many distinct plans at the current generation.
        let queries = [
            "count runs",
            "count artifacts",
            "count executions",
            "list runs",
            "list artifacts",
            "list executions",
            "count runs where status = succeeded",
            "list runs where module = histogram",
        ];
        for q in &queries {
            eval_cached(&e, &parse(q).unwrap(), &mut cache).unwrap();
        }
        assert_eq!(cache.len(), queries.len());
        // Ingest bumps the generation: every old-generation entry is now
        // stale, not only the one we happen to look up next.
        let (wf, _) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        e.ingest(&cap.take(r.exec).unwrap());
        eval_cached(&e, &parse("count runs").unwrap(), &mut cache).unwrap();
        assert_eq!(
            cache.len(),
            1,
            "one lookup after the bump must sweep every stale entry"
        );
        // The retained entry is the fresh one and still serves hits.
        let hits = cache.hits();
        eval_cached(&e, &parse("count runs").unwrap(), &mut cache).unwrap();
        assert_eq!(cache.hits(), hits + 1);
    }

    #[test]
    fn cache_is_bounded_lru() {
        let (e, ..) = engine();
        let mut cache = QueryCache::new(2);
        let a = parse("count runs").unwrap();
        let b = parse("count artifacts").unwrap();
        let c = parse("count executions").unwrap();
        eval_cached(&e, &a, &mut cache).unwrap();
        eval_cached(&e, &b, &mut cache).unwrap();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        eval_cached(&e, &a, &mut cache).unwrap();
        eval_cached(&e, &c, &mut cache).unwrap();
        assert_eq!(cache.len(), 2);
        let hits_before = cache.hits();
        eval_cached(&e, &a, &mut cache).unwrap();
        assert_eq!(cache.hits(), hits_before + 1, "a survived");
        let misses_before = cache.misses();
        eval_cached(&e, &b, &mut cache).unwrap();
        assert_eq!(cache.misses(), misses_before + 1, "b was evicted");
    }
}
