//! # prov-store — storage and access infrastructure for provenance
//!
//! §2.2 of the tutorial observes that "a wide variety of data models and
//! storage systems have been used, ranging from specialized Semantic Web
//! languages … and XML dialects that are stored as files … to tuples stored
//! in relational database tables", and that query solutions "are closely
//! tied to the storage models used". This crate implements that spectrum so
//! the trade-offs can be measured (experiments E4/E5):
//!
//! * [`graphstore`] — a native, adjacency-indexed provenance graph store
//!   (the "designed for provenance" point in the design space);
//! * [`triplestore`] — an RDF-style triple store with SPO/POS/OSP indexes
//!   and a basic-graph-pattern matcher (the SPARQL-ish baseline);
//! * [`relstore`] — a miniature relational engine (typed columns, hash
//!   joins, aggregation) over a fixed provenance schema (the SQL-ish
//!   baseline);
//! * [`logstore`] — an append-only, CRC-framed binary log with snapshots
//!   and compaction (the durability substrate);
//! * [`wal`] — the per-namespace write-ahead log under the provenance
//!   server: hash-chained CRC frames, configurable fsync policy,
//!   snapshot+compaction checkpoints, and torn-tail recovery;
//! * [`iofault`] — deterministic I/O fault injection (torn writes, failed
//!   fsyncs, ENOSPC, short reads at seeded byte offsets) so the WAL's
//!   failure paths are exercised reproducibly;
//! * [`api`] — the [`api::ProvenanceStore`] trait: the canned queries every
//!   backend must answer, so benchmarks compare like for like;
//! * [`spanstore`] — storage for telemetry spans (the timing half of
//!   retrospective provenance), with JSONL persistence;
//! * [`stats`] — the [`stats::StoreStats`] access recorder every backend
//!   carries, so the *same* query can be measured (reads, scans vs. keyed
//!   lookups, bytes) across all four storage strategies (experiment E16);
//! * [`shared`] — [`shared::SharedStore`], the `Arc<RwLock>`-style wrapper
//!   that turns any single-writer backend into thread-safe shared state
//!   for the concurrent service layer (generation-tagged ingest, reader
//!   guards, exact stats under contention);
//! * [`sharded`] — [`sharded::ShardedStore`], execution-hash partitioning
//!   over N inner stores with scatter-gather queries and an iterative
//!   closure-frontier exchange for cross-shard lineage (the §3
//!   scalability answer; shards share one stats recorder so ANALYZE
//!   totals sum exactly).

pub mod api;
pub mod graphstore;
pub mod iofault;
pub mod logstore;
pub mod relstore;
pub mod sharded;
pub mod shared;
pub mod spanstore;
pub mod stats;
pub mod triplestore;
pub mod wal;

pub use api::{sort_artifacts, sort_runs, Frontier, ProvenanceStore};
pub use graphstore::GraphStore;
pub use iofault::{IoFault, IoFaultPlan};
pub use logstore::LogStore;
pub use relstore::{RelStore, RelValue, Relation, Schema};
pub use sharded::{shard_of, ShardedStore, DEFAULT_SHARD_SEED};
pub use shared::SharedStore;
pub use spanstore::SpanStore;
pub use stats::{StatsSnapshot, StoreStats};
pub use triplestore::{Term, TripleStore};
pub use wal::{FsyncPolicy, NamespaceWal, Wal, WalRecovery, WalReplay};
