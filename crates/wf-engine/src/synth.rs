//! Synthetic workflow generators for tests and benchmarks.
//!
//! Experiments need workflows of controlled *shape* (depth, width, fan-in)
//! and controlled *work per module*; these generators produce them from the
//! `SynthStage` and `Busy` modules of the standard library, deterministically
//! from a seed.

use crate::stdlib::SplitMix64;
use wf_model::{NodeId, Workflow, WorkflowBuilder};

/// Shape parameters of a generated layered DAG.
#[derive(Debug, Clone, Copy)]
pub struct LayeredSpec {
    /// Number of layers (pipeline depth).
    pub depth: usize,
    /// Modules per layer (pipeline width).
    pub width: usize,
    /// Max incoming edges per node from the previous layer (1..=4, the
    /// `SynthStage` port count).
    pub fan_in: usize,
    /// `work` parameter of every stage.
    pub work: i64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for LayeredSpec {
    fn default() -> Self {
        Self {
            depth: 4,
            width: 4,
            fan_in: 2,
            work: 100,
            seed: 1,
        }
    }
}

/// Generate a layered DAG of `SynthStage` modules: `depth` layers of
/// `width` nodes, each node reading from up to `fan_in` random nodes of the
/// previous layer. Returns the workflow and the node grid (layer-major).
pub fn layered_dag(id: u64, spec: LayeredSpec) -> (Workflow, Vec<Vec<NodeId>>) {
    let mut rng = SplitMix64::new(spec.seed);
    let mut b = WorkflowBuilder::new(id, &format!("synth-{}x{}", spec.depth, spec.width));
    let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(spec.depth);
    for layer in 0..spec.depth {
        let mut nodes = Vec::with_capacity(spec.width);
        for w in 0..spec.width {
            let n = b.add("SynthStage");
            b.param(n, "work", spec.work);
            b.param(n, "seed", (layer * spec.width + w) as i64);
            nodes.push(n);
        }
        if layer > 0 {
            let prev = layers[layer - 1].clone();
            for &n in &nodes {
                let fan = 1 + (rng.next_u64() as usize) % spec.fan_in.clamp(1, 4);
                // Choose `fan` distinct predecessors.
                let mut chosen: Vec<usize> = Vec::new();
                while chosen.len() < fan.min(prev.len()) {
                    let c = (rng.next_u64() as usize) % prev.len();
                    if !chosen.contains(&c) {
                        chosen.push(c);
                    }
                }
                for (slot, &c) in chosen.iter().enumerate() {
                    b.connect(prev[c], "out", n, &format!("in{slot}"));
                }
            }
        }
        layers.push(nodes);
    }
    (b.build(), layers)
}

/// Generate a linear chain of `Busy` modules with a given per-module work
/// amount — the workload of the capture-overhead experiment (E3).
pub fn busy_chain(id: u64, len: usize, work: i64) -> (Workflow, Vec<NodeId>) {
    let mut b = WorkflowBuilder::new(id, &format!("busy-chain-{len}"));
    let mut nodes = Vec::with_capacity(len);
    let mut prev: Option<NodeId> = None;
    for i in 0..len {
        let n = b.add("Busy");
        b.param(n, "work", work);
        b.param(n, "seed", i as i64);
        if let Some(p) = prev {
            b.connect(p, "out", n, "in");
        }
        prev = Some(n);
        nodes.push(n);
    }
    (b.build(), nodes)
}

/// The Figure 1 medical-imaging workflow: load a CT volume, derive (a) a
/// histogram plot saved as `head-hist.png` and (b) a smoothed isosurface
/// visualization saved as `head-iso.png`.
///
/// Returns the workflow plus the nodes of interest:
/// `(load, histogram, plot, save_hist, isosurface, smooth, render, save_iso)`.
pub fn figure1_workflow(id: u64) -> (Workflow, Figure1Nodes) {
    let mut b = WorkflowBuilder::new(id, "visualize-head-ct");
    let load = b.add_labeled("LoadVolume", "load CT scan");
    b.param(load, "path", "head.120.vtk");
    // Branch 1: histogram of the scalar values.
    let hist = b.add("Histogram");
    b.param(hist, "bins", 32i64);
    let plot = b.add("PlotTable");
    let save_hist = b.add_labeled("SaveFile", "save histogram");
    b.param(save_hist, "name", "head-hist.png");
    // Branch 2: isosurface visualization.
    let iso = b.add("Isosurface");
    b.param(iso, "isovalue", 0.4f64);
    let smooth = b.add("SmoothMesh");
    let render = b.add("RenderMesh");
    let save_iso = b.add_labeled("SaveFile", "save isosurface view");
    b.param(save_iso, "name", "head-iso.png");

    b.connect(load, "grid", hist, "data")
        .connect(hist, "table", plot, "table")
        .connect(plot, "image", save_hist, "in")
        .connect(load, "grid", iso, "data")
        .connect(iso, "mesh", smooth, "mesh")
        .connect(smooth, "mesh", render, "mesh")
        .connect(render, "image", save_iso, "in");
    (
        b.build(),
        Figure1Nodes {
            load,
            hist,
            plot,
            save_hist,
            iso,
            smooth,
            render,
            save_iso,
        },
    )
}

/// Node handles of the Figure 1 workflow.
#[derive(Debug, Clone, Copy)]
pub struct Figure1Nodes {
    /// `LoadVolume` node.
    pub load: NodeId,
    /// `Histogram` node.
    pub hist: NodeId,
    /// `PlotTable` node.
    pub plot: NodeId,
    /// `SaveFile` node for the histogram branch.
    pub save_hist: NodeId,
    /// `Isosurface` node.
    pub iso: NodeId,
    /// `SmoothMesh` node.
    pub smooth: NodeId,
    /// `RenderMesh` node.
    pub render: NodeId,
    /// `SaveFile` node for the isosurface branch.
    pub save_iso: NodeId,
}

/// The First Provenance Challenge fMRI workflow (simplified to one of the
/// four anatomy inputs fanned to `n_subjects` AlignWarp/Reslice chains,
/// averaged by Softmean, then sliced and converted along `n_slices` axes).
pub fn challenge_workflow(id: u64, n_subjects: usize, n_slices: usize) -> Workflow {
    let n_subjects = n_subjects.clamp(1, 4);
    let n_slices = n_slices.clamp(1, 3);
    let mut b = WorkflowBuilder::new(id, "fmri-challenge");
    let reference = b.add_labeled("LoadVolume", "reference brain");
    b.param(reference, "path", "reference.img");
    let softmean = b.add("Softmean");
    for s in 0..n_subjects {
        let anatomy = b.add_labeled("LoadVolume", &format!("anatomy{}", s + 1));
        b.param(anatomy, "path", format!("anatomy{}.img", s + 1));
        let align = b.add_labeled("AlignWarp", &format!("align{}", s + 1));
        let reslice = b.add_labeled("Reslice", &format!("reslice{}", s + 1));
        b.connect(anatomy, "grid", align, "anatomy")
            .connect(reference, "grid", align, "reference")
            .connect(anatomy, "grid", reslice, "anatomy")
            .connect(align, "warp", reslice, "warp")
            .connect(reslice, "resliced", softmean, &format!("i{}", s + 1));
    }
    for (i, axis) in ["x", "y", "z"].iter().take(n_slices).enumerate() {
        let slicer = b.add_labeled("Slice", &format!("slicer-{axis}"));
        b.param(slicer, "axis", *axis);
        b.param(slicer, "index", 8i64);
        let convert = b.add_labeled("Convert", &format!("convert-{axis}"));
        b.connect(softmean, "atlas", slicer, "data")
            .connect(slicer, "image", convert, "image");
        let _ = i;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::stdlib::standard_registry;
    use wf_model::validate;

    #[test]
    fn layered_dag_has_expected_shape_and_runs() {
        let spec = LayeredSpec {
            depth: 3,
            width: 4,
            fan_in: 2,
            work: 10,
            seed: 42,
        };
        let (wf, layers) = layered_dag(1, spec);
        assert_eq!(wf.node_count(), 12);
        assert_eq!(layers.len(), 3);
        let exec = Executor::new(standard_registry());
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded());
    }

    #[test]
    fn layered_dag_is_deterministic() {
        let spec = LayeredSpec::default();
        let (a, _) = layered_dag(1, spec);
        let (b, _) = layered_dag(1, spec);
        assert_eq!(a, b);
    }

    #[test]
    fn busy_chain_runs_in_order() {
        let (wf, nodes) = busy_chain(1, 5, 10);
        assert_eq!(wf.conn_count(), 4);
        let exec = Executor::new(standard_registry());
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded());
        assert!(result.output(nodes[4], "out").is_some());
    }

    #[test]
    fn figure1_workflow_validates_and_runs() {
        let (wf, nodes) = figure1_workflow(1);
        let reg = standard_registry();
        let report = validate(&wf, reg.catalog());
        assert!(report.is_valid(), "{}", report.render());
        let exec = Executor::new(reg);
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded());
        // Both data products exist.
        assert!(result.output(nodes.save_hist, "file").is_some());
        assert!(result.output(nodes.save_iso, "file").is_some());
    }

    #[test]
    fn challenge_workflow_validates_and_runs() {
        let wf = challenge_workflow(1, 4, 3);
        let reg = standard_registry();
        let report = validate(&wf, reg.catalog());
        assert!(report.is_valid(), "{}", report.render());
        let exec = Executor::new(reg);
        let result = exec.run(&wf).unwrap();
        assert!(result.succeeded(), "{:?}", result.node_runs);
        // 1 reference + 4*(anatomy+align+reslice) + softmean + 3*(slice+convert)
        assert_eq!(wf.node_count(), 1 + 12 + 1 + 6);
    }

    #[test]
    fn deep_wide_parallel_stress() {
        let spec = LayeredSpec {
            depth: 8,
            width: 8,
            fan_in: 3,
            work: 5,
            seed: 99,
        };
        let (wf, _) = layered_dag(9, spec);
        let exec = Executor::new(standard_registry());
        let seq = exec.run(&wf).unwrap();
        for threads in [2, 8] {
            let par = exec
                .run_parallel(&wf, threads, &mut crate::exec::NullObserver)
                .unwrap();
            assert!(par.succeeded());
            assert_eq!(par.values.len(), seq.values.len());
            for (k, v) in &seq.values {
                assert_eq!(
                    par.values.get(k).map(|x| x.content_hash()),
                    Some(v.content_hash()),
                    "{threads} threads, value {k:?}"
                );
            }
        }
    }

    #[test]
    fn challenge_workflow_parallel_matches_sequential() {
        let wf = challenge_workflow(1, 2, 2);
        let exec = Executor::new(standard_registry());
        let seq = exec.run(&wf).unwrap();
        let par = exec
            .run_parallel(&wf, 4, &mut crate::exec::NullObserver)
            .unwrap();
        assert_eq!(seq.status, par.status);
        for (k, v) in &seq.values {
            assert_eq!(
                par.values.get(k).map(|x| x.content_hash()),
                Some(v.content_hash()),
                "value at {k:?} differs"
            );
        }
    }
}
