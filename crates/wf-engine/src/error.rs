//! Typed errors for workflow execution.

use std::fmt;
use wf_model::{ModelError, NodeId};

/// Errors raised while executing a workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The specification failed validation; run `validate` for details.
    InvalidWorkflow(String),
    /// No executor is registered for a module kind.
    NoExecutor {
        /// The unresolvable `name@version`.
        identity: String,
    },
    /// A required input port received no value at runtime.
    MissingInput {
        /// Node whose input is missing.
        node: NodeId,
        /// Port name.
        port: String,
    },
    /// A module body failed.
    ModuleFailed {
        /// Failing node.
        node: NodeId,
        /// Module identity.
        identity: String,
        /// Failure message from the module body.
        message: String,
    },
    /// A module received a value of the wrong type (stdlib-level check).
    BadInputType {
        /// Expected description.
        expected: String,
        /// What arrived instead.
        got: String,
    },
    /// A parameter was missing or had the wrong type.
    BadParam {
        /// Parameter name.
        name: String,
        /// What was wrong.
        message: String,
    },
    /// An underlying model error.
    Model(String),
    /// A module declared an output port it then failed to produce.
    MissingOutput {
        /// Node at fault.
        node: NodeId,
        /// The undelivered port.
        port: String,
    },
    /// A module body (or a worker thread running it) panicked.
    WorkerPanicked {
        /// The node that was running, when known.
        node: Option<NodeId>,
        /// The panic payload, rendered.
        message: String,
    },
    /// A module body exceeded its execution deadline.
    DeadlineExceeded {
        /// The node that timed out.
        node: NodeId,
        /// The enforced limit in microseconds.
        limit_micros: u64,
    },
}

/// Coarse classification of an [`ExecError`], used by retry policies to
/// decide which failures are worth re-attempting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorClass {
    /// A module body reported failure (`ModuleFailed`) — often transient.
    Failure,
    /// A module body or worker panicked — often transient.
    Panic,
    /// A module body ran past its deadline — often transient.
    Timeout,
    /// The module rejected its inputs or parameters; retrying the same
    /// inputs cannot help.
    BadInput,
    /// The specification or registry is wrong (cycles, missing executors,
    /// missing ports); retrying cannot help.
    Structural,
}

impl ExecError {
    /// The retry classification of this error.
    pub fn class(&self) -> ErrorClass {
        match self {
            ExecError::ModuleFailed { .. } => ErrorClass::Failure,
            ExecError::WorkerPanicked { .. } => ErrorClass::Panic,
            ExecError::DeadlineExceeded { .. } => ErrorClass::Timeout,
            ExecError::BadInputType { .. } | ExecError::BadParam { .. } => ErrorClass::BadInput,
            ExecError::InvalidWorkflow(_)
            | ExecError::NoExecutor { .. }
            | ExecError::MissingInput { .. }
            | ExecError::Model(_)
            | ExecError::MissingOutput { .. } => ErrorClass::Structural,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidWorkflow(msg) => write!(f, "invalid workflow: {msg}"),
            ExecError::NoExecutor { identity } => {
                write!(f, "no executor registered for {identity}")
            }
            ExecError::MissingInput { node, port } => {
                write!(f, "node {node}: required input '{port}' has no value")
            }
            ExecError::ModuleFailed {
                node,
                identity,
                message,
            } => write!(f, "node {node} ({identity}) failed: {message}"),
            ExecError::BadInputType { expected, got } => {
                write!(f, "bad input type: expected {expected}, got {got}")
            }
            ExecError::BadParam { name, message } => {
                write!(f, "bad parameter '{name}': {message}")
            }
            ExecError::Model(msg) => write!(f, "model error: {msg}"),
            ExecError::MissingOutput { node, port } => {
                write!(f, "node {node}: module did not produce output '{port}'")
            }
            ExecError::WorkerPanicked { node, message } => match node {
                Some(n) => write!(f, "node {n}: module body panicked: {message}"),
                None => write!(f, "executor thread panicked: {message}"),
            },
            ExecError::DeadlineExceeded { node, limit_micros } => {
                write!(f, "node {node}: deadline of {limit_micros}us exceeded")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        ExecError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ExecError::ModuleFailed {
            node: NodeId(2),
            identity: "AlignWarp@1".into(),
            message: "reference grid is empty".into(),
        };
        let s = e.to_string();
        assert!(s.contains("n2") && s.contains("AlignWarp@1") && s.contains("empty"));
    }

    #[test]
    fn model_errors_convert() {
        let e: ExecError = ModelError::UnknownNode(NodeId(1)).into();
        assert!(matches!(e, ExecError::Model(_)));
    }

    #[test]
    fn classes_separate_transient_from_permanent() {
        assert_eq!(
            ExecError::ModuleFailed {
                node: NodeId(0),
                identity: "X@1".into(),
                message: "flaky".into(),
            }
            .class(),
            ErrorClass::Failure
        );
        assert_eq!(
            ExecError::WorkerPanicked {
                node: Some(NodeId(1)),
                message: "boom".into(),
            }
            .class(),
            ErrorClass::Panic
        );
        assert_eq!(
            ExecError::DeadlineExceeded {
                node: NodeId(1),
                limit_micros: 5,
            }
            .class(),
            ErrorClass::Timeout
        );
        assert_eq!(
            ExecError::BadParam {
                name: "bins".into(),
                message: "negative".into(),
            }
            .class(),
            ErrorClass::BadInput
        );
        assert_eq!(
            ExecError::InvalidWorkflow("cycle".into()).class(),
            ErrorClass::Structural
        );
    }

    #[test]
    fn panic_and_timeout_messages_render() {
        let p = ExecError::WorkerPanicked {
            node: Some(NodeId(3)),
            message: "index out of bounds".into(),
        };
        assert!(p.to_string().contains("n3"));
        assert!(p.to_string().contains("index out of bounds"));
        let anon = ExecError::WorkerPanicked {
            node: None,
            message: "?".into(),
        };
        assert!(anon.to_string().contains("executor thread"));
        let t = ExecError::DeadlineExceeded {
            node: NodeId(7),
            limit_micros: 1500,
        };
        assert!(t.to_string().contains("1500us"));
    }
}
