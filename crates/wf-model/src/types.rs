//! A small structural type system for the data flowing along workflow edges.
//!
//! Scientific workflow systems attach types to module ports so that
//! specifications can be checked *before* an expensive run — this is part of
//! what makes a workflow "a (structured) database" where a script is "an
//! unstructured document" (SIGMOD'08 tutorial, §2.1).
//!
//! The system is deliberately structural and shallow: it needs to be rich
//! enough to catch real wiring mistakes in the module library (connecting a
//! histogram to a port expecting a volumetric grid) without becoming a
//! research project of its own.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a value carried on a workflow connection.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Top type: accepts any value. Used by generic utility modules.
    Any,
    /// Boolean flag.
    Boolean,
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Raw bytes (files, images on disk, serialized blobs).
    Bytes,
    /// Homogeneous list of an element type.
    List(Box<DataType>),
    /// Record with named, typed fields (field order is significant).
    Record(Vec<(String, DataType)>),
    /// Structured volumetric grid (the CT-scan dataset of Figure 1).
    Grid,
    /// Tabular dataset with named columns.
    Table,
    /// Rendered image artifact.
    Image,
    /// Triangle-mesh geometry (output of isosurface extraction).
    Mesh,
}

impl DataType {
    /// Can a value of type `source` legally flow into a port of type `self`?
    ///
    /// The relation is reflexive; `Any` accepts everything and is accepted
    /// everywhere (it is both top and a wildcard — workflow systems in this
    /// space are permissive about untyped utility modules); `Integer` may
    /// flow into `Float` (widening); lists and records are covariant.
    pub fn accepts(&self, source: &DataType) -> bool {
        use DataType::*;
        match (self, source) {
            (Any, _) | (_, Any) => true,
            (Float, Integer) => true,
            (List(a), List(b)) => a.accepts(b),
            (Record(fa), Record(fb)) => {
                // Width and depth subtyping: the source must provide every
                // field the sink declares, with compatible types.
                fa.iter()
                    .all(|(name, ta)| fb.iter().any(|(nb, tb)| nb == name && ta.accepts(tb)))
            }
            (a, b) => a == b,
        }
    }

    /// Short canonical name used in diagnostics and serialized catalogs.
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// Is this one of the scalar (non-container, non-domain) types?
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            DataType::Boolean | DataType::Integer | DataType::Float | DataType::Text
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Any => write!(f, "any"),
            DataType::Boolean => write!(f, "bool"),
            DataType::Integer => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
            DataType::Bytes => write!(f, "bytes"),
            DataType::List(e) => write!(f, "list<{e}>"),
            DataType::Record(fields) => {
                write!(f, "record{{")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, "}}")
            }
            DataType::Grid => write!(f, "grid"),
            DataType::Table => write!(f, "table"),
            DataType::Image => write!(f, "image"),
            DataType::Mesh => write!(f, "mesh"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::DataType::*;
    use super::*;

    #[test]
    fn reflexive_acceptance() {
        for t in [
            Boolean, Integer, Float, Text, Bytes, Grid, Table, Image, Mesh,
        ] {
            assert!(t.accepts(&t), "{t} should accept itself");
        }
    }

    #[test]
    fn any_is_wildcard_both_ways() {
        assert!(Any.accepts(&Grid));
        assert!(Grid.accepts(&Any));
    }

    #[test]
    fn integer_widens_to_float_but_not_back() {
        assert!(Float.accepts(&Integer));
        assert!(!Integer.accepts(&Float));
    }

    #[test]
    fn lists_are_covariant() {
        assert!(List(Box::new(Float)).accepts(&List(Box::new(Integer))));
        assert!(!List(Box::new(Integer)).accepts(&List(Box::new(Float))));
    }

    #[test]
    fn record_width_subtyping() {
        let narrow = Record(vec![("x".into(), Float)]);
        let wide = Record(vec![("x".into(), Integer), ("y".into(), Text)]);
        assert!(narrow.accepts(&wide), "extra fields in source are fine");
        assert!(!wide.accepts(&narrow), "missing field y must be rejected");
    }

    #[test]
    fn distinct_domain_types_do_not_mix() {
        assert!(!Grid.accepts(&Table));
        assert!(!Image.accepts(&Mesh));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(List(Box::new(Integer)).to_string(), "list<int>");
        assert_eq!(
            Record(vec![("a".into(), Text), ("b".into(), Grid)]).to_string(),
            "record{a: text, b: grid}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let t = Record(vec![("xs".into(), List(Box::new(Float)))]);
        let s = serde_json::to_string(&t).unwrap();
        let back: DataType = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
