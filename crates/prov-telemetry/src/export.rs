//! Trace exporters: Chrome `chrome://tracing` JSON and line-delimited
//! JSON span logs, plus validators and a JSONL re-importer.
//!
//! All rendering is hand-rolled (no JSON library on the runtime path);
//! the crate's own mini parser ([`crate::json`]) closes the loop for
//! validation and ingestion, so export → validate → import works in
//! fully offline builds.

use crate::json::{self, escape, JsonValue};
use crate::span::{Span, SpanId, SpanKind, Trace};
use wf_engine::ExecId;
use wf_model::NodeId;

/// Render a trace as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto format): one complete (`"ph":"X"`) event per span, with the
/// run id as `pid` and the node id as `tid` so modules land on separate
/// tracks.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            escape(&s.name),
            s.kind.label(),
            s.start_micros,
            s.duration_micros(),
            s.exec.0,
            s.node.map(|n| n.0).unwrap_or(0),
        ));
        out.push_str(",\"args\":{");
        out.push_str(&format!("\"span\":{}", s.id.0));
        if let Some(p) = s.parent {
            out.push_str(&format!(",\"parent\":{}", p.0));
        }
        for (k, v) in &s.attrs {
            out.push_str(&format!(",\"{}\":\"{}\"", escape(k), escape(v)));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Check that a string is a structurally valid Chrome trace: parses as
/// JSON, has a `traceEvents` array, and every event carries `name`,
/// `ph`, `ts`, and a non-negative `dur`. Returns the event count.
pub fn validate_chrome_trace(input: &str) -> Result<usize, String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "dur"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} missing \"{key}\""));
            }
        }
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            return Err(format!("event {i} has ph != \"X\""));
        }
        if ev.get("dur").and_then(JsonValue::as_f64).unwrap_or(-1.0) < 0.0 {
            return Err(format!("event {i} has negative dur"));
        }
    }
    Ok(events.len())
}

/// Render a trace as a JSONL span log: one JSON object per line, stable
/// field order, suitable for `grep`/`jq` pipelines and re-import with
/// [`spans_from_jsonl`].
pub fn spans_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for s in &trace.spans {
        out.push_str(&format!(
            "{{\"span\":{},\"kind\":\"{}\",\"name\":\"{}\",\"exec\":{},\"start\":{},\"end\":{}",
            s.id.0,
            s.kind.label(),
            escape(&s.name),
            s.exec.0,
            s.start_micros,
            s.end_micros,
        ));
        if let Some(p) = s.parent {
            out.push_str(&format!(",\"parent\":{}", p.0));
        }
        if let Some(n) = s.node {
            out.push_str(&format!(",\"node\":{}", n.0));
        }
        if !s.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

fn kind_from_label(label: &str) -> Option<SpanKind> {
    Some(match label {
        "run" => SpanKind::Run,
        "module" => SpanKind::Module,
        "attempt" => SpanKind::Attempt,
        "backoff" => SpanKind::Backoff,
        "cache" => SpanKind::CacheLookup,
        "query" => SpanKind::Query,
        "request" => SpanKind::Request,
        "operator" => SpanKind::Operator,
        _ => return None,
    })
}

/// A JSONL line the lossy importer could not turn into a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlSkip {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for JsonlSkip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Parse one JSONL span line. `Ok(None)` for blank lines.
fn parse_span_line(line: &str) -> Result<Option<Span>, String> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let u = |key: &str| {
        doc.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing or non-integer \"{key}\""))
    };
    let kind_label = doc
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"kind\"")?;
    let kind =
        kind_from_label(kind_label).ok_or_else(|| format!("unknown kind \"{kind_label}\""))?;
    let mut attrs = Vec::new();
    if let Some(JsonValue::Object(m)) = doc.get("attrs") {
        for (k, v) in m {
            if let Some(s) = v.as_str() {
                attrs.push((k.clone(), s.to_string()));
            }
        }
    }
    Ok(Some(Span {
        id: SpanId(u("span")?),
        parent: doc.get("parent").and_then(JsonValue::as_u64).map(SpanId),
        kind,
        name: doc
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string(),
        exec: ExecId(u("exec")?),
        node: doc.get("node").and_then(JsonValue::as_u64).map(NodeId),
        start_micros: u("start")?,
        end_micros: u("end")?,
        attrs,
    }))
}

/// Re-import a JSONL span log produced by [`spans_jsonl`]. Blank lines
/// are skipped; any malformed line is an error naming its line number.
pub fn spans_from_jsonl(input: &str) -> Result<Trace, String> {
    let mut spans = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        match parse_span_line(line) {
            Ok(Some(span)) => spans.push(span),
            Ok(None) => {}
            Err(e) => return Err(format!("line {}: {}", lineno + 1, e)),
        }
    }
    Ok(Trace { spans })
}

/// Lenient variant of [`spans_from_jsonl`]: malformed lines are skipped
/// and reported instead of failing the whole load, so one corrupted line
/// (a torn write, a truncated tail) does not cost every other span in
/// the file.
pub fn spans_from_jsonl_lossy(input: &str) -> (Trace, Vec<JsonlSkip>) {
    let mut spans = Vec::new();
    let mut skipped = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        match parse_span_line(line) {
            Ok(Some(span)) => spans.push(span),
            Ok(None) => {}
            Err(reason) => skipped.push(JsonlSkip {
                line: lineno + 1,
                reason,
            }),
        }
    }
    (Trace { spans }, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;
    use wf_engine::{standard_registry, Executor};
    use wf_model::WorkflowBuilder;

    fn sample_trace() -> Trace {
        let mut b = WorkflowBuilder::new(1, "export \"demo\"\n");
        let a = b.add("ConstInt");
        b.param(a, "value", 1i64);
        let c = b.add("Identity");
        b.connect(a, "out", c, "in");
        let exec = Executor::new(standard_registry()).with_cache(8);
        let mut col = SpanCollector::new();
        exec.run_observed(&b.build(), &mut col).unwrap();
        col.take_trace()
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let trace = sample_trace();
        let rendered = chrome_trace_json(&trace);
        let n = validate_chrome_trace(&rendered).unwrap();
        assert_eq!(n, trace.len());
        // The workflow name (with quote and newline) survived escaping.
        let doc = json::parse(&rendered).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("export \"demo\"\n")));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(
            validate_chrome_trace(r#"{"traceEvents":[{"name":"x"}]}"#).is_err(),
            "events missing ph/ts/dur are rejected"
        );
    }

    #[test]
    fn jsonl_round_trips_spans_exactly() {
        let trace = sample_trace();
        let log = spans_jsonl(&trace);
        assert_eq!(log.lines().count(), trace.len());
        let back = spans_from_jsonl(&log).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_import_reports_the_bad_line() {
        let err = spans_from_jsonl("\n{\"span\":0}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn lossy_import_keeps_good_spans_and_reports_bad_lines() {
        let trace = sample_trace();
        let mut lines: Vec<String> = spans_jsonl(&trace).lines().map(String::from).collect();
        // Corrupt a line in the middle of the file (torn write).
        let mid = lines.len() / 2;
        lines[mid] = "{\"span\":1,\"kind\":\"mod".into();
        lines.push("not json at all".into());
        let input = lines.join("\n");
        let (back, skipped) = spans_from_jsonl_lossy(&input);
        assert_eq!(back.len(), trace.len() - 1, "only the torn span is lost");
        assert_eq!(skipped.len(), 2);
        assert_eq!(skipped[0].line, mid + 1);
        assert_eq!(skipped[1].line, lines.len());
        assert!(skipped[1]
            .to_string()
            .starts_with(&format!("line {}:", lines.len())));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        assert_eq!(validate_chrome_trace(&chrome_trace_json(&t)).unwrap(), 0);
        assert_eq!(spans_from_jsonl(&spans_jsonl(&t)).unwrap(), t);
    }
}
