//! E6 bench: applying user views (ZOOM-style abstraction) to provenance
//! graphs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_core::capture::{CaptureLevel, ProvenanceCapture};
use prov_core::causality::CausalityGraph;
use prov_core::reduce::{summarize_chains, transitive_reduction};
use prov_core::views::{UserView, ViewedGraph};
use wf_engine::synth::{layered_dag, LayeredSpec};
use wf_engine::{standard_registry, Executor};
use wf_model::NodeId;

fn bench_views(c: &mut Criterion) {
    for (depth, width) in [(4usize, 3usize), (8, 6)] {
        let (wf, layers) = layered_dag(
            1,
            LayeredSpec {
                depth,
                width,
                fan_in: 2,
                work: 1,
                seed: 5,
            },
        );
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).expect("runs");
        let retro = cap.take(r.exec).expect("captured");
        let graph = CausalityGraph::from_retrospective(&retro);
        // One group per layer: the natural "stage view".
        let mut view = UserView::new("stages");
        for (i, layer) in layers.iter().enumerate() {
            view = view.group(&format!("stage{i}"), layer.iter().copied());
        }
        let all: Vec<NodeId> = layers.into_iter().flatten().collect();
        let whole = UserView::new("whole").group("all", all);

        let mut group = c.benchmark_group(format!("views/{depth}x{width}"));
        group.bench_function(BenchmarkId::from_parameter("stage_view"), |b| {
            b.iter(|| ViewedGraph::apply(&graph, &view).node_count())
        });
        group.bench_function(BenchmarkId::from_parameter("whole_view"), |b| {
            b.iter(|| ViewedGraph::apply(&graph, &whole).node_count())
        });
        group.bench_function(BenchmarkId::from_parameter("transitive_reduction"), |b| {
            b.iter(|| transitive_reduction(&graph).after)
        });
        group.bench_function(BenchmarkId::from_parameter("chain_summary"), |b| {
            b.iter(|| summarize_chains(&graph).summarized_node_count())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_views);
criterion_main!(benches);
