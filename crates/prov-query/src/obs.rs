//! Runtime query observability: spans, metrics, and a slow-query log.
//!
//! [`plan`](crate::plan) answers "what did *this* query do?"; this module
//! answers "what have queries been doing?". A [`QueryObserver`] wraps
//! evaluation, emitting one [`SpanKind::Query`] span per query, feeding a
//! latency histogram and per-backend labeled counters into a shared
//! [`MetricsRegistry`] (Prometheus-renderable alongside the engine's own
//! metrics), and retaining the slowest queries in a bounded ring buffer —
//! the [`SlowQueryLog`] — so the interesting tail survives long after the
//! queries themselves have returned.

use crate::ast::Query;
use crate::error::PqlError;
use crate::eval::{PqlEngine, QueryResult};
use crate::plan::{analyze, analyze_store};
use prov_store::{ProvenanceStore, StatsSnapshot};
use prov_telemetry::json::escape;
use prov_telemetry::{MetricsRegistry, Span, SpanId, SpanKind, Trace};
use std::collections::VecDeque;
use std::sync::Arc;
use wf_engine::event::now_micros;
use wf_engine::ExecId;

/// One retained slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// The query, in canonical PQL text.
    pub query: String,
    /// Which backend answered it (`engine`, `graph`, `triple`, …).
    pub backend: String,
    /// Wall-clock evaluation time.
    pub duration_micros: u64,
    /// Result rows produced.
    pub rows: usize,
    /// Store accesses attributed to the query.
    pub accesses: StatsSnapshot,
    /// Admission order (monotone across the log's lifetime; survives
    /// evictions, so readers can tell how much history scrolled past).
    pub seq: u64,
    /// The distributed trace this query ran under, when the caller was
    /// traced — lets an operator jump from a slow-log line straight to
    /// the request's span tree.
    pub trace_id: Option<u128>,
}

impl SlowQueryEntry {
    /// One human-readable line: `#seq  12345us  7 rows  [backend]  query  (accesses)`,
    /// suffixed with `trace=<32hex>` when the query was traced.
    pub fn render(&self) -> String {
        let mut line = format!(
            "#{}  {}us  {} rows  [{}]  {}  ({})",
            self.seq,
            self.duration_micros,
            self.rows,
            self.backend,
            self.query,
            self.accesses.render()
        );
        if let Some(t) = self.trace_id {
            line.push_str(&format!("  trace={t:032x}"));
        }
        line
    }
}

/// A bounded ring buffer of the queries that crossed a latency threshold.
///
/// Every query is offered via [`SlowQueryLog::observe`]; only those at or
/// above `threshold_micros` are admitted, and once `capacity` entries are
/// held the oldest is evicted. `seen`/`admitted`/`dropped` counters keep
/// the totals honest even after eviction.
#[derive(Debug, Clone)]
pub struct SlowQueryLog {
    threshold_micros: u64,
    capacity: usize,
    entries: VecDeque<SlowQueryEntry>,
    seen: u64,
    dropped: u64,
    next_seq: u64,
}

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self::new(1_000, 128)
    }
}

impl SlowQueryLog {
    /// A log admitting queries of at least `threshold_micros`, retaining
    /// the most recent `capacity` of them (capacity 0 is clamped to 1).
    pub fn new(threshold_micros: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_micros,
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            seen: 0,
            dropped: 0,
            next_seq: 0,
        }
    }

    /// The admission threshold in microseconds.
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros
    }

    /// Offer one query observation; returns whether it was admitted.
    pub fn observe(
        &mut self,
        query: &str,
        backend: &str,
        duration_micros: u64,
        rows: usize,
        accesses: StatsSnapshot,
    ) -> bool {
        self.observe_traced(query, backend, duration_micros, rows, accesses, None)
    }

    /// [`SlowQueryLog::observe`] carrying the distributed trace id the
    /// query ran under, if any.
    pub fn observe_traced(
        &mut self,
        query: &str,
        backend: &str,
        duration_micros: u64,
        rows: usize,
        accesses: StatsSnapshot,
        trace_id: Option<u128>,
    ) -> bool {
        self.seen += 1;
        if duration_micros < self.threshold_micros {
            return false;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(SlowQueryEntry {
            query: query.to_string(),
            backend: backend.to_string(),
            duration_micros,
            rows,
            accesses,
            seq: self.next_seq,
            trace_id,
        });
        self.next_seq += 1;
        true
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &SlowQueryEntry> {
        self.entries.iter()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total queries offered (admitted or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Admitted entries evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Human-readable dump: a header line plus one line per entry,
    /// slowest first.
    pub fn render(&self) -> String {
        let mut out = format!(
            "slow-query log: {} retained (threshold {}us, {} seen, {} evicted)\n",
            self.entries.len(),
            self.threshold_micros,
            self.seen,
            self.dropped
        );
        let mut sorted: Vec<&SlowQueryEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| std::cmp::Reverse(e.duration_micros));
        for e in sorted {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Serialize retained entries as JSONL, one object per line, oldest
    /// first (hand-rendered; no JSON library on this path).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let a = &e.accesses;
            let trace = match e.trace_id {
                Some(t) => format!("\"{t:032x}\""),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"seq\":{},\"query\":\"{}\",\"backend\":\"{}\",\"micros\":{},\"rows\":{},\
                 \"trace\":{trace},\
                 \"accesses\":{{\"nodes\":{},\"edges\":{},\"triples\":{},\"rows\":{},\
                 \"records\":{},\"keyed\":{},\"scans\":{},\"bytes\":{}}}}}\n",
                e.seq,
                escape(&e.query),
                escape(&e.backend),
                e.duration_micros,
                e.rows,
                a.node_reads,
                a.edge_reads,
                a.triple_reads,
                a.row_reads,
                a.record_reads,
                a.keyed_lookups,
                a.scans,
                a.bytes_deserialized
            ));
        }
        out
    }

    /// [`SlowQueryLog::to_jsonl`] bounded to at most `max_bytes` of
    /// output: whole lines only, and when the full dump would exceed the
    /// cap the *newest* entries win (the old ones already scrolled out of
    /// operational interest). `max_bytes` of 0 disables the cap.
    pub fn to_jsonl_capped(&self, max_bytes: usize) -> String {
        let full = self.to_jsonl();
        if max_bytes == 0 || full.len() <= max_bytes {
            return full;
        }
        let mut kept: Vec<&str> = Vec::new();
        let mut size = 0usize;
        for line in full.lines().rev() {
            let cost = line.len() + 1;
            if size + cost > max_bytes {
                break;
            }
            size += cost;
            kept.push(line);
        }
        kept.reverse();
        let mut out = String::with_capacity(size);
        for line in kept {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Default byte cap for slow-log JSONL dumps (1 MiB) — see
/// [`SlowQueryLog::to_jsonl_capped`].
pub const DEFAULT_JSONL_CAP: usize = 1 << 20;

/// Latency-histogram bucket bounds in microseconds (1us .. 1s).
const LATENCY_BOUNDS: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// The per-query observability front end: spans + metrics + slow log.
///
/// Every observed query produces one [`SpanKind::Query`] span (retrieve
/// them with [`QueryObserver::take_trace`]), bumps
/// `pql_queries_total{backend=…}` and the shared
/// `pql_query_latency_micros` histogram in the registry, adds its store
/// accesses to `pql_store_reads_total`/`pql_keyed_lookups_total`/
/// `pql_scans_total`, and is offered to the [`SlowQueryLog`].
#[derive(Debug)]
pub struct QueryObserver {
    /// The metrics registry the observer publishes into (shareable with
    /// other telemetry producers; render with
    /// [`MetricsRegistry::render_prometheus`]).
    pub registry: Arc<MetricsRegistry>,
    /// The slow-query ring buffer.
    pub slowlog: SlowQueryLog,
    spans: Vec<Span>,
    next_span: u64,
}

impl Default for QueryObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryObserver {
    /// An observer with its own registry and a default slow-query log
    /// (1ms threshold, 128 entries).
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// An observer publishing into an existing registry.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        QueryObserver {
            registry,
            slowlog: SlowQueryLog::default(),
            spans: Vec::new(),
            next_span: 0,
        }
    }

    /// Replace the slow-query log configuration (builder-style).
    pub fn with_slowlog(mut self, threshold_micros: u64, capacity: usize) -> Self {
        self.slowlog = SlowQueryLog::new(threshold_micros, capacity);
        self
    }

    /// Record one completed query evaluation. This is the low-level entry
    /// point behind [`QueryObserver::eval_observed`] /
    /// [`QueryObserver::eval_store_observed`]; it is public so callers
    /// with their own evaluation path can still feed the same telemetry.
    pub fn record(
        &mut self,
        query: &str,
        backend: &str,
        duration_micros: u64,
        rows: usize,
        accesses: StatsSnapshot,
    ) {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.record_with_ids(query, backend, duration_micros, rows, accesses, id, None);
    }

    /// [`QueryObserver::record`] with caller-supplied span identity and
    /// parentage, so a query span can join a larger trace (e.g. as a
    /// child of a server request span whose ids live in a different
    /// allocator). Returns a clone of the recorded span.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_ids(
        &mut self,
        query: &str,
        backend: &str,
        duration_micros: u64,
        rows: usize,
        accesses: StatsSnapshot,
        id: SpanId,
        parent: Option<SpanId>,
    ) -> Span {
        self.record_traced(
            query,
            backend,
            duration_micros,
            rows,
            accesses,
            id,
            parent,
            None,
        )
    }

    /// [`QueryObserver::record_with_ids`] also carrying the distributed
    /// trace id the query ran under, which is stamped onto any slow-log
    /// entry the observation produces.
    #[allow(clippy::too_many_arguments)]
    pub fn record_traced(
        &mut self,
        query: &str,
        backend: &str,
        duration_micros: u64,
        rows: usize,
        accesses: StatsSnapshot,
        id: SpanId,
        parent: Option<SpanId>,
        trace_id: Option<u128>,
    ) -> Span {
        let end = now_micros();
        let span = Span {
            id,
            parent,
            kind: SpanKind::Query,
            name: query.to_string(),
            exec: ExecId(0),
            node: None,
            start_micros: end.saturating_sub(duration_micros),
            end_micros: end,
            attrs: vec![
                ("backend".into(), backend.to_string()),
                ("rows".into(), rows.to_string()),
                ("accesses".into(), accesses.render()),
            ],
        };
        self.spans.push(span.clone());

        let labels = [("backend", backend)];
        self.registry
            .counter_with("pql_queries_total", "PQL queries evaluated", &labels)
            .inc();
        self.registry
            .histogram_with(
                "pql_query_latency_micros",
                "PQL query latency",
                LATENCY_BOUNDS,
                &labels,
            )
            .observe(duration_micros);
        let reads =
            self.registry
                .counter_with("pql_store_reads_total", "store element reads", &labels);
        reads.add(accesses.total_reads());
        self.registry
            .counter_with("pql_keyed_lookups_total", "index-served lookups", &labels)
            .add(accesses.keyed_lookups);
        self.registry
            .counter_with("pql_scans_total", "full scans", &labels)
            .add(accesses.scans);
        if self
            .slowlog
            .observe_traced(query, backend, duration_micros, rows, accesses, trace_id)
        {
            self.registry
                .counter_with("pql_slow_queries_total", "slow-log admissions", &labels)
                .inc();
        }
        span
    }

    /// Evaluate a query against the PQL engine with full observation
    /// (runs the analyzing executor, so per-operator stats feed the
    /// telemetry), returning the ordinary result.
    pub fn eval_observed(
        &mut self,
        engine: &PqlEngine,
        query: &Query,
    ) -> Result<QueryResult, PqlError> {
        let analysis = analyze(engine, query)?;
        self.record(
            &query.to_string(),
            "engine",
            analysis.total_micros,
            analysis.result.len(),
            analysis.total_accesses(),
        );
        Ok(analysis.result)
    }

    /// Evaluate a store-mappable query against a backend with full
    /// observation, returning its row count (see
    /// [`analyze_store`] for the supported query shapes).
    pub fn eval_store_observed(
        &mut self,
        store: &dyn ProvenanceStore,
        backend: &str,
        query: &Query,
    ) -> Result<usize, PqlError> {
        let sa = analyze_store(store, query)?;
        self.record(
            &query.to_string(),
            backend,
            sa.total_micros,
            sa.rows,
            sa.total_accesses(),
        );
        Ok(sa.rows)
    }

    /// Number of query spans collected so far.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Take the collected query spans as a [`Trace`] (exportable with
    /// the `prov-telemetry` Chrome/JSONL exporters).
    pub fn take_trace(&mut self) -> Trace {
        let mut spans = std::mem::take(&mut self.spans);
        spans.sort_by_key(|s| (s.start_micros, s.id));
        Trace { spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use prov_core::capture::{CaptureLevel, ProvenanceCapture};
    use prov_core::{Artifact, RetrospectiveProvenance};
    use prov_store::GraphStore;
    use wf_engine::synth::figure1_workflow;
    use wf_engine::{standard_registry, Executor};

    fn fixture() -> (PqlEngine, RetrospectiveProvenance, Artifact) {
        let (wf, nodes) = figure1_workflow(1);
        let exec = Executor::new(standard_registry());
        let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
        let r = exec.run_observed(&wf, &mut cap).unwrap();
        let retro = cap.take(r.exec).unwrap();
        let hist = retro.produced(nodes.save_hist, "file").unwrap().clone();
        let mut e = PqlEngine::new();
        e.ingest(&retro);
        (e, retro, hist)
    }

    #[test]
    fn slowlog_admits_by_threshold_and_evicts_in_order() {
        let mut log = SlowQueryLog::new(100, 2);
        assert!(!log.observe("q1", "engine", 50, 1, StatsSnapshot::default()));
        assert!(log.observe("q2", "engine", 150, 1, StatsSnapshot::default()));
        assert!(log.observe("q3", "engine", 250, 1, StatsSnapshot::default()));
        assert!(log.observe("q4", "engine", 350, 1, StatsSnapshot::default()));
        assert_eq!(log.len(), 2);
        assert_eq!(log.seen(), 4);
        assert_eq!(log.dropped(), 1);
        let kept: Vec<&str> = log.entries().map(|e| e.query.as_str()).collect();
        assert_eq!(kept, ["q3", "q4"], "oldest admitted entry evicted");
        // seq keeps counting across evictions.
        assert_eq!(log.entries().map(|e| e.seq).collect::<Vec<_>>(), [1, 2]);
        let dump = log.render();
        assert!(dump.contains("2 retained"));
        assert!(dump.contains("threshold 100us"));
        // Slowest first in the rendered dump.
        assert!(dump.find("#2").unwrap() < dump.find("#1").unwrap());
    }

    #[test]
    fn slowlog_jsonl_lines_parse_with_the_mini_reader() {
        let mut log = SlowQueryLog::new(0, 8);
        let snap = StatsSnapshot {
            node_reads: 3,
            scans: 1,
            ..Default::default()
        };
        log.observe("count runs where status = \"failed\"", "graph", 42, 0, snap);
        let jsonl = log.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let doc = prov_telemetry::parse_json(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(
            doc.get("query").unwrap().as_str(),
            Some("count runs where status = \"failed\"")
        );
        assert_eq!(doc.get("micros").unwrap().as_u64(), Some(42));
        let acc = doc.get("accesses").unwrap();
        assert_eq!(acc.get("nodes").unwrap().as_u64(), Some(3));
        assert_eq!(acc.get("scans").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn capped_jsonl_keeps_whole_newest_lines() {
        let mut log = SlowQueryLog::new(0, 32);
        for i in 0..10 {
            log.observe(&format!("count runs /* {i} */"), "engine", i, 0, {
                StatsSnapshot::default()
            });
        }
        let full = log.to_jsonl();
        assert_eq!(log.to_jsonl_capped(0), full, "0 disables the cap");
        assert_eq!(log.to_jsonl_capped(full.len()), full, "exact fit kept");
        let one_line = full.lines().next().unwrap().len() + 1;
        let capped = log.to_jsonl_capped(one_line * 3);
        assert!(capped.len() <= one_line * 3);
        let lines: Vec<&str> = capped.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            prov_telemetry::parse_json(line).expect("whole lines only");
        }
        // Newest entries win.
        assert!(lines.last().unwrap().contains("/* 9 */"));
        let tiny = log.to_jsonl_capped(3);
        assert!(tiny.is_empty(), "cap smaller than any line keeps nothing");
    }

    #[test]
    fn traced_slow_queries_carry_the_trace_id_into_the_jsonl() {
        let mut log = SlowQueryLog::new(0, 8);
        log.observe("count runs", "engine", 10, 1, StatsSnapshot::default());
        log.observe_traced(
            "count artifacts",
            "graph",
            20,
            1,
            StatsSnapshot::default(),
            Some(0xfeed),
        );
        let entries: Vec<_> = log.entries().collect();
        assert_eq!(entries[0].trace_id, None);
        assert_eq!(entries[1].trace_id, Some(0xfeed));
        assert!(entries[1]
            .render()
            .contains(&format!("trace={:032x}", 0xfeed_u128)));
        let jsonl = log.to_jsonl();
        let mut lines = jsonl.lines();
        let untraced = prov_telemetry::parse_json(lines.next().unwrap()).unwrap();
        assert_eq!(
            untraced.get("trace"),
            Some(&prov_telemetry::JsonValue::Null)
        );
        let traced = prov_telemetry::parse_json(lines.next().unwrap()).unwrap();
        assert_eq!(
            traced.get("trace").unwrap().as_str(),
            Some(format!("{:032x}", 0xfeed_u128).as_str())
        );
    }

    #[test]
    fn record_traced_stamps_the_slowlog_entry() {
        let mut obs = QueryObserver::new().with_slowlog(0, 4);
        obs.record_traced(
            "count runs",
            "engine",
            5,
            1,
            StatsSnapshot::default(),
            SpanId(1),
            None,
            Some(42),
        );
        assert_eq!(obs.slowlog.entries().next().unwrap().trace_id, Some(42));
    }

    #[test]
    fn record_with_ids_sets_identity_and_parent() {
        let mut obs = QueryObserver::new().with_slowlog(u64::MAX, 4);
        let span = obs.record_with_ids(
            "count runs",
            "engine",
            5,
            1,
            StatsSnapshot::default(),
            SpanId(77),
            Some(SpanId(70)),
        );
        assert_eq!(span.id, SpanId(77));
        assert_eq!(span.parent, Some(SpanId(70)));
        let trace = obs.take_trace();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0], span);
    }

    #[test]
    fn observer_emits_spans_metrics_and_slowlog_entries() {
        let (e, _, hist) = fixture();
        let mut obs = QueryObserver::new().with_slowlog(0, 16);
        let q = parse(&format!("lineage of artifact {}", hist.digest())).unwrap();
        let r = obs.eval_observed(&e, &q).unwrap();
        assert_eq!(r, e.eval_query(&q).unwrap(), "observation changes nothing");
        let q2 = parse("count runs").unwrap();
        obs.eval_observed(&e, &q2).unwrap();

        assert_eq!(obs.span_count(), 2);
        let trace = obs.take_trace();
        assert_eq!(trace.of_kind(SpanKind::Query).count(), 2);
        let span = trace
            .spans
            .iter()
            .find(|s| s.name.starts_with("lineage"))
            .unwrap();
        assert_eq!(span.attr("backend"), Some("engine"));
        assert!(span.attr("accesses").unwrap().contains("nodes="));

        let text = obs.registry.render_prometheus();
        assert!(text.contains("pql_queries_total{backend=\"engine\"} 2"));
        assert!(text.contains("pql_query_latency_micros_count{backend=\"engine\"} 2"));
        assert!(text.contains("pql_slow_queries_total{backend=\"engine\"} 2"));
        assert_eq!(obs.slowlog.len(), 2, "threshold 0 admits everything");
    }

    #[test]
    fn observer_covers_store_backends_with_labels() {
        let (_, retro, hist) = fixture();
        let mut store = GraphStore::new();
        store.ingest(&retro);
        let mut obs = QueryObserver::new().with_slowlog(u64::MAX, 4);
        let q = parse(&format!("lineage of artifact {}", hist.digest())).unwrap();
        let rows = obs.eval_store_observed(&store, "graph", &q).unwrap();
        assert_eq!(rows, store.lineage_runs(hist.hash).len());
        let text = obs.registry.render_prometheus();
        assert!(text.contains("pql_queries_total{backend=\"graph\"} 1"));
        assert!(obs.slowlog.is_empty(), "u64::MAX threshold admits nothing");
        assert_eq!(obs.slowlog.seen(), 1);
    }
}
