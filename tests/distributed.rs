//! Distributed capture, end to end: the multi-worker driver's per-site
//! report blobs must stitch — in any delivery order, with duplicates,
//! across worker counts — into a provenance record isomorphic to the
//! single-process reference, with stable happens-before edges; dropped
//! reports must surface as gaps, never as a fabricated order. The
//! stitched record must also be a first-class citizen downstream:
//! ingestible into every store backend and queryable from PQL, including
//! the `happens_before` reachability shape.

use provenance_workflows::prelude::*;
use provenance_workflows::provenance::stitch::{stitch_blobs, HbEdge};
use wf_engine::synth::{challenge_workflow, figure1_workflow};

/// The single-process reference signature for a workflow.
fn reference_signature(wf: &wf_model::Workflow) -> u64 {
    let exec = Executor::new(standard_registry());
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec.run_observed(wf, &mut cap).unwrap();
    graph_signature(&cap.take(result.exec).unwrap())
}

/// Deterministic Fisher–Yates driven by a splitmix-style LCG, so shuffle
/// orders are seeded and reproducible without a rand dependency.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

#[test]
fn stitched_graph_is_isomorphic_in_any_blob_order() {
    let wf = challenge_workflow(5, 2, 3);
    let want = reference_signature(&wf);
    let exec = Executor::new(standard_registry());

    for workers in [1usize, 2, 4, 7] {
        let dist = exec
            .run_distributed(&wf, DistribOptions::new(workers).with_trace_id(0xcafe))
            .unwrap();
        let blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();

        let mut reference_hb: Option<Vec<HbEdge>> = None;
        for seed in 0..6u64 {
            let mut order: Vec<&[u8]> = blobs.iter().map(Vec::as_slice).collect();
            shuffle(&mut order, seed);
            if seed % 2 == 0 {
                // Duplicate deliveries must be absorbed, not double-counted.
                order.push(order[0]);
                order.push(order[order.len() / 2]);
            }
            let s = stitch_blobs(order);
            assert!(
                s.is_complete(),
                "workers={workers} seed={seed} gaps: {:?}",
                s.gaps
            );
            assert_eq!(s.trace_id, Some(0xcafe));
            assert_eq!(
                graph_signature(s.retro().unwrap()),
                want,
                "workers={workers} seed={seed}: stitched graph must be isomorphic"
            );
            // Happens-before edges are exact: identical across orders.
            match &reference_hb {
                None => reference_hb = Some(s.hb_edges.clone()),
                Some(hb) => assert_eq!(
                    &s.hb_edges, hb,
                    "workers={workers} seed={seed}: hb edges must not depend on arrival order"
                ),
            }
        }
        if workers > 1 {
            assert!(
                !reference_hb.as_ref().unwrap().is_empty(),
                "multi-site runs must produce cross-site edges"
            );
        }
    }
}

#[test]
fn dropped_reports_surface_as_gaps_never_fabricated_order() {
    let wf = challenge_workflow(9, 2, 2);
    let exec = Executor::new(standard_registry());
    let dist = exec.run_distributed(&wf, DistribOptions::new(3)).unwrap();
    let blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();
    let full = stitch_blobs(blobs.iter().map(Vec::as_slice));
    assert!(full.is_complete());

    for dropped in 0..blobs.len() {
        let partial: Vec<&[u8]> = blobs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != dropped)
            .map(|(_, b)| b.as_slice())
            .collect();
        let s = stitch_blobs(partial);
        assert!(!s.is_complete(), "dropping blob {dropped} must be reported");
        assert!(!s.gaps.is_empty(), "dropping blob {dropped}: gap expected");
        // Whatever order survives is a subset of the truth: every partial
        // edge must correspond to a fully-stitched edge. A hole in the
        // record may erase an edge's module anchor (`None`) — that is an
        // honest "unknown", so it matches any anchor — but it must never
        // invent an ordering between sites, or between modules, that the
        // complete stitching does not contain.
        for e in &s.hb_edges {
            assert!(
                full.hb_edges.iter().any(|f| {
                    f.from_site == e.from_site
                        && f.to_site == e.to_site
                        && (e.from_node.is_none() || e.from_node == f.from_node)
                        && (e.to_node.is_none() || e.to_node == f.to_node)
                }),
                "dropping blob {dropped} fabricated edge {}",
                e.render()
            );
        }
    }
}

#[test]
fn corrupt_blobs_are_ignored_and_reported() {
    let (wf, _) = figure1_workflow(3);
    let exec = Executor::new(standard_registry());
    let dist = exec.run_distributed(&wf, DistribOptions::new(2)).unwrap();
    let mut blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();
    blobs.push(b"PRB1garbage".to_vec());
    blobs.push(Vec::new());
    let s = stitch_blobs(blobs.iter().map(Vec::as_slice));
    assert!(s
        .gaps
        .iter()
        .any(|g| g.contains("2 report blob(s) failed to decode")));
    // The good blobs still stitch into the full record.
    assert!(s.retro().is_some());
    assert_eq!(
        graph_signature(s.retro().unwrap()),
        reference_signature(&wf)
    );
}

#[test]
fn stitched_records_are_queryable_from_pql_and_stores() {
    let (wf, nodes) = figure1_workflow(11);
    let exec = Executor::new(standard_registry());
    let dist = exec.run_distributed(&wf, DistribOptions::new(3)).unwrap();
    let blobs: Vec<Vec<u8>> = dist.reports.iter().map(|r| r.encode()).collect();
    let s = stitch_blobs(blobs.iter().map(Vec::as_slice));
    let retro = s.retro().unwrap();

    // The stitched record lands in ordinary stores like any other run.
    let mut graph = GraphStore::new();
    graph.ingest(retro);
    let grid = retro.produced(nodes.load, "grid").unwrap().hash;
    assert_eq!(graph.generators(grid).len(), 1);

    // And PQL sees it — including the happens_before reachability shape.
    let mut pql = PqlEngine::new();
    pql.ingest(retro);
    assert_eq!(pql.eval("count runs").unwrap(), QueryResult::Count(8));
    let exec_id = retro.exec.0;
    let iso = nodes.iso.raw();
    let cone = pql
        .eval(&format!("happens_before of run {exec_id}/{iso}"))
        .unwrap();
    let QueryResult::Nodes(ref cone_nodes) = cone else {
        panic!("happens_before returns nodes");
    };
    assert!(!cone_nodes.is_empty(), "iso has causal predecessors");

    // The cone must match what the single-process reference yields for
    // the same query: stitching changed nothing about causality.
    let mut cap = ProvenanceCapture::new(CaptureLevel::Fine);
    let result = exec.run_observed(&wf, &mut cap).unwrap();
    let mut reference = cap.take(result.exec).unwrap();
    reference.exec = retro.exec; // align exec ids for textual query parity
    let mut ref_pql = PqlEngine::new();
    ref_pql.ingest(&reference);
    let ref_cone = ref_pql
        .eval(&format!("happens_before of run {exec_id}/{iso}"))
        .unwrap();
    assert_eq!(cone, ref_cone, "stitched causality cone matches reference");

    // happens_before composes with user filters conjunctively.
    let filtered = pql
        .eval(&format!(
            "happens_before of run {exec_id}/{iso} where module contains \"Load\""
        ))
        .unwrap();
    let QueryResult::Nodes(filtered) = filtered else {
        panic!("filtered happens_before returns nodes");
    };
    assert_eq!(filtered.len(), 1, "only the loader survives the filter");
}
