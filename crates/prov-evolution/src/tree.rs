//! The version tree: evolution provenance of a workflow specification.
//!
//! "VisTrails … has been designed to support provenance" (§2.2) by storing
//! not a set of workflows but a *tree of versions*, where each edge is an
//! edit action. Nothing is ever lost: exploratory dead ends stay as
//! branches, any version can be materialized by replaying its action path,
//! and the difference between versions is first-class.

use crate::action::Action;
use crate::diff::{diff_workflows, WorkflowDiff};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wf_model::{ModelError, Workflow, WorkflowId};

/// Milliseconds since the Unix epoch (commit timestamps).
fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Identifier of a version in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VersionId(pub u64);

impl std::fmt::Display for VersionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One version node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionNode {
    /// The version.
    pub id: VersionId,
    /// Parent version (`None` for the root).
    pub parent: Option<VersionId>,
    /// The action that transforms the parent into this version (`None`
    /// for the root).
    pub action: Option<Action>,
    /// Optional human tag ("final", "camera-ready run").
    pub tag: Option<String>,
    /// Who made the edit.
    pub author: String,
    /// When (ms since epoch).
    pub at_millis: u64,
}

/// The version tree of one workflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VersionTree {
    /// Identifier shared by every materialized version.
    pub workflow: WorkflowId,
    /// Name of the root (empty) version.
    pub base_name: String,
    nodes: BTreeMap<VersionId, VersionNode>,
    next: u64,
    /// Snapshot interval: a materialized snapshot is cached every
    /// `snapshot_every` levels of depth (0 = never).
    snapshot_every: usize,
    #[serde(skip)]
    snapshots: BTreeMap<VersionId, Workflow>,
}

impl VersionTree {
    /// A tree whose root is the empty workflow.
    pub fn new(workflow: WorkflowId, base_name: &str) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            VersionId(0),
            VersionNode {
                id: VersionId(0),
                parent: None,
                action: None,
                tag: None,
                author: "system".into(),
                at_millis: 0,
            },
        );
        Self {
            workflow,
            base_name: base_name.to_string(),
            nodes,
            next: 1,
            snapshot_every: 0,
            snapshots: BTreeMap::new(),
        }
    }

    /// Enable snapshot caching every `every` levels of depth.
    pub fn with_snapshots(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// The root version.
    pub fn root(&self) -> VersionId {
        VersionId(0)
    }

    /// Commit an action as a child of `parent`. Returns the new version.
    pub fn commit(
        &mut self,
        parent: VersionId,
        action: Action,
        author: &str,
    ) -> Result<VersionId, ModelError> {
        if !self.nodes.contains_key(&parent) {
            return Err(ModelError::Serde(format!("unknown version {parent}")));
        }
        let id = VersionId(self.next);
        self.next += 1;
        self.nodes.insert(
            id,
            VersionNode {
                id,
                parent: Some(parent),
                action: Some(action),
                tag: None,
                author: author.to_string(),
                at_millis: now_millis(),
            },
        );
        // Populate the snapshot cache at the configured interval.
        if self.snapshot_every > 0 && self.depth(id).is_multiple_of(self.snapshot_every) {
            if let Ok(wf) = self.materialize(id) {
                self.snapshots.insert(id, wf);
            }
        }
        Ok(id)
    }

    /// Commit a linear sequence of actions; returns the final version.
    pub fn commit_all(
        &mut self,
        parent: VersionId,
        actions: Vec<Action>,
        author: &str,
    ) -> Result<VersionId, ModelError> {
        let mut cur = parent;
        for a in actions {
            cur = self.commit(cur, a, author)?;
        }
        Ok(cur)
    }

    /// Tag a version.
    pub fn tag(&mut self, version: VersionId, tag: &str) -> Result<(), ModelError> {
        let node = self
            .nodes
            .get_mut(&version)
            .ok_or_else(|| ModelError::Serde(format!("unknown version {version}")))?;
        node.tag = Some(tag.to_string());
        Ok(())
    }

    /// Find a version by tag.
    pub fn find_tag(&self, tag: &str) -> Option<VersionId> {
        self.nodes
            .values()
            .find(|n| n.tag.as_deref() == Some(tag))
            .map(|n| n.id)
    }

    /// The version node.
    pub fn node(&self, version: VersionId) -> Option<&VersionNode> {
        self.nodes.get(&version)
    }

    /// Number of versions (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree trivial (root only)?
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Children of a version.
    pub fn children(&self, version: VersionId) -> Vec<VersionId> {
        self.nodes
            .values()
            .filter(|n| n.parent == Some(version))
            .map(|n| n.id)
            .collect()
    }

    /// Depth of a version (root = 0).
    pub fn depth(&self, version: VersionId) -> usize {
        self.path_from_root(version).len().saturating_sub(1)
    }

    /// The versions from the root to `version`, inclusive.
    pub fn path_from_root(&self, version: VersionId) -> Vec<VersionId> {
        let mut path = Vec::new();
        let mut cur = Some(version);
        while let Some(v) = cur {
            path.push(v);
            cur = self.nodes.get(&v).and_then(|n| n.parent);
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two versions.
    pub fn common_ancestor(&self, a: VersionId, b: VersionId) -> Option<VersionId> {
        let pa = self.path_from_root(a);
        let pb = self.path_from_root(b);
        pa.iter()
            .zip(pb.iter())
            .take_while(|(x, y)| x == y)
            .map(|(x, _)| *x)
            .last()
    }

    /// Materialize a version by replaying its action path from the root
    /// (or from the nearest cached snapshot at or below it).
    pub fn materialize(&self, version: VersionId) -> Result<Workflow, ModelError> {
        if !self.nodes.contains_key(&version) {
            return Err(ModelError::Serde(format!("unknown version {version}")));
        }
        let path = self.path_from_root(version);
        // Find the deepest snapshot on the path.
        let mut start_idx = 0;
        let mut wf = Workflow::new(self.workflow, &self.base_name);
        for (i, v) in path.iter().enumerate().rev() {
            if let Some(snap) = self.snapshots.get(v) {
                wf = snap.clone();
                start_idx = i + 1;
                break;
            }
        }
        for v in &path[start_idx..] {
            if let Some(action) = self.nodes[v].action.as_ref() {
                action.apply(&mut wf)?;
            }
        }
        Ok(wf)
    }

    /// Number of replayed actions a materialization of `version` would
    /// need (diagnostics for the snapshot experiment).
    pub fn replay_cost(&self, version: VersionId) -> usize {
        let path = self.path_from_root(version);
        for (i, v) in path.iter().enumerate().rev() {
            if self.snapshots.contains_key(v) {
                return path.len() - 1 - i;
            }
        }
        path.len().saturating_sub(1)
    }

    /// Structural diff between two versions.
    pub fn diff(&self, a: VersionId, b: VersionId) -> Result<WorkflowDiff, ModelError> {
        Ok(diff_workflows(&self.materialize(a)?, &self.materialize(b)?))
    }

    /// Import an existing workflow as a child of `parent`: one action per
    /// node, connection, and parameter. Returns the resulting version.
    pub fn import_workflow(
        &mut self,
        parent: VersionId,
        wf: &Workflow,
        author: &str,
    ) -> Result<VersionId, ModelError> {
        let mut actions = Vec::new();
        for node in wf.nodes.values() {
            let mut bare = node.clone();
            bare.params = BTreeMap::new();
            actions.push(Action::AddNode { node: bare });
            for (k, v) in &node.params {
                actions.push(Action::SetParam {
                    node: node.id,
                    name: k.clone(),
                    new: Some(v.clone()),
                    old: None,
                });
            }
        }
        for conn in wf.conns.values() {
            actions.push(Action::AddConnection { conn: conn.clone() });
        }
        if wf.name != self.base_name {
            actions.push(Action::Rename {
                new: wf.name.clone(),
                old: self.base_name.clone(),
            });
        }
        self.commit_all(parent, actions, author)
    }

    /// Render the tree as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_rec(self.root(), 0, &mut out);
        out
    }

    fn render_rec(&self, v: VersionId, depth: usize, out: &mut String) {
        let node = &self.nodes[&v];
        let desc = node
            .action
            .as_ref()
            .map(|a| a.describe())
            .unwrap_or_else(|| "(root)".into());
        let tag = node
            .tag
            .as_ref()
            .map(|t| format!(" [{t}]"))
            .unwrap_or_default();
        out.push_str(&format!("{}{v}{tag}: {desc}\n", "  ".repeat(depth)));
        for c in self.children(v) {
            self.render_rec(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::workflow::Node;
    use wf_model::{NodeId, ParamValue};

    fn add_node_action(id: u64, module: &str) -> Action {
        Action::AddNode {
            node: Node {
                id: NodeId(id),
                module: module.to_string(),
                version: 1,
                label: module.to_string(),
                params: BTreeMap::new(),
            },
        }
    }

    fn linear_tree(n: usize) -> (VersionTree, Vec<VersionId>) {
        let mut t = VersionTree::new(WorkflowId(1), "evolving");
        let mut versions = vec![t.root()];
        let mut cur = t.root();
        for i in 0..n {
            cur = t
                .commit(cur, add_node_action(i as u64, "Busy"), "susan")
                .unwrap();
            versions.push(cur);
        }
        (t, versions)
    }

    #[test]
    fn materialize_replays_history() {
        let (t, versions) = linear_tree(5);
        let wf = t.materialize(versions[5]).unwrap();
        assert_eq!(wf.node_count(), 5);
        let wf2 = t.materialize(versions[2]).unwrap();
        assert_eq!(wf2.node_count(), 2);
        let root = t.materialize(t.root()).unwrap();
        assert_eq!(root.node_count(), 0);
    }

    #[test]
    fn branching_preserves_both_lines() {
        let (mut t, versions) = linear_tree(2);
        // Branch from version 1 with a different module.
        let branch = t
            .commit(versions[1], add_node_action(10, "Histogram"), "juliana")
            .unwrap();
        let main = t.materialize(versions[2]).unwrap();
        let side = t.materialize(branch).unwrap();
        assert_eq!(main.node_count(), 2);
        assert_eq!(side.node_count(), 2);
        assert!(side.nodes.values().any(|n| n.module == "Histogram"));
        assert!(!main.nodes.values().any(|n| n.module == "Histogram"));
        assert_eq!(t.children(versions[1]).len(), 2);
    }

    #[test]
    fn common_ancestor_found() {
        let (mut t, versions) = linear_tree(3);
        let branch = t
            .commit(versions[1], add_node_action(20, "X"), "a")
            .unwrap();
        assert_eq!(t.common_ancestor(versions[3], branch), Some(versions[1]));
        assert_eq!(
            t.common_ancestor(versions[3], versions[2]),
            Some(versions[2])
        );
        assert_eq!(t.common_ancestor(t.root(), branch), Some(t.root()));
    }

    #[test]
    fn tags_resolve() {
        let (mut t, versions) = linear_tree(2);
        t.tag(versions[2], "camera-ready").unwrap();
        assert_eq!(t.find_tag("camera-ready"), Some(versions[2]));
        assert_eq!(t.find_tag("nope"), None);
        assert!(t.tag(VersionId(99), "x").is_err());
    }

    #[test]
    fn snapshots_reduce_replay_cost() {
        let mut t = VersionTree::new(WorkflowId(1), "snap").with_snapshots(4);
        let mut cur = t.root();
        for i in 0..10 {
            cur = t.commit(cur, add_node_action(i, "Busy"), "s").unwrap();
        }
        // Depth 10 with snapshots at 4 and 8: replay cost 2 from v8.
        assert_eq!(t.replay_cost(cur), 2);
        let wf = t.materialize(cur).unwrap();
        assert_eq!(wf.node_count(), 10);
        // Without snapshots the cost is the full depth.
        let (t2, versions) = linear_tree(10);
        assert_eq!(t2.replay_cost(versions[10]), 10);
    }

    #[test]
    fn snapshot_and_replay_materializations_agree() {
        let mut with = VersionTree::new(WorkflowId(1), "snap").with_snapshots(3);
        let mut without = VersionTree::new(WorkflowId(1), "snap");
        let mut cw = with.root();
        let mut cwo = without.root();
        for i in 0..9 {
            let act = add_node_action(i, "Busy");
            cw = with.commit(cw, act.clone(), "s").unwrap();
            cwo = without.commit(cwo, act, "s").unwrap();
        }
        assert_eq!(
            with.materialize(cw).unwrap(),
            without.materialize(cwo).unwrap()
        );
    }

    #[test]
    fn import_workflow_roundtrips() {
        let mut b = wf_model::WorkflowBuilder::new(1, "imported");
        let a = b.add("LoadVolume");
        let h = b.add("Histogram");
        b.connect(a, "grid", h, "data");
        b.param(h, "bins", 16i64);
        let wf = b.build();
        let mut t = VersionTree::new(WorkflowId(1), "imported");
        let v = t.import_workflow(t.root(), &wf, "susan").unwrap();
        let back = t.materialize(v).unwrap();
        assert_eq!(back.node_count(), wf.node_count());
        assert_eq!(back.conn_count(), wf.conn_count());
        assert_eq!(
            back.nodes
                .values()
                .find(|n| n.module == "Histogram")
                .unwrap()
                .params
                .get("bins"),
            Some(&ParamValue::Int(16))
        );
    }

    #[test]
    fn diff_between_versions() {
        let (mut t, versions) = linear_tree(2);
        let v3 = t
            .commit(
                versions[2],
                Action::SetParam {
                    node: NodeId(0),
                    name: "work".into(),
                    new: Some(ParamValue::Int(5)),
                    old: None,
                },
                "s",
            )
            .unwrap();
        let d = t.diff(versions[2], v3).unwrap();
        assert_eq!(d.param_changes.len(), 1);
        assert!(d.only_left.is_empty() && d.only_right.is_empty());
    }

    #[test]
    fn render_shows_tree_structure() {
        let (mut t, versions) = linear_tree(2);
        t.commit(versions[1], add_node_action(9, "X"), "a").unwrap();
        t.tag(versions[2], "tip").unwrap();
        let s = t.render();
        assert!(s.contains("(root)"));
        assert!(s.contains("[tip]"));
        assert!(s.contains("add n9 (X@1)"));
    }

    #[test]
    fn unknown_versions_error() {
        let (mut t, _) = linear_tree(1);
        assert!(t.materialize(VersionId(99)).is_err());
        assert!(t
            .commit(VersionId(99), add_node_action(0, "X"), "a")
            .is_err());
    }
}
