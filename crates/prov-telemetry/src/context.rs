//! Distributed trace context: a dependency-free W3C `traceparent` codec.
//!
//! A [`TraceContext`] is what crosses a process boundary: a 128-bit trace
//! id naming the whole causal story, the 64-bit span id of the sender
//! (the receiver's parent), and a sampled flag. It renders to and parses
//! from the W3C Trace Context `traceparent` header format:
//!
//! ```text
//! 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//! ^^ ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^ ^^^^^^^^^^^^^^^^ ^^
//! version  trace-id (32 lowercase hex) parent-id (16)  flags
//! ```
//!
//! Parsing is strict — wrong version, wrong field lengths, uppercase or
//! non-hex digits, and the all-zero ids the spec forbids are all
//! rejected as [`ContextError`]s, never panics. A server receiving a
//! malformed header is expected to *fall back to a fresh root context*
//! rather than fail the request: a broken tracing header must never
//! break the traffic it rides on.
//!
//! Ids are minted deterministically from a caller-supplied seed and
//! sequence number (SplitMix64 streams), so traced test traffic replays
//! the same ids run after run — the same reproducibility contract as the
//! engine's seeded retry jitter.

use std::fmt;

/// The version this codec renders (the only one it accepts).
pub const TRACEPARENT_VERSION: &str = "00";

/// A propagated trace context: who the caller is in the causal tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The 128-bit id shared by every span of the distributed trace
    /// (never zero).
    pub trace_id: u128,
    /// The sender's span id — the receiver's parent (never zero).
    pub span_id: u64,
    /// Did the caller decide this trace should be recorded?
    pub sampled: bool,
}

/// Why a `traceparent` header failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// The header does not have the `version-traceid-parentid-flags` shape.
    Malformed(String),
    /// The version field is not `00`.
    WrongVersion(String),
    /// A field has the right length but is not lowercase hex.
    BadHex(&'static str),
    /// The spec forbids all-zero trace and span ids.
    ZeroId(&'static str),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::Malformed(s) => write!(f, "malformed traceparent '{s}'"),
            ContextError::WrongVersion(v) => write!(f, "unsupported traceparent version '{v}'"),
            ContextError::BadHex(field) => write!(f, "traceparent field '{field}' is not hex"),
            ContextError::ZeroId(field) => write!(f, "traceparent {field} must not be zero"),
        }
    }
}

impl std::error::Error for ContextError {}

/// One SplitMix64 step (kept local so the codec has zero dependencies).
fn splitmix(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

fn mix(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0xd1b5_4a32_d192_ed03);
    splitmix(&mut s);
    let out = s;
    if out == 0 {
        1
    } else {
        out
    }
}

impl TraceContext {
    /// Mint a fresh root context, sampled, with ids derived
    /// deterministically from `(seed, sequence)`.
    pub fn root(seed: u64, sequence: u64) -> TraceContext {
        let hi = mix(seed, sequence.wrapping_mul(2));
        let lo = mix(seed ^ 0xa076_1d64_78bd_642f, sequence.wrapping_mul(2) + 1);
        TraceContext {
            trace_id: (u128::from(hi) << 64) | u128::from(lo),
            span_id: mix(seed ^ 0xe703_7ed1_a0b4_28db, sequence),
            sampled: true,
        }
    }

    /// The same trace, re-parented under `span_id` — what a component
    /// sends downstream after opening its own span.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: if span_id == 0 { 1 } else { span_id },
            sampled: self.sampled,
        }
    }

    /// A sibling context for retry attempt `attempt` (1-based): same
    /// trace id, a fresh deterministic span id per attempt — so a retry
    /// storm reads as one causal story under one trace.
    pub fn for_attempt(&self, attempt: u32) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: mix(self.span_id, u64::from(attempt)),
            sampled: self.sampled,
        }
    }

    /// The trace id as its canonical 32-digit lowercase hex form.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// Render the `traceparent` header value.
    pub fn render(&self) -> String {
        format!(
            "{TRACEPARENT_VERSION}-{:032x}-{:016x}-{:02x}",
            self.trace_id,
            self.span_id,
            if self.sampled { 1 } else { 0 }
        )
    }

    /// Parse a `traceparent` header value (strict; see module docs).
    pub fn parse(header: &str) -> Result<TraceContext, ContextError> {
        let s = header.trim();
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 4 {
            return Err(ContextError::Malformed(s.to_string()));
        }
        let (version, trace_hex, span_hex, flags_hex) = (parts[0], parts[1], parts[2], parts[3]);
        if version.len() != 2
            || trace_hex.len() != 32
            || span_hex.len() != 16
            || flags_hex.len() != 2
        {
            return Err(ContextError::Malformed(s.to_string()));
        }
        if version != TRACEPARENT_VERSION {
            return Err(ContextError::WrongVersion(version.to_string()));
        }
        let trace_id =
            u128::from_str_radix(trace_hex, 16).map_err(|_| ContextError::BadHex("trace-id"))?;
        let span_id =
            u64::from_str_radix(span_hex, 16).map_err(|_| ContextError::BadHex("parent-id"))?;
        let flags =
            u8::from_str_radix(flags_hex, 16).map_err(|_| ContextError::BadHex("trace-flags"))?;
        // The spec's canonical form is lowercase; uppercase hex is a
        // malformed header, not an alternate spelling.
        if trace_hex.chars().any(|c| c.is_ascii_uppercase())
            || span_hex.chars().any(|c| c.is_ascii_uppercase())
            || flags_hex.chars().any(|c| c.is_ascii_uppercase())
        {
            return Err(ContextError::BadHex("uppercase"));
        }
        if trace_id == 0 {
            return Err(ContextError::ZeroId("trace-id"));
        }
        if span_id == 0 {
            return Err(ContextError::ZeroId("parent-id"));
        }
        Ok(TraceContext {
            trace_id,
            span_id,
            sampled: flags & 0x01 != 0,
        })
    }

    /// Parse a bare 32-digit hex trace id (the `/v1/trace/{id}` path
    /// segment form).
    pub fn parse_trace_id(hex: &str) -> Result<u128, ContextError> {
        let s = hex.trim();
        if s.len() != 32 || s.chars().any(|c| c.is_ascii_uppercase()) {
            return Err(ContextError::Malformed(s.to_string()));
        }
        let id = u128::from_str_radix(s, 16).map_err(|_| ContextError::BadHex("trace-id"))?;
        if id == 0 {
            return Err(ContextError::ZeroId("trace-id"));
        }
        Ok(id)
    }
}

/// Render the companion `tracestate` value carrying the attempt number:
/// `prov=attempt:N`.
pub fn render_tracestate_attempt(attempt: u32) -> String {
    format!("prov=attempt:{attempt}")
}

/// Extract the attempt number from a `tracestate` value, leniently: the
/// header is advisory, so anything unrecognised is simply `None`.
pub fn parse_tracestate_attempt(value: &str) -> Option<u32> {
    value.split(',').find_map(|entry| {
        let (key, rest) = entry.trim().split_once('=')?;
        if key.trim() != "prov" {
            return None;
        }
        rest.split(';').find_map(|field| {
            let (k, v) = field.trim().split_once(':')?;
            if k == "attempt" {
                v.parse().ok()
            } else {
                None
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let ctx = TraceContext {
            trace_id: 0x4bf9_2f35_77b3_4da6_a3ce_929d_0e0e_4736,
            span_id: 0x00f0_67aa_0ba9_02b7,
            sampled: true,
        };
        let header = ctx.render();
        assert_eq!(
            header,
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        );
        assert_eq!(TraceContext::parse(&header).unwrap(), ctx);
        let unsampled = TraceContext {
            sampled: false,
            ..ctx
        };
        assert!(unsampled.render().ends_with("-00"));
        assert_eq!(TraceContext::parse(&unsampled.render()).unwrap(), unsampled);
    }

    #[test]
    fn malformed_headers_are_errors_not_panics() {
        for bad in [
            "",
            "00",
            "00-abc-def-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
            "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
            "00-XBF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
        ] {
            assert!(TraceContext::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let header = "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        assert!(matches!(
            TraceContext::parse(header),
            Err(ContextError::WrongVersion(_))
        ));
        let header = "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        assert!(TraceContext::parse(header).is_err());
    }

    #[test]
    fn minted_ids_are_deterministic_and_nonzero() {
        let a = TraceContext::root(7, 0);
        let b = TraceContext::root(7, 0);
        assert_eq!(a, b, "same seed and sequence mint the same context");
        assert_ne!(a.trace_id, TraceContext::root(7, 1).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(8, 0).trace_id);
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert!(a.sampled);
        let attempt2 = a.for_attempt(2);
        assert_eq!(attempt2.trace_id, a.trace_id, "retries share the trace");
        assert_ne!(attempt2.span_id, a.for_attempt(1).span_id);
    }

    #[test]
    fn tracestate_attempt_round_trips_and_parses_leniently() {
        assert_eq!(
            parse_tracestate_attempt(&render_tracestate_attempt(3)),
            Some(3)
        );
        assert_eq!(
            parse_tracestate_attempt("other=1,prov=attempt:2;x:y"),
            Some(2)
        );
        for garbage in ["", "prov=", "prov=attempt:", "prov=attempt:x", "a=b"] {
            assert_eq!(parse_tracestate_attempt(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn trace_id_hex_parses_back() {
        let ctx = TraceContext::root(42, 9);
        assert_eq!(
            TraceContext::parse_trace_id(&ctx.trace_id_hex()).unwrap(),
            ctx.trace_id
        );
        assert!(TraceContext::parse_trace_id("abc").is_err());
        assert!(TraceContext::parse_trace_id(&"0".repeat(32)).is_err());
    }
}
