//! The First Provenance Challenge, rebuilt: the fMRI atlas pipeline runs
//! once, its provenance is split across three simulated systems with
//! incompatible native representations (Taverna-like RDF, Kepler-like
//! event log, VisTrails-like spec+log), each is translated to OPM, the
//! accounts are integrated, and the challenge's nine queries are answered
//! over the merged graph.
//!
//! Run with: `cargo run --example provenance_challenge`

use provenance_workflows::prelude::*;

fn main() {
    let setup = run_challenge();

    println!("== challenge workflow ==");
    println!(
        "'{}': {} modules, {} connections",
        setup.workflow.name,
        setup.workflow.node_count(),
        setup.workflow.conn_count()
    );

    println!("== per-system accounts ==");
    for (name, g) in &setup.accounts {
        println!("  {name}: {}", g.summary());
    }

    println!("== integration ==");
    println!("  {}", setup.integration.summary());
    let validity = setup.integration.graph.check();
    println!(
        "  OPM validity: {}",
        if validity.is_empty() {
            "ok".to_string()
        } else {
            validity.join("; ")
        }
    );

    // How much of the full process can each system see alone?
    let full = setup
        .lineage_process_labels(&setup.integration.graph, &setup.atlas_graphic_label())
        .len();
    println!("== Q1 coverage: processes visible in the atlas graphic's lineage ==");
    for (name, count) in setup.q1_coverage_per_account() {
        println!("  {name} alone: {count}/{full}");
    }
    println!("  integrated:  {full}/{full}");

    println!("== the nine challenge queries (over the integrated graph) ==");
    let answers = setup.answer_queries();
    for a in &answers {
        println!(
            "  Q{}: {} -> {} result(s){}",
            a.id,
            a.question,
            a.count(),
            if a.answerable {
                ""
            } else {
                "  [NOT ANSWERABLE]"
            }
        );
        for item in a.items.iter().take(4) {
            println!("      {item}");
        }
        if a.count() > 4 {
            println!("      … and {} more", a.count() - 4);
        }
    }
    assert!(
        answers.iter().all(|a| a.answerable),
        "all nine queries must be answerable after integration"
    );

    // The integrated graph round-trips through OPM-JSON.
    let json = setup.integration.graph.to_json().expect("serialize");
    let back = OpmGraph::from_json(&json).expect("parse");
    assert_eq!(back.nodes().len(), setup.integration.graph.nodes().len());
    println!(
        "== integrated OPM graph serialized: {} KiB of OPM-JSON ==",
        json.len() / 1024
    );
}
