//! Parameter-space exploration (§2.3: "scalable exploration of large
//! parameter spaces").
//!
//! A sweep runs one workflow under the cartesian product of parameter
//! assignments. With provenance-based caching enabled, configurations that
//! share an upstream prefix recompute only the differing suffix — the
//! mechanism experiment E10 quantifies.

use crate::error::ExecError;
use crate::exec::{ExecutionResult, Executor};
use std::fmt;
use wf_model::{NodeId, ParamValue, Workflow};

/// One swept dimension: a (node, parameter) position and the values to try.
#[derive(Debug, Clone)]
pub struct SweepAxis {
    /// The node whose parameter is swept.
    pub node: NodeId,
    /// The parameter name.
    pub param: String,
    /// The values to try.
    pub values: Vec<ParamValue>,
}

impl SweepAxis {
    /// Construct an axis.
    pub fn new(node: NodeId, param: &str, values: Vec<ParamValue>) -> Self {
        Self {
            node,
            param: param.to_string(),
            values,
        }
    }
}

/// One point of a sweep: the assignment and the run it produced.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept assignments, one per axis, in axis order.
    pub assignment: Vec<(NodeId, String, ParamValue)>,
    /// The execution result at this point.
    pub result: ExecutionResult,
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (node, param, value)) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{node}.{param}={value}")?;
        }
        Ok(())
    }
}

/// Outcome of a whole sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// All points, in cartesian-product order (last axis fastest).
    pub points: Vec<SweepPoint>,
    /// Total module runs across all points.
    pub total_module_runs: usize,
    /// Module runs answered from cache.
    pub cached_module_runs: usize,
}

impl SweepResult {
    /// Fraction of module runs served from cache.
    pub fn cache_ratio(&self) -> f64 {
        if self.total_module_runs == 0 {
            0.0
        } else {
            self.cached_module_runs as f64 / self.total_module_runs as f64
        }
    }
}

/// Run the cartesian product of `axes` over `wf` with `executor`.
///
/// The workflow is cloned per configuration so the input specification is
/// never mutated (prospective provenance stays intact); each configuration's
/// provenance is the executor's ordinary event stream.
pub fn run_sweep(
    executor: &Executor,
    wf: &Workflow,
    axes: &[SweepAxis],
) -> Result<SweepResult, ExecError> {
    let mut points = Vec::new();
    let mut total = 0usize;
    let mut cached = 0usize;
    let mut indices = vec![0usize; axes.len()];
    loop {
        // Materialize this configuration.
        let mut config = wf.clone();
        let mut assignment = Vec::with_capacity(axes.len());
        for (axis, &i) in axes.iter().zip(indices.iter()) {
            let value = axis.values[i].clone();
            config.set_param(axis.node, &axis.param, value.clone())?;
            assignment.push((axis.node, axis.param.clone(), value));
        }
        let result = executor.run(&config)?;
        total += result.node_runs.len();
        cached += result.cache_hits();
        points.push(SweepPoint { assignment, result });

        // Odometer increment (last axis fastest).
        let mut k = axes.len();
        loop {
            if k == 0 {
                return Ok(SweepResult {
                    points,
                    total_module_runs: total,
                    cached_module_runs: cached,
                });
            }
            k -= 1;
            indices[k] += 1;
            if indices[k] < axes[k].values.len() {
                break;
            }
            indices[k] = 0;
        }
        if axes.is_empty() {
            // A zero-axis sweep is the single base configuration.
            return Ok(SweepResult {
                points,
                total_module_runs: total,
                cached_module_runs: cached,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdlib::standard_registry;
    use wf_model::WorkflowBuilder;

    /// LoadVolume -> Histogram -> PlotTable : sweeping downstream params
    /// must reuse the upstream work.
    fn pipeline() -> (Workflow, NodeId, NodeId) {
        let mut b = WorkflowBuilder::new(1, "sweep-me");
        let load = b.add("LoadVolume");
        let hist = b.add("Histogram");
        let plot = b.add("PlotTable");
        b.connect(load, "grid", hist, "data")
            .connect(hist, "table", plot, "table");
        (b.build(), load, hist)
    }

    #[test]
    fn sweep_enumerates_cartesian_product() {
        let (wf, _, hist) = pipeline();
        let exec = Executor::new(standard_registry());
        let axes = vec![SweepAxis::new(
            hist,
            "bins",
            vec![8i64.into(), 16i64.into(), 32i64.into()],
        )];
        let sweep = run_sweep(&exec, &wf, &axes).unwrap();
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.iter().all(|p| p.result.succeeded()));
    }

    #[test]
    fn two_axes_multiply() {
        let (wf, load, hist) = pipeline();
        let exec = Executor::new(standard_registry());
        let axes = vec![
            SweepAxis::new(load, "nx", vec![8i64.into(), 12i64.into()]),
            SweepAxis::new(hist, "bins", vec![4i64.into(), 8i64.into(), 16i64.into()]),
        ];
        let sweep = run_sweep(&exec, &wf, &axes).unwrap();
        assert_eq!(sweep.points.len(), 6);
        // Last axis fastest: first two points share the nx assignment.
        assert_eq!(
            sweep.points[0].assignment[0].2,
            sweep.points[1].assignment[0].2
        );
        assert_ne!(
            sweep.points[0].assignment[1].2,
            sweep.points[1].assignment[1].2
        );
    }

    #[test]
    fn caching_reuses_shared_prefix() {
        let (wf, _, hist) = pipeline();
        let exec = Executor::new(standard_registry()).with_cache(1024);
        let axes = vec![SweepAxis::new(
            hist,
            "bins",
            vec![8i64.into(), 16i64.into(), 32i64.into(), 64i64.into()],
        )];
        let sweep = run_sweep(&exec, &wf, &axes).unwrap();
        // LoadVolume is identical in all 4 configs: 3 of its 4 runs hit.
        assert_eq!(sweep.cached_module_runs, 3);
        assert_eq!(sweep.total_module_runs, 12);
        assert!((sweep.cache_ratio() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn no_cache_means_no_hits() {
        let (wf, _, hist) = pipeline();
        let exec = Executor::new(standard_registry());
        let axes = vec![SweepAxis::new(
            hist,
            "bins",
            vec![8i64.into(), 16i64.into()],
        )];
        let sweep = run_sweep(&exec, &wf, &axes).unwrap();
        assert_eq!(sweep.cached_module_runs, 0);
    }

    #[test]
    fn empty_axes_runs_base_config_once() {
        let (wf, ..) = pipeline();
        let exec = Executor::new(standard_registry());
        let sweep = run_sweep(&exec, &wf, &[]).unwrap();
        assert_eq!(sweep.points.len(), 1);
    }

    #[test]
    fn sweep_point_display_names_assignments() {
        let (wf, _, hist) = pipeline();
        let exec = Executor::new(standard_registry());
        let axes = vec![SweepAxis::new(hist, "bins", vec![8i64.into()])];
        let sweep = run_sweep(&exec, &wf, &axes).unwrap();
        let s = sweep.points[0].to_string();
        assert!(s.contains("bins=8"), "{s}");
    }
}
