//! Storage for telemetry spans, keyed by execution.
//!
//! Spans are the timing half of retrospective provenance: where the
//! graph stores record *what* depended on *what*, the span store keeps
//! *when* everything happened, at attempt/backoff/cache-lookup
//! granularity. Persistence reuses the JSONL span-log format from
//! `prov-telemetry`, so a store can be dumped to disk, shipped, and
//! re-ingested without a JSON library.

use prov_telemetry::{spans_from_jsonl_lossy, spans_jsonl, JsonlSkip, Span, SpanKind, Trace};
use std::collections::BTreeMap;
use wf_engine::ExecId;

/// An in-memory span store with JSONL persistence.
#[derive(Debug, Clone, Default)]
pub struct SpanStore {
    by_exec: BTreeMap<ExecId, Vec<Span>>,
}

impl SpanStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest every span of a trace (spans append to any already stored
    /// for the same execution).
    pub fn ingest_trace(&mut self, trace: &Trace) {
        for span in &trace.spans {
            self.by_exec
                .entry(span.exec)
                .or_default()
                .push(span.clone());
        }
    }

    /// Ingest a single span.
    pub fn ingest(&mut self, span: Span) {
        self.by_exec.entry(span.exec).or_default().push(span);
    }

    /// Executions with stored spans, in id order.
    pub fn execs(&self) -> impl Iterator<Item = ExecId> + '_ {
        self.by_exec.keys().copied()
    }

    /// Spans of one execution, in stored order.
    pub fn spans_of(&self, exec: ExecId) -> &[Span] {
        self.by_exec.get(&exec).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All spans of one execution as a [`Trace`] (cloned).
    pub fn trace_of(&self, exec: ExecId) -> Trace {
        Trace {
            spans: self.spans_of(exec).to_vec(),
        }
    }

    /// Total stored spans across all executions.
    pub fn len(&self) -> usize {
        self.by_exec.values().map(Vec::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.by_exec.is_empty()
    }

    /// Drop one execution's spans, returning how many were removed.
    pub fn evict(&mut self, exec: ExecId) -> usize {
        self.by_exec.remove(&exec).map(|v| v.len()).unwrap_or(0)
    }

    /// The run (root) span of an execution, if stored.
    pub fn run_span(&self, exec: ExecId) -> Option<&Span> {
        self.spans_of(exec).iter().find(|s| s.kind == SpanKind::Run)
    }

    /// Serialize every stored span as a JSONL log (executions in id
    /// order, spans in stored order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for spans in self.by_exec.values() {
            out.push_str(&spans_jsonl(&Trace {
                spans: spans.clone(),
            }));
        }
        out
    }

    /// Rebuild a store from a JSONL log produced by [`SpanStore::to_jsonl`]
    /// (or any `prov-telemetry` span log).
    ///
    /// The load is lenient: a malformed line (torn write, truncated tail,
    /// hand-edited log) is skipped and reported rather than failing the
    /// whole load, so one bad record never costs every other span in the
    /// file. Callers that need strictness can assert the skip list is
    /// empty.
    pub fn from_jsonl(input: &str) -> (Self, Vec<JsonlSkip>) {
        let (trace, skipped) = spans_from_jsonl_lossy(input);
        let mut store = Self::new();
        store.ingest_trace(&trace);
        (store, skipped)
    }

    /// Rough in-memory footprint in bytes (for capacity experiments).
    pub fn approx_bytes(&self) -> usize {
        self.by_exec
            .values()
            .flatten()
            .map(|s| {
                std::mem::size_of::<Span>()
                    + s.name.len()
                    + s.attrs
                        .iter()
                        .map(|(k, v)| k.len() + v.len())
                        .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_telemetry::SpanCollector;
    use wf_engine::{standard_registry, Executor};
    use wf_model::WorkflowBuilder;

    fn collected() -> (Trace, ExecId, ExecId) {
        let mut b = WorkflowBuilder::new(1, "store-demo");
        let a = b.add("ConstInt");
        b.param(a, "value", 3i64);
        let c = b.add("Identity");
        b.connect(a, "out", c, "in");
        let wf = b.build();
        let exec = Executor::new(standard_registry());
        let mut col = SpanCollector::new();
        let r1 = exec.run_observed(&wf, &mut col).unwrap();
        let r2 = exec.run_observed(&wf, &mut col).unwrap();
        (col.take_trace(), r1.exec, r2.exec)
    }

    #[test]
    fn ingests_and_partitions_by_execution() {
        let (trace, e1, e2) = collected();
        let mut store = SpanStore::new();
        store.ingest_trace(&trace);
        assert_eq!(store.len(), trace.len());
        assert_eq!(store.execs().count(), 2);
        assert_eq!(store.spans_of(e1).len(), 5, "run + 2 modules + 2 attempts");
        assert!(store.run_span(e1).is_some());
        assert!(store.run_span(e2).is_some());
        assert!(store.approx_bytes() > 0);
        assert_eq!(store.evict(e1), 5);
        assert!(store.run_span(e1).is_none());
    }

    #[test]
    fn jsonl_round_trip_preserves_every_span() {
        let (trace, e1, _) = collected();
        let mut store = SpanStore::new();
        store.ingest_trace(&trace);
        let log = store.to_jsonl();
        let (back, skipped) = SpanStore::from_jsonl(&log);
        assert!(skipped.is_empty());
        assert_eq!(back.len(), store.len());
        assert_eq!(back.spans_of(e1), store.spans_of(e1));
    }

    #[test]
    fn corrupted_line_mid_file_is_skipped_and_reported() {
        let (trace, _, _) = collected();
        let mut store = SpanStore::new();
        store.ingest_trace(&trace);
        let mut lines: Vec<String> = store.to_jsonl().lines().map(String::from).collect();
        let mid = lines.len() / 2;
        lines[mid] = "{\"span\":7,\"kind\":\"module\",\"na".into();
        let (back, skipped) = SpanStore::from_jsonl(&lines.join("\n"));
        assert_eq!(back.len(), store.len() - 1, "every intact span survives");
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].line, mid + 1);
        assert!(!skipped[0].reason.is_empty());
    }

    #[test]
    fn every_corrupt_line_is_reported_with_its_own_position() {
        let (trace, _, _) = collected();
        let mut store = SpanStore::new();
        store.ingest_trace(&trace);
        let mut lines: Vec<String> = store.to_jsonl().lines().map(String::from).collect();
        let n = lines.len();
        // Three distinct failure modes: truncation, non-JSON garbage, and
        // valid JSON that is not a span record.
        lines[0] = "{\"span\":1,\"kind\":".into();
        lines[n / 2] = "not json at all".into();
        lines[n - 1] = "{\"unrelated\": true}".into();
        let (back, skipped) = SpanStore::from_jsonl(&lines.join("\n"));
        assert_eq!(back.len(), n - 3, "all intact spans survive three losses");
        assert_eq!(skipped.len(), 3, "one report per corrupt line");
        assert_eq!(
            skipped.iter().map(|s| s.line).collect::<Vec<_>>(),
            [1, n / 2 + 1, n],
            "reports carry 1-based line numbers in file order"
        );
        assert!(skipped.iter().all(|s| !s.reason.is_empty()));
    }

    #[test]
    fn empty_and_blank_input_yield_an_empty_store_without_reports() {
        for input in ["", "\n", "\n\n\n"] {
            let (store, skipped) = SpanStore::from_jsonl(input);
            assert!(store.is_empty(), "input {input:?} produced spans");
            assert_eq!(store.len(), 0);
            assert_eq!(store.execs().count(), 0);
            assert!(
                skipped.is_empty(),
                "blank lines are not corruption: {skipped:?}"
            );
        }
    }

    #[test]
    fn stored_spans_remain_profilable_as_a_trace() {
        let (trace, e1, _) = collected();
        let mut store = SpanStore::new();
        store.ingest_trace(&trace);
        let t = store.trace_of(e1);
        assert_eq!(t.run_span(e1).map(|s| s.kind), Some(SpanKind::Run));
        // The re-materialized trace still exports cleanly.
        let json = prov_telemetry::chrome_trace_json(&t);
        assert_eq!(
            prov_telemetry::validate_chrome_trace(&json).unwrap(),
            t.len()
        );
    }
}
