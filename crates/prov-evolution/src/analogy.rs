//! Refinement by analogy — Figure 2 of the tutorial (Scheidegger et al.,
//! InfoVis'07).
//!
//! "The user chooses a pair of data products to serve as an analogy
//! template … then chooses a set of other workflows to apply the same
//! change automatically. … Note that the surrounding modules do not match
//! exactly: the system identifies the most likely match."
//!
//! The pipeline:
//!
//! 1. [`crate::diff::diff_workflows`] computes the change
//!    `a → b` (the analogy template);
//! 2. [`match_workflows`] finds the most likely embedding of `a`'s modules
//!    inside the target `c`, by iterative label-and-neighbourhood scoring
//!    (a similarity-flooding style fixpoint) followed by greedy injective
//!    assignment;
//! 3. [`apply_by_analogy`] transplants the change through that mapping —
//!    deleting mapped deletions, re-applying parameter changes, grafting
//!    added nodes, and rewiring connections — and reports what could not
//!    be carried over.

use crate::diff::diff_workflows;
use std::collections::{BTreeMap, BTreeSet};
use wf_model::{Endpoint, ModelError, NodeId, Workflow};

/// A (partial, injective) mapping from nodes of one workflow to nodes of
/// another, with per-pair confidence scores in [0, 1].
#[derive(Debug, Clone, Default)]
pub struct NodeMatching {
    /// source node → (target node, score).
    pub pairs: BTreeMap<NodeId, (NodeId, f64)>,
}

impl NodeMatching {
    /// The matched target of a source node.
    pub fn target(&self, source: NodeId) -> Option<NodeId> {
        self.pairs.get(&source).map(|(t, _)| *t)
    }

    /// Mean score over matched pairs (0 when nothing matched).
    pub fn mean_score(&self) -> f64 {
        if self.pairs.is_empty() {
            0.0
        } else {
            self.pairs.values().map(|(_, s)| s).sum::<f64>() / self.pairs.len() as f64
        }
    }
}

fn label_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    // Dice coefficient over character bigrams: robust to small renames.
    let grams = |s: &str| -> BTreeSet<(char, char)> {
        let chars: Vec<char> = s.to_lowercase().chars().collect();
        chars.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let (ga, gb) = (grams(a), grams(b));
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    2.0 * inter / (ga.len() + gb.len()) as f64
}

/// Find the most likely embedding of `source`'s nodes in `target`.
///
/// Scores start from module/label similarity and are refined for
/// `iterations` rounds by mixing in the best-matching neighbours' scores
/// (similarity flooding); the final injective assignment is greedy by
/// descending score, cut off at `threshold`.
pub fn match_workflows(source: &Workflow, target: &Workflow) -> NodeMatching {
    match_workflows_with(source, target, 3, 0.3)
}

/// [`match_workflows`] with explicit refinement rounds and score threshold.
pub fn match_workflows_with(
    source: &Workflow,
    target: &Workflow,
    iterations: usize,
    threshold: f64,
) -> NodeMatching {
    let s_ids: Vec<NodeId> = source.nodes.keys().copied().collect();
    let t_ids: Vec<NodeId> = target.nodes.keys().copied().collect();
    if s_ids.is_empty() || t_ids.is_empty() {
        return NodeMatching::default();
    }

    // Base similarity: module identity dominates; labels refine.
    let base = |sa: NodeId, ta: NodeId| -> f64 {
        let ns = &source.nodes[&sa];
        let nt = &target.nodes[&ta];
        let module = if ns.module == nt.module {
            if ns.version == nt.version {
                1.0
            } else {
                0.85
            }
        } else {
            0.0
        };
        0.75 * module + 0.25 * label_similarity(&ns.label, &nt.label)
    };

    let mut score: Vec<Vec<f64>> = s_ids
        .iter()
        .map(|&sa| t_ids.iter().map(|&ta| base(sa, ta)).collect())
        .collect();

    // Neighbourhoods in both directions.
    let neighbours = |wf: &Workflow, n: NodeId| -> (Vec<NodeId>, Vec<NodeId>) {
        let preds = wf.inputs_of(n).map(|c| c.from.node).collect();
        let succs = wf.outputs_of(n).map(|c| c.to.node).collect();
        (preds, succs)
    };
    let s_nbrs: Vec<(Vec<NodeId>, Vec<NodeId>)> =
        s_ids.iter().map(|&n| neighbours(source, n)).collect();
    let t_nbrs: Vec<(Vec<NodeId>, Vec<NodeId>)> =
        t_ids.iter().map(|&n| neighbours(target, n)).collect();
    let s_index: BTreeMap<NodeId, usize> = s_ids.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let t_index: BTreeMap<NodeId, usize> = t_ids.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    for _ in 0..iterations {
        let mut next = score.clone();
        for (i, _) in s_ids.iter().enumerate() {
            for (j, _) in t_ids.iter().enumerate() {
                let side = |s_side: &[NodeId], t_side: &[NodeId]| -> f64 {
                    if s_side.is_empty() && t_side.is_empty() {
                        // Both are boundaries on this side: structural
                        // agreement, contribute the current score.
                        return score[i][j];
                    }
                    if s_side.is_empty() || t_side.is_empty() {
                        // One-sided boundary: mild structural disagreement.
                        return 0.5 * score[i][j];
                    }
                    // Average over source neighbours of their best target
                    // counterpart.
                    s_side
                        .iter()
                        .map(|sn| {
                            t_side
                                .iter()
                                .map(|tn| score[s_index[sn]][t_index[tn]])
                                .fold(0.0f64, f64::max)
                        })
                        .sum::<f64>()
                        / s_side.len() as f64
                };
                let pred_sim = side(&s_nbrs[i].0, &t_nbrs[j].0);
                let succ_sim = side(&s_nbrs[i].1, &t_nbrs[j].1);
                next[i][j] = 0.5 * score[i][j] + 0.25 * pred_sim + 0.25 * succ_sim;
            }
        }
        score = next;
    }

    // Base-compatibility floor: never match nodes of entirely different
    // modules just because their neighbourhoods rhyme.
    for (i, &sa) in s_ids.iter().enumerate() {
        for (j, &ta) in t_ids.iter().enumerate() {
            if base(sa, ta) == 0.0 {
                score[i][j] = 0.0;
            }
        }
    }

    // Greedy injective assignment by descending score.
    let mut triples: Vec<(f64, usize, usize)> = Vec::new();
    for (i, row) in score.iter().enumerate() {
        for (j, &s) in row.iter().enumerate() {
            if s >= threshold {
                triples.push((s, i, j));
            }
        }
    }
    triples.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_s = vec![false; s_ids.len()];
    let mut used_t = vec![false; t_ids.len()];
    let mut pairs = BTreeMap::new();
    for (s, i, j) in triples {
        if !used_s[i] && !used_t[j] {
            used_s[i] = true;
            used_t[j] = true;
            pairs.insert(s_ids[i], (t_ids[j], s));
        }
    }
    NodeMatching { pairs }
}

/// The result of applying an analogy.
#[derive(Debug, Clone)]
pub struct AnalogyResult {
    /// The refined target workflow (`c` with the `a → b` change applied).
    pub workflow: Workflow,
    /// The matching used, with scores (the UI would display this as the
    /// orange/blue overlay of Figure 2).
    pub matching: NodeMatching,
    /// Source nodes of the template that found no counterpart in the
    /// target.
    pub unmatched: Vec<NodeId>,
    /// Changes that could not be transplanted, human-readable.
    pub skipped: Vec<String>,
    /// Count of elementary changes applied.
    pub applied: usize,
}

impl AnalogyResult {
    /// Did every elementary change transplant cleanly?
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Apply the change `a → b` to `c` by analogy (Figure 2).
pub fn apply_by_analogy(
    a: &Workflow,
    b: &Workflow,
    c: &Workflow,
) -> Result<AnalogyResult, ModelError> {
    let diff = diff_workflows(a, b);
    let matching = match_workflows(a, c);
    let mut out = c.clone();
    let mut skipped = Vec::new();
    let mut applied = 0usize;

    let unmatched: Vec<NodeId> = a
        .nodes
        .keys()
        .filter(|id| matching.target(**id).is_none())
        .copied()
        .collect();

    // New nodes of b get fresh ids in c; remember the correspondence.
    let mut new_ids: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for id in &diff.only_right {
        let node = &b.nodes[id];
        let nid = out.add_node(&node.module, node.version);
        out.set_label(nid, &node.label)?;
        for (k, v) in &node.params {
            out.set_param(nid, k, v.clone())?;
        }
        new_ids.insert(*id, nid);
        applied += 1;
    }

    // Map an endpoint of the template into c.
    let map_node = |id: NodeId| -> Option<NodeId> {
        new_ids.get(&id).copied().or_else(|| matching.target(id))
    };

    // Deleted nodes: delete the matched counterparts.
    for id in &diff.only_left {
        match matching.target(*id) {
            Some(t) => {
                out.remove_node(t)?;
                applied += 1;
            }
            None => skipped.push(format!("delete of {id}: no counterpart in target")),
        }
    }

    // Deleted connections: remove the corresponding target connection.
    for conn in &diff.conns_only_left {
        let (Some(f), Some(t)) = (map_node(conn.from.node), map_node(conn.to.node)) else {
            skipped.push(format!(
                "disconnect {}.{} -> {}.{}: endpoints unmatched",
                conn.from.node, conn.from.port, conn.to.node, conn.to.port
            ));
            continue;
        };
        let found = out
            .conns
            .values()
            .find(|c| c.from.node == f && c.to.node == t && c.to.port == conn.to.port)
            .map(|c| c.id);
        match found {
            Some(cid) => {
                out.remove_connection(cid)?;
                applied += 1;
            }
            None => skipped.push(format!(
                "disconnect {f}.{} -> {t}.{}: no such connection in target",
                conn.from.port, conn.to.port
            )),
        }
    }

    // Parameter changes on matched nodes.
    for (node, name, _, new) in &diff.param_changes {
        match matching
            .target(*node)
            .or_else(|| new_ids.get(node).copied())
        {
            Some(t) => {
                match new {
                    Some(v) => {
                        out.set_param(t, name, v.clone())?;
                    }
                    None => {
                        out.unset_param(t, name)?;
                    }
                }
                applied += 1;
            }
            None => skipped.push(format!("param {node}.{name}: no counterpart in target")),
        }
    }

    // Added connections, rewired through the mapping. If the target input
    // port is already fed, the analogy *re*-wires it (Figure 2's orange
    // edge removal), replacing the previous connection.
    for conn in &diff.conns_only_right {
        let (Some(f), Some(t)) = (map_node(conn.from.node), map_node(conn.to.node)) else {
            skipped.push(format!(
                "connect {}.{} -> {}.{}: endpoints unmatched",
                conn.from.node, conn.from.port, conn.to.node, conn.to.port
            ));
            continue;
        };
        if let Some(existing) = out
            .conns
            .values()
            .find(|c| c.to.node == t && c.to.port == conn.to.port)
            .map(|c| c.id)
        {
            out.remove_connection(existing)?;
        }
        match out.connect(
            Endpoint::new(f, &conn.from.port),
            Endpoint::new(t, &conn.to.port),
        ) {
            Ok(_) => applied += 1,
            Err(e) => skipped.push(format!(
                "connect {f}.{} -> {t}.{}: {e}",
                conn.from.port, conn.to.port
            )),
        }
    }

    Ok(AnalogyResult {
        workflow: out,
        matching,
        unmatched,
        skipped,
        applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn label_similarity_behaves() {
        assert_eq!(label_similarity("render", "render"), 1.0);
        assert!(label_similarity("render view", "render view 2") > 0.6);
        assert!(label_similarity("alpha", "zq") < 0.2);
    }

    #[test]
    fn identical_workflows_match_perfectly() {
        let (a, _, _) = scenario::figure2_triple();
        let m = match_workflows(&a, &a.clone());
        assert_eq!(m.pairs.len(), a.node_count());
        for (s, (t, score)) in &m.pairs {
            assert_eq!(s, t);
            assert!(*score > 0.8, "self-match score {score}");
        }
    }

    #[test]
    fn matching_respects_structure_over_duplicates() {
        // Two Identity nodes: one mid-chain, one sink. Structure must
        // disambiguate which matches which.
        use wf_model::WorkflowBuilder;
        let build = |id: u64| {
            let mut b = WorkflowBuilder::new(id, "chain");
            let s = b.add("ConstInt");
            let mid = b.add("Identity");
            let sink = b.add("Identity");
            b.connect(s, "out", mid, "in")
                .connect(mid, "out", sink, "in");
            (b.build(), mid, sink)
        };
        let (a, a_mid, a_sink) = build(1);
        let (c, c_mid, c_sink) = build(2);
        let m = match_workflows(&a, &c);
        assert_eq!(m.target(a_mid), Some(c_mid));
        assert_eq!(m.target(a_sink), Some(c_sink));
    }

    #[test]
    fn figure2_smoothing_transplants() {
        let (a, b, c) = scenario::figure2_triple();
        let result = apply_by_analogy(&a, &b, &c).unwrap();
        assert!(result.is_clean(), "skipped: {:?}", result.skipped);
        let out = &result.workflow;
        // A SmoothMesh now exists in c'.
        let smooth: Vec<_> = out
            .nodes
            .values()
            .filter(|n| n.module == "SmoothMesh")
            .collect();
        assert_eq!(smooth.len(), 1);
        let smooth = smooth[0].id;
        // Wired between c's isosurface and c's renderer.
        let iso = out
            .nodes
            .values()
            .find(|n| n.module == "Isosurface")
            .unwrap()
            .id;
        let render = out
            .nodes
            .values()
            .find(|n| n.module == "RenderMesh")
            .unwrap()
            .id;
        assert!(out
            .conns
            .values()
            .any(|cn| cn.from.node == iso && cn.to.node == smooth));
        assert!(out
            .conns
            .values()
            .any(|cn| cn.from.node == smooth && cn.to.node == render));
        // The direct iso->render edge is gone.
        assert!(!out
            .conns
            .values()
            .any(|cn| cn.from.node == iso && cn.to.node == render));
        // c's own extra branch is untouched.
        assert!(out.nodes.values().any(|n| n.module == "Histogram"));
        assert!(result.matching.mean_score() > 0.5);
    }

    #[test]
    fn analogy_reports_unmatched_when_target_lacks_context() {
        let (a, b, _) = scenario::figure2_triple();
        // A target with no isosurface pipeline at all.
        let mut bld = wf_model::WorkflowBuilder::new(9, "unrelated");
        let l = bld.add("LoadVolume");
        let h = bld.add("Histogram");
        bld.connect(l, "grid", h, "data");
        let c = bld.build();
        let result = apply_by_analogy(&a, &b, &c).unwrap();
        assert!(!result.skipped.is_empty(), "rewiring must fail somewhere");
        assert!(!result.unmatched.is_empty());
    }

    #[test]
    fn param_change_analogy() {
        let (a, _, c) = scenario::figure2_triple();
        // Template: only change isovalue 0.4 -> 0.7.
        let mut b2 = a.clone();
        let iso = b2
            .nodes
            .values()
            .find(|n| n.module == "Isosurface")
            .unwrap()
            .id;
        b2.set_param(iso, "isovalue", 0.7f64.into()).unwrap();
        let result = apply_by_analogy(&a, &b2, &c).unwrap();
        assert!(result.is_clean());
        let c_iso = result
            .workflow
            .nodes
            .values()
            .find(|n| n.module == "Isosurface")
            .unwrap();
        assert_eq!(
            c_iso.params.get("isovalue"),
            Some(&wf_model::ParamValue::Float(0.7))
        );
    }

    #[test]
    fn deletion_analogy_removes_counterpart() {
        let (a, _, c) = scenario::figure2_triple();
        // Template: delete the save step.
        let mut b2 = a.clone();
        let save = b2
            .nodes
            .values()
            .find(|n| n.module == "SaveFile")
            .unwrap()
            .id;
        b2.remove_node(save).unwrap();
        let before = c.nodes.values().filter(|n| n.module == "SaveFile").count();
        let result = apply_by_analogy(&a, &b2, &c).unwrap();
        let after = result
            .workflow
            .nodes
            .values()
            .filter(|n| n.module == "SaveFile")
            .count();
        assert_eq!(after, before - 1);
    }
}
