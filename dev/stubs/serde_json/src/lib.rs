//! Offline typecheck stub for `serde_json`. All functions panic at runtime.
use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub")
}

pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>> {
    unimplemented!("serde_json stub")
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("serde_json stub")
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    unimplemented!("serde_json stub")
}
